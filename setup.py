"""Legacy entry point so editable installs work offline (no wheel package)."""
from setuptools import setup

setup()
