"""Tests for the repro.bench harness."""
