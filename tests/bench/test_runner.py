"""Tests for the scenario registry and benchmark runner."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BENCHMARKS,
    Scenario,
    list_benchmarks,
    list_suites,
    load_report,
    register_benchmark,
    resolve_benchmark,
    run_scenario,
    run_suite,
    save_report,
    suite_scenarios,
    validate_report,
)
from repro.api.registry import UnknownComponentError


@pytest.fixture
def temp_scenario():
    """Register a tiny scenario in a throwaway suite; deregister after."""
    name, suite = "_test_counter", "_testsuite"
    calls = {"setup": 0, "run": 0}

    @register_benchmark(name, suites=(suite,), rounds=3, warmup=1, items=4)
    def scenario():
        calls["setup"] += 1

        def run():
            calls["run"] += 1

        return run

    yield name, suite, calls
    with BENCHMARKS._lock:
        BENCHMARKS._entries.pop(name, None)


class TestRegistry:
    def test_builtin_suites_exist(self):
        assert {"smoke", "paper", "serving"} <= set(list_suites())

    def test_smoke_suite_covers_the_hot_paths(self):
        names = set(list_benchmarks("smoke"))
        assert {
            "shape_inference",
            "canonical_hash",
            "subgraph_db_build",
            "bucket_optimize_cold",
            "bucket_optimize_cached",
        } <= names

    def test_resolve_returns_scenario(self, temp_scenario):
        name, suite, _ = temp_scenario
        s = resolve_benchmark(name)
        assert isinstance(s, Scenario)
        assert s.suites == (suite,)
        assert s.rounds == 3 and s.warmup == 1 and s.items == 4

    def test_unknown_suite_raises(self):
        with pytest.raises(UnknownComponentError):
            suite_scenarios("no-such-suite")

    def test_register_validates_metadata(self):
        with pytest.raises(ValueError, match="suite"):
            register_benchmark("_bad", suites=())(lambda: (lambda: None))
        with pytest.raises(ValueError, match="rounds"):
            register_benchmark("_bad", suites=("x",), rounds=0)(lambda: (lambda: None))

    def test_duplicate_name_rejected(self, temp_scenario):
        name, suite, _ = temp_scenario
        with pytest.raises(ValueError, match="already registered"):
            register_benchmark(name, suites=(suite,))(lambda: (lambda: None))


class TestRunner:
    def test_setup_once_warmup_plus_rounds_calls(self, temp_scenario):
        name, _, calls = temp_scenario
        entry = run_scenario(resolve_benchmark(name))
        assert calls["setup"] == 1
        assert calls["run"] == 4  # 1 warmup + 3 measured
        assert entry["rounds"] == 3 and entry["warmup"] == 1
        assert len(entry["times_s"]) == 3
        assert entry["median_s"] > 0
        assert entry["throughput_items_per_s"] > 0

    def test_round_and_warmup_overrides(self, temp_scenario):
        name, _, calls = temp_scenario
        entry = run_scenario(resolve_benchmark(name), rounds=2, warmup=0)
        assert calls["run"] == 2
        assert entry["rounds"] == 2 and entry["warmup"] == 0

    def test_run_suite_report_shape(self, temp_scenario):
        name, suite, _ = temp_scenario
        seen = []
        report = run_suite(suite, progress=lambda i, n, s: seen.append((i, n, s)))
        validate_report(report)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["suite"] == suite
        assert name in report["scenarios"]
        assert seen == [(1, 1, name)]
        assert report["env"]["cpu_count"] is not None

    def test_save_load_round_trip(self, temp_scenario, tmp_path):
        _, suite, _ = temp_scenario
        report = run_suite(suite)
        path = tmp_path / "BENCH_test.json"
        save_report(report, str(path))
        assert load_report(str(path)) == json.loads(path.read_text())


class TestValidation:
    def test_rejects_wrong_schema_version(self, temp_scenario):
        _, suite, _ = temp_scenario
        report = run_suite(suite)
        report["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            validate_report(report)

    def test_rejects_missing_scenario_field(self, temp_scenario):
        name, suite, _ = temp_scenario
        report = run_suite(suite)
        del report["scenarios"][name]["median_s"]
        with pytest.raises(ValueError, match="median_s"):
            validate_report(report)

    def test_rejects_empty_scenarios(self):
        with pytest.raises(ValueError, match="scenarios"):
            validate_report(
                {
                    "schema_version": SCHEMA_VERSION,
                    "suite": "x",
                    "git_sha": "x",
                    "env": {},
                    "scenarios": {},
                }
            )
