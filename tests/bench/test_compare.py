"""Tests for the baseline comparator verdicts."""

import pytest

from repro.bench import SCHEMA_VERSION, compare_reports


def make_report(scenarios):
    """A minimal well-formed report with given {name: seconds} medians."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "test",
        "git_sha": "deadbeef",
        "created_unix": 0,
        "env": {},
        "config": {"rounds": None, "warmup": None},
        "scenarios": {
            name: {
                "description": "",
                "rounds": 3,
                "warmup": 1,
                "items": 1,
                "median_s": t,
                "p95_s": t,
                "min_s": t,
                "mean_s": t,
                "throughput_items_per_s": 1.0 / t,
                "times_s": [t, t, t],
            }
            for name, t in scenarios.items()
        },
    }


class TestVerdicts:
    def test_ok_within_tolerance(self):
        cmp = compare_reports(
            make_report({"a": 0.011}), make_report({"a": 0.010}), tolerance=1.5
        )
        (v,) = cmp.verdicts
        assert v.verdict == "ok"
        assert v.ratio == pytest.approx(1.1)
        assert not cmp.has_regressions

    def test_regression_beyond_tolerance(self):
        cmp = compare_reports(
            make_report({"a": 0.020}), make_report({"a": 0.010}), tolerance=1.5
        )
        (v,) = cmp.verdicts
        assert v.verdict == "regression"
        assert cmp.has_regressions
        assert cmp.regressions[0].name == "a"

    def test_improvement_beyond_tolerance(self):
        cmp = compare_reports(
            make_report({"a": 0.005}), make_report({"a": 0.010}), tolerance=1.5
        )
        (v,) = cmp.verdicts
        assert v.verdict == "improvement"
        assert cmp.improvements[0].name == "a"
        assert not cmp.has_regressions

    def test_exactly_at_tolerance_is_ok(self):
        cmp = compare_reports(
            make_report({"a": 0.015}), make_report({"a": 0.010}), tolerance=1.5
        )
        assert cmp.verdicts[0].verdict == "ok"

    def test_missing_baseline(self):
        cmp = compare_reports(
            make_report({"a": 0.01, "new": 0.01}), make_report({"a": 0.01})
        )
        by_name = {v.name: v for v in cmp.verdicts}
        assert by_name["new"].verdict == "missing-baseline"
        assert by_name["new"].ratio is None
        # a brand-new scenario must never fail the gate
        assert not cmp.has_regressions

    def test_missing_current(self):
        cmp = compare_reports(
            make_report({"a": 0.01}), make_report({"a": 0.01, "gone": 0.01})
        )
        by_name = {v.name: v for v in cmp.verdicts}
        assert by_name["gone"].verdict == "missing-current"
        assert not cmp.has_regressions

    def test_metric_selection(self):
        current = make_report({"a": 0.010})
        current["scenarios"]["a"]["median_s"] = 0.030  # median regressed...
        baseline = make_report({"a": 0.010})
        assert not compare_reports(current, baseline).has_regressions  # min gates
        assert compare_reports(current, baseline, metric="median_s").has_regressions

    def test_invalid_tolerance_and_metric(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_reports(make_report({"a": 1}), make_report({"a": 1}), tolerance=0.9)
        with pytest.raises(ValueError, match="metric"):
            compare_reports(make_report({"a": 1}), make_report({"a": 1}), metric="mode")


class TestRendering:
    def test_render_mentions_every_scenario_and_verdict(self):
        cmp = compare_reports(
            make_report({"fast": 0.001, "slow": 0.10}),
            make_report({"fast": 0.001, "slow": 0.01}),
        )
        text = cmp.render()
        assert "fast" in text and "slow" in text
        assert "regression" in text and "ok" in text

    def test_to_dict_round_trips_names(self):
        cmp = compare_reports(
            make_report({"a": 0.10}), make_report({"a": 0.01}), tolerance=2.0
        )
        d = cmp.to_dict()
        assert d["regressions"] == ["a"]
        assert d["verdicts"]["a"]["verdict"] == "regression"
        assert d["tolerance"] == 2.0
        assert d["metric"] == "min_s"
