"""End-to-end tests for `repro bench`, including the regression gate.

The gate test registers a scenario whose duration is controlled by a
module-level knob, snapshots a baseline, injects a synthetic slowdown,
and asserts the gated run exits non-zero — proving the CI loop catches
real regressions.
"""

import json

import pytest

from repro.bench import BENCHMARKS, load_report, register_benchmark
from repro.cli import main

_DELAY = {"seconds": 0.001}


@pytest.fixture
def sleep_scenario():
    """A registered scenario that busy-sleeps for a controllable duration."""
    import time

    name, suite = "_test_sleep", "_clisuite"

    @register_benchmark(name, suites=(suite,), rounds=3, warmup=1)
    def scenario():
        def run():
            deadline = time.perf_counter() + _DELAY["seconds"]
            while time.perf_counter() < deadline:
                pass

        return run

    _DELAY["seconds"] = 0.001
    yield name, suite
    with BENCHMARKS._lock:
        BENCHMARKS._entries.pop(name, None)


class TestBenchCommand:
    def test_writes_valid_report_and_json_stdout_line(
        self, sleep_scenario, tmp_path, capsys
    ):
        _, suite = sleep_scenario
        out = tmp_path / "BENCH_test.json"
        rc = main(["bench", "--suite", suite, "-o", str(out)])
        assert rc == 0
        report = load_report(str(out))  # validates schema
        assert report["suite"] == suite
        line = capsys.readouterr().out.strip()
        machine = json.loads(line)  # exactly one JSON line on stdout
        assert machine["suite"] == suite
        assert machine["scenarios"] == 1

    def test_update_baseline_then_clean_pass(self, sleep_scenario, tmp_path):
        _, suite = sleep_scenario
        baseline = tmp_path / "baseline.json"
        rc = main(
            ["bench", "--suite", suite, "-o", str(tmp_path / "b1.json"),
             "--baseline", str(baseline), "--update-baseline"]
        )
        assert rc == 0
        assert baseline.exists()
        rc = main(
            ["bench", "--suite", suite, "-o", str(tmp_path / "b2.json"),
             "--baseline", str(baseline), "--fail-on-regression", "2.0"]
        )
        assert rc == 0

    def test_synthetic_slowdown_fails_the_gate(self, sleep_scenario, tmp_path, capsys):
        name, suite = sleep_scenario
        baseline = tmp_path / "baseline.json"
        main(
            ["bench", "--suite", suite, "-o", str(tmp_path / "b1.json"),
             "--baseline", str(baseline), "--update-baseline"]
        )
        capsys.readouterr()
        _DELAY["seconds"] = 0.010  # 10x synthetic slowdown
        rc = main(
            ["bench", "--suite", suite, "-o", str(tmp_path / "b2.json"),
             "--baseline", str(baseline), "--fail-on-regression", "1.5"]
        )
        assert rc == 1
        machine = json.loads(capsys.readouterr().out.strip())
        assert machine["regressions"] == [name]

    def test_slowdown_without_gate_flag_still_exits_zero(
        self, sleep_scenario, tmp_path
    ):
        _, suite = sleep_scenario
        baseline = tmp_path / "baseline.json"
        main(
            ["bench", "--suite", suite, "-o", str(tmp_path / "b1.json"),
             "--baseline", str(baseline), "--update-baseline"]
        )
        _DELAY["seconds"] = 0.010
        rc = main(
            ["bench", "--suite", suite, "-o", str(tmp_path / "b2.json"),
             "--baseline", str(baseline)]
        )
        assert rc == 0  # comparison is informational without the flag

    def test_missing_baseline_is_usage_error(self, sleep_scenario, tmp_path):
        _, suite = sleep_scenario
        rc = main(
            ["bench", "--suite", suite, "-o", str(tmp_path / "b.json"),
             "--baseline", str(tmp_path / "nope.json"),
             "--fail-on-regression", "1.5"]
        )
        assert rc == 2

    def test_update_baseline_requires_baseline_path(self, sleep_scenario, tmp_path):
        _, suite = sleep_scenario
        rc = main(["bench", "--suite", suite, "-o", str(tmp_path / "b.json"),
                   "--update-baseline"])
        assert rc == 2

    def test_invalid_flag_values_are_usage_errors(self, sleep_scenario, tmp_path):
        _, suite = sleep_scenario
        base = ["bench", "--suite", suite, "-o", str(tmp_path / "b.json")]
        assert main(base + ["--rounds", "0"]) == 2
        assert main(base + ["--warmup", "-1"]) == 2
        assert main(base + ["--baseline", str(tmp_path / "x.json"),
                            "--fail-on-regression", "0.9"]) == 2

    def test_summary_table_printed_without_baseline(
        self, sleep_scenario, tmp_path, capsys
    ):
        name, suite = sleep_scenario
        rc = main(["bench", "--suite", suite, "-o", str(tmp_path / "b.json")])
        assert rc == 0
        err = capsys.readouterr().err
        assert name in err and "median" in err

    def test_list_prints_scenarios(self, sleep_scenario, capsys):
        name, suite = sleep_scenario
        rc = main(["bench", "--suite", suite, "--list"])
        assert rc == 0
        assert name in capsys.readouterr().out


class TestSmokeSuiteEndToEnd:
    def test_smoke_suite_quick_run_writes_valid_report(self, tmp_path):
        """One fast round of the real smoke suite end to end."""
        out = tmp_path / "BENCH_smoke.json"
        rc = main(["bench", "--suite", "smoke", "-o", str(out),
                   "--rounds", "1", "--warmup", "0"])
        assert rc == 0
        report = load_report(str(out))
        assert set(report["scenarios"]) >= {
            "shape_inference",
            "canonical_hash",
            "subgraph_db_build",
            "bucket_optimize_cold",
            "bucket_optimize_cached",
        }
