"""Canonical hashing: name-invariance, attr-order invariance, collisions."""

import numpy as np
import pytest

from repro import ModelOwner, ProteusConfig, build_model
from repro.ir.graph import Graph, Value
from repro.ir.node import Node
from repro.ir.dtypes import DataType, TensorType
from repro.serving import canonical_hash, canonicalize, restore_names

F32 = DataType.FLOAT32


def tiny_graph(name="g", relu_attr=None, weight_fill=1.0, extra_node=False):
    """Conv -> Relu (-> optional Identity) over a 1x1 conv."""
    w = np.full((4, 3, 1, 1), weight_fill, dtype=np.float32)
    nodes = [
        Node("conv", "Conv", ["x", "w"], ["h"],
             {"kernel_shape": (1, 1), "strides": (1, 1), "pads": (0, 0, 0, 0)}),
        Node("act", "Relu", ["h"], ["y"], relu_attr or {}),
    ]
    outputs = [Value("y")]
    if extra_node:
        nodes.append(Node("id", "Identity", ["y"], ["z"]))
        outputs = [Value("z")]
    return Graph(
        name,
        inputs=[Value("x", TensorType(F32, (1, 3, 8, 8)))],
        outputs=outputs,
        nodes=nodes,
        initializers={"w": w},
    )


def renamed(graph: Graph, prefix="zz") -> Graph:
    """A clone of ``graph`` with every value and node name replaced."""
    vmap = {}

    def m(name):
        if name not in vmap:
            vmap[name] = f"{prefix}_v{len(vmap)}"
        return vmap[name]

    return Graph(
        f"{prefix}_{graph.name}",
        inputs=[Value(m(v.name), v.type) for v in graph.inputs],
        outputs=[Value(m(v.name), v.type) for v in graph.outputs],
        nodes=[
            Node(f"{prefix}_n_{n.name}", n.op_type,
                 [m(x) for x in n.inputs], [m(x) for x in n.outputs],
                 dict(n.attrs))
            for n in graph.nodes
        ],
        initializers={m(k): v for k, v in graph.initializers.items()},
    )


class TestRenameInvariance:
    def test_tiny_graph(self):
        g = tiny_graph()
        assert canonical_hash(g) == canonical_hash(renamed(g))

    def test_graph_name_is_ignored(self):
        assert canonical_hash(tiny_graph(name="a")) == canonical_hash(tiny_graph(name="b"))

    def test_zoo_model(self):
        g = build_model("squeezenet")
        assert canonical_hash(g) == canonical_hash(renamed(g))

    def test_rename_twice_stable(self):
        g = tiny_graph()
        assert canonical_hash(renamed(g, "a")) == canonical_hash(renamed(g, "b"))


class TestAttributeInvariance:
    def test_attr_insertion_order(self):
        a = tiny_graph()
        b = tiny_graph()
        # rebuild the conv node with reversed attr insertion order
        conv = b.nodes[0]
        reversed_attrs = dict(reversed(list(conv.attrs.items())))
        b.nodes[0] = Node(conv.name, conv.op_type, conv.inputs, conv.outputs,
                          reversed_attrs)
        assert canonical_hash(a) == canonical_hash(b)

    def test_attr_value_changes_hash(self):
        a = tiny_graph()
        b = tiny_graph(relu_attr=None)
        b.nodes[1].set_attr("alpha", 0.2)
        assert canonical_hash(a) != canonical_hash(b)


class TestContentSensitivity:
    def test_topology_changes_hash(self):
        assert canonical_hash(tiny_graph()) != canonical_hash(tiny_graph(extra_node=True))

    def test_weight_values_change_hash(self):
        # same shapes, different parameter contents: optimizers constant-fold,
        # so these must never share a cache slot.
        assert canonical_hash(tiny_graph(weight_fill=1.0)) != canonical_hash(
            tiny_graph(weight_fill=2.0)
        )

    def test_weight_shape_changes_hash(self):
        a = tiny_graph()
        b = tiny_graph()
        b.initializers["w"] = np.ones((4, 3, 1, 1, 1), dtype=np.float32)
        assert canonical_hash(a) != canonical_hash(b)

    def test_op_type_changes_hash(self):
        a = tiny_graph()
        b = tiny_graph()
        relu = b.nodes[1]
        b.nodes[1] = Node(relu.name, "Sigmoid", relu.inputs, relu.outputs)
        assert canonical_hash(a) != canonical_hash(b)


class TestNoCollisionRegression:
    def test_corpus_no_structural_collisions(self):
        """Across a corpus of models and their partition subgraphs, equal
        hashes only ever occur for byte-identical canonical forms."""
        corpus = []
        for name in ("squeezenet", "alexnet", "mobilenet"):
            model = build_model(name)
            corpus.append(model)
            owner = ModelOwner(ProteusConfig(k=0, seed=0))
            bucket = owner.obfuscate(model).bucket
            corpus.extend(entry.graph for entry in bucket)
        assert len(corpus) > 20

        from repro.ir.serialization import graph_to_dict
        import json

        by_hash = {}
        for g in corpus:
            form = canonicalize(g)
            blob = json.dumps(graph_to_dict(form.graph), sort_keys=True)
            if form.digest in by_hash:
                # a collision is only acceptable for genuinely identical
                # canonical structure (duplicate entries in the corpus)
                assert by_hash[form.digest] == blob, (
                    f"hash collision between structurally different graphs: "
                    f"{form.digest}"
                )
            by_hash[form.digest] = blob
        # the corpus is not degenerate: plenty of distinct structures
        assert len(by_hash) > 10


class TestRestoreNames:
    def test_roundtrip_restores_original_names(self):
        g = tiny_graph()
        form = canonicalize(g)
        back = restore_names(form.graph, form, g.name)
        assert back.name == g.name
        assert {v.name for v in back.inputs} == {v.name for v in g.inputs}
        assert {v.name for v in back.outputs} == {v.name for v in g.outputs}
        assert set(back.initializers) == set(g.initializers)
        assert {n.name for n in back.nodes} == {n.name for n in g.nodes}
        assert canonical_hash(back) == canonical_hash(g)

    def test_introduced_names_are_deconflicted(self):
        g = tiny_graph()
        form = canonicalize(g)
        opt = form.graph.clone()
        # simulate an optimizer that introduces a name colliding with an
        # original one ("h") and a safe new name
        opt.add_node(Node("new_node", "Identity", [opt.outputs[0].name], ["h"]))
        opt.outputs = [Value("h")]
        opt.add_node(Node("post", "Identity", ["h"], ["brand_new"]))
        opt.outputs = [Value("brand_new")]
        back = restore_names(opt, form, g.name)
        names = set()
        for n in back.nodes:
            names.update(n.inputs)
            names.update(n.outputs)
        # "h" from the optimizer must not collide with the restored "h"
        assert len([x for x in names if x == "h"]) <= 1
        # deterministic: restoring twice gives identical graphs
        back2 = restore_names(opt, form, g.name)
        from repro.ir.serialization import graph_to_dict
        assert graph_to_dict(back) == graph_to_dict(back2)

    def test_restore_is_pure(self):
        g = tiny_graph()
        form = canonicalize(g)
        before = [n.name for n in form.graph.nodes]
        restore_names(form.graph, form, "x")
        assert [n.name for n in form.graph.nodes] == before


class TestDeterminism:
    def test_hash_stable_across_calls(self):
        g = build_model("squeezenet")
        assert canonical_hash(g) == canonical_hash(g)

    def test_node_list_reorder_of_independent_branches(self):
        """Two parallel branches listed in either order hash identically
        (structure-driven ordering, not list order)."""
        def build(order):
            x = Value("x", TensorType(F32, (1, 4)))
            a = Node("a", "Relu", ["x"], ["ya"])
            b = Node("b", "Sigmoid", ["x"], ["yb"])
            add = Node("add", "Add", ["ya", "yb"], ["y"])
            nodes = [a, b, add] if order == 0 else [b, a, add]
            return Graph("g", inputs=[x], outputs=[Value("y")],
                         nodes=[n.clone() for n in nodes])

        assert canonical_hash(build(0)) == canonical_hash(build(1))


def test_cycle_rejected():
    g = Graph(
        "cyc",
        inputs=[Value("x", TensorType(F32, (1,)))],
        outputs=[Value("b")],
        nodes=[
            Node("n1", "Add", ["x", "b"], ["a"]),
            Node("n2", "Relu", ["a"], ["b"]),
        ],
    )
    with pytest.raises(ValueError, match="cycle"):
        canonicalize(g)
