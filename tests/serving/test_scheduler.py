"""DedupScheduler: priorities, in-flight dedup, failure propagation."""

import threading
import time

import pytest

from repro.serving import DedupScheduler, Priority


class TestBasics:
    def test_submit_and_result(self):
        with DedupScheduler(workers=2) as sched:
            fut = sched.submit("k1", lambda: 21 * 2)
            assert fut.result(timeout=5) == 42

    def test_exception_propagates(self):
        with DedupScheduler(workers=1) as sched:
            def boom():
                raise RuntimeError("backend exploded")

            fut = sched.submit("k", boom)
            with pytest.raises(RuntimeError, match="backend exploded"):
                fut.result(timeout=5)

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            DedupScheduler(workers=0)

    def test_submit_after_shutdown_rejected(self):
        sched = DedupScheduler(workers=1)
        sched.shutdown()
        with pytest.raises(RuntimeError):
            sched.submit("k", lambda: 1)


class TestPriorities:
    def test_high_priority_jumps_queue(self):
        order = []
        gate = threading.Event()
        with DedupScheduler(workers=1) as sched:
            # occupy the single worker so subsequent submits stay queued
            blocker = sched.submit("blocker", gate.wait)
            low = sched.submit("low", lambda: order.append("low"), Priority.LOW)
            normal = sched.submit("normal", lambda: order.append("normal"), Priority.NORMAL)
            high = sched.submit("high", lambda: order.append("high"), Priority.HIGH)
            gate.set()
            for fut in (blocker, low, normal, high):
                fut.result(timeout=5)
        assert order == ["high", "normal", "low"]

    def test_fifo_within_priority(self):
        order = []
        gate = threading.Event()
        with DedupScheduler(workers=1) as sched:
            blocker = sched.submit("blocker", gate.wait)
            futs = [
                sched.submit(f"k{i}", lambda i=i: order.append(i))
                for i in range(5)
            ]
            gate.set()
            for fut in [blocker] + futs:
                fut.result(timeout=5)
        assert order == list(range(5))


class TestDedup:
    def test_same_key_shares_future(self):
        gate = threading.Event()
        calls = []

        def work():
            gate.wait(5)
            calls.append(1)
            return "result"

        with DedupScheduler(workers=1) as sched:
            f1 = sched.submit("same", work)
            f2 = sched.submit("same", work)
            f3 = sched.submit("same", work)
            gate.set()
            assert f1 is f2 is f3
            assert f1.result(timeout=5) == "result"
        assert len(calls) == 1
        assert sched.stats()["dedup_hits"] == 2
        assert sched.stats()["executed"] == 1

    def test_distinct_keys_do_not_dedup(self):
        with DedupScheduler(workers=2) as sched:
            f1 = sched.submit("a", lambda: "a")
            f2 = sched.submit("b", lambda: "b")
            assert f1 is not f2
            assert {f1.result(5), f2.result(5)} == {"a", "b"}

    def test_none_key_never_dedups(self):
        calls = []
        with DedupScheduler(workers=1) as sched:
            f1 = sched.submit(None, lambda: calls.append(1))
            f2 = sched.submit(None, lambda: calls.append(1))
            assert f1 is not f2
            f1.result(5), f2.result(5)
        assert len(calls) == 2

    def test_key_reusable_after_completion(self):
        calls = []
        with DedupScheduler(workers=1) as sched:
            f1 = sched.submit("k", lambda: calls.append(1))
            f1.result(timeout=5)
            # completed tasks leave the in-flight table: a fresh submit
            # runs again (result reuse beyond this point is the cache's job)
            deadline = time.time() + 5
            while sched.inflight_count() and time.time() < deadline:
                time.sleep(0.01)
            f2 = sched.submit("k", lambda: calls.append(1))
            assert f1 is not f2
            f2.result(timeout=5)
        assert len(calls) == 2


class TestShutdown:
    def test_shutdown_drains_pending(self):
        done = []
        sched = DedupScheduler(workers=1)
        gate = threading.Event()
        sched.submit("blocker", gate.wait)
        futs = [sched.submit(f"k{i}", lambda i=i: done.append(i)) for i in range(3)]
        gate.set()
        sched.shutdown(wait=True)
        assert sorted(done) == [0, 1, 2]
        for fut in futs:
            assert fut.done()

    def test_shutdown_idempotent(self):
        sched = DedupScheduler(workers=1)
        sched.shutdown()
        sched.shutdown()


def test_queue_depth_reports_backlog():
    gate = threading.Event()
    sched = DedupScheduler(workers=1)
    try:
        blocker = sched.submit("blocker", gate.wait)
        for i in range(4):
            sched.submit(f"k{i}", lambda: None)
        assert sched.queue_depth() >= 3  # blocker may or may not be picked up
        stats = sched.stats()
        assert stats["submitted"] == 5
        assert stats["workers"] == 1
        gate.set()
        blocker.result(timeout=5)
    finally:
        gate.set()
        sched.shutdown()
