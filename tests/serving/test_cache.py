"""Two-tier optimization cache: keys, LRU, disk persistence, round-trip."""

import json
import os

import numpy as np
import pytest

from repro.ir.graph import Graph, Value
from repro.ir.node import Node
from repro.ir.dtypes import DataType, TensorType
from repro.ir.serialization import graph_to_dict
from repro.serving import OptimizationCache, cached_optimize, fingerprint_config
from repro.serving.cache import _PAYLOAD_VERSION

F32 = DataType.FLOAT32


def small_graph(tag="g", n_chain=3):
    nodes = []
    prev = "x"
    for i in range(n_chain):
        nodes.append(Node(f"relu{i}", "Relu", [prev], [f"v{i}"]))
        prev = f"v{i}"
    return Graph(
        tag,
        inputs=[Value("x", TensorType(F32, (1, 4)))],
        outputs=[Value(prev)],
        nodes=nodes,
    )


def strip_tail(graph: Graph) -> Graph:
    """A fake 'optimizer': drop the last node (deterministic rewrite)."""
    g = graph.clone()
    last = g.nodes[-1]
    g.remove_node(last)
    g.outputs = [Value(last.inputs[0], g.value_types.get(last.inputs[0]))]
    return g


class TestKeys:
    def test_key_components_all_matter(self):
        k = OptimizationCache.key_for
        assert k("d1", "ortlike") != k("d2", "ortlike")
        assert k("d1", "ortlike") != k("d1", "hidetlike")
        assert k("d1", "ortlike", "cfgA") != k("d1", "ortlike", "cfgB")
        assert k("d1", "ortlike", "cfgA") == k("d1", "ortlike", "cfgA")

    def test_fingerprint_config(self):
        assert fingerprint_config(None) == "default"
        assert fingerprint_config({}) == "default"
        assert fingerprint_config({"a": 1}) == fingerprint_config({"a": 1})
        assert fingerprint_config({"a": 1}) != fingerprint_config({"a": 2})
        # insertion order must not matter
        assert fingerprint_config({"a": 1, "b": 2}) == fingerprint_config(
            {"b": 2, "a": 1}
        )


class TestMemoryTier:
    def test_hit_miss_counters(self):
        cache = OptimizationCache()
        assert cache.get("k") is None
        cache.put("k", {"payload_version": _PAYLOAD_VERSION, "v": 1})
        assert cache.get("k")["v"] == 1
        s = cache.stats()
        assert s.misses == 1 and s.memory_hits == 1 and s.puts == 1
        assert 0.0 < s.hit_rate < 1.0

    def test_lru_eviction(self):
        cache = OptimizationCache(max_memory_entries=2)
        cache.put("a", {"v": "a"})
        cache.put("b", {"v": "b"})
        assert cache.get("a")["v"] == "a"  # touch a: b becomes LRU
        cache.put("c", {"v": "c"})  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats().evictions == 1

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            OptimizationCache(max_memory_entries=0)


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        d = str(tmp_path / "cache")
        first = OptimizationCache(cache_dir=d)
        first.put("deadbeef", {"payload_version": _PAYLOAD_VERSION, "v": 42})

        second = OptimizationCache(cache_dir=d)
        got = second.get("deadbeef")
        assert got is not None and got["v"] == 42
        s = second.stats()
        assert s.disk_hits == 1 and s.memory_hits == 0
        # promoted to memory: second read is a memory hit
        second.get("deadbeef")
        assert second.stats().memory_hits == 1

    def test_object_layout_is_sharded(self, tmp_path):
        d = str(tmp_path / "cache")
        cache = OptimizationCache(cache_dir=d)
        key = "ab" + "0" * 62
        cache.put(key, {"payload_version": _PAYLOAD_VERSION})
        assert os.path.exists(os.path.join(d, "objects", "ab", f"{key}.json"))

    def test_corrupt_object_is_a_miss(self, tmp_path):
        d = str(tmp_path / "cache")
        cache = OptimizationCache(cache_dir=d)
        key = "cd" + "0" * 62
        path = os.path.join(d, "objects", "cd", f"{key}.json")
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None
        assert cache.stats().misses == 1

    def test_stale_payload_version_is_a_miss(self, tmp_path):
        d = str(tmp_path / "cache")
        cache = OptimizationCache(cache_dir=d)
        key = "ef" + "0" * 62
        path = os.path.join(d, "objects", "ef", f"{key}.json")
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as fh:
            json.dump({"payload_version": -1, "graph": {}}, fh)
        assert cache.get(key) is None

    def test_clear_memory_keeps_disk(self, tmp_path):
        d = str(tmp_path / "cache")
        cache = OptimizationCache(cache_dir=d)
        cache.put("k1", {"payload_version": _PAYLOAD_VERSION, "v": 1})
        cache.clear_memory()
        assert len(cache) == 0
        assert cache.get("k1")["v"] == 1  # served from disk
        assert cache.stats().disk_hits == 1


class TestCachedOptimize:
    def test_cold_then_hot_byte_identical(self):
        cache = OptimizationCache()
        g = small_graph()
        calls = []

        def opt(graph):
            calls.append(1)
            return strip_tail(graph)

        cold, cold_hit = cached_optimize(g, opt, cache, "fake")
        hot, hot_hit = cached_optimize(g, opt, cache, "fake")
        assert (cold_hit, hot_hit) == (False, True)
        assert len(calls) == 1
        assert graph_to_dict(cold) == graph_to_dict(hot)
        assert cold.num_nodes == g.num_nodes - 1

    def test_renamed_twin_shares_entry(self):
        """A structurally identical graph with different names is a hit,
        and its result comes back in *its own* namespace."""
        cache = OptimizationCache()
        a = small_graph("a")
        b = Graph(
            "b",
            inputs=[Value("inp", TensorType(F32, (1, 4)))],
            outputs=[Value("w2")],
            nodes=[
                Node("r0", "Relu", ["inp"], ["w0"]),
                Node("r1", "Relu", ["w0"], ["w1"]),
                Node("r2", "Relu", ["w1"], ["w2"]),
            ],
        )
        calls = []

        def opt(graph):
            calls.append(1)
            return strip_tail(graph)

        res_a, hit_a = cached_optimize(a, opt, cache, "fake")
        res_b, hit_b = cached_optimize(b, opt, cache, "fake")
        assert (hit_a, hit_b) == (False, True)
        assert len(calls) == 1
        assert res_b.name == "b"
        assert res_b.input_names == ["inp"]
        assert res_b.output_names == ["w1"]  # tail-stripped, b's names

    def test_backend_and_config_isolate_entries(self):
        cache = OptimizationCache()
        g = small_graph()
        calls = []

        def opt(graph):
            calls.append(1)
            return strip_tail(graph)

        cached_optimize(g, opt, cache, "fake", "cfg1")
        _, hit_other_cfg = cached_optimize(g, opt, cache, "fake", "cfg2")
        _, hit_other_backend = cached_optimize(g, opt, cache, "other", "cfg1")
        _, hit_same = cached_optimize(g, opt, cache, "fake", "cfg1")
        assert not hit_other_cfg and not hit_other_backend and hit_same
        assert len(calls) == 3

    def test_instance_config_never_serves_stale_graphs(self):
        """Regression: a configured backend *instance* must not share cache
        entries with the default-configured backend of the same name."""
        from repro import ModelOwner, OptimizerService, ProteusConfig, build_model
        from repro.optimizer.ortlike import OrtLikeOptimizer

        owner = ModelOwner(ProteusConfig(n=1, k=0, seed=0))
        bucket = owner.obfuscate(build_model("squeezenet")).bucket
        cache = OptimizationCache()
        extended = OptimizerService("ortlike").optimize(bucket, cache=cache)
        untouched = OptimizerService(OrtLikeOptimizer(level="none")).optimize(
            bucket, cache=cache
        )
        entry = next(iter(bucket))
        # level="none" must return the graph unmodified, not the cached
        # extended-optimized one
        assert untouched.bucket.get(entry.entry_id).graph.num_nodes == \
            entry.graph.num_nodes
        assert extended.bucket.get(entry.entry_id).graph.num_nodes < \
            entry.graph.num_nodes

    def test_unfingerprintable_backend_bypasses_cache(self):
        """An instance without cache_fingerprint cannot be keyed safely:
        the cache is bypassed entirely rather than risk stale results."""
        from repro import ModelOwner, OptimizerService, ProteusConfig, build_model

        class Opaque:
            def optimize(self, graph):
                return graph.clone()

        owner = ModelOwner(ProteusConfig(n=1, k=0, seed=0))
        bucket = owner.obfuscate(build_model("squeezenet")).bucket
        service = OptimizerService(Opaque())
        assert service.config_fingerprint is None
        cache = OptimizationCache()
        service.optimize(bucket, cache=cache)
        service.optimize(bucket, cache=cache)
        assert cache.stats().lookups == 0 and cache.stats().puts == 0

    def test_named_backend_fingerprint_tracks_options(self):
        from repro import OptimizerService

        default = OptimizerService("ortlike").config_fingerprint
        basic = OptimizerService("ortlike", level="basic").config_fingerprint
        assert default is not None and basic is not None
        assert default != basic

    def test_weights_keep_bit_exact_through_disk(self, tmp_path):
        d = str(tmp_path / "cache")
        g = Graph(
            "wg",
            inputs=[Value("x", TensorType(F32, (1, 3)))],
            outputs=[Value("y")],
            nodes=[Node("mm", "MatMul", ["x", "w"], ["y"])],
            initializers={"w": np.random.default_rng(0).normal(size=(3, 3)).astype(np.float32)},
        )
        cold, _ = cached_optimize(g, lambda gr: gr.clone(), OptimizationCache(cache_dir=d), "fake")
        hot, hit = cached_optimize(g, lambda gr: gr.clone(), OptimizationCache(cache_dir=d), "fake")
        assert hit
        np.testing.assert_array_equal(cold.initializers["w"], hot.initializers["w"])
        assert hot.initializers["w"].dtype == np.float32
