"""Tests for the spool transport: backoff retries and the file contract."""

import json
import random

import pytest

from repro.api.clients import ModelOwner
from repro.api.manifest import BucketManifest, save_manifest
from repro.api.wire import ERR_JOB_FAILED, EndpointError
from repro.core import ProteusConfig
from repro.models import build_model
from repro.serving import OptimizationServer
from repro.serving.spool import (
    ERROR_SUFFIX,
    OPTIMIZED_SUFFIX,
    RECEIPT_SUFFIX,
    RetryPolicy,
    SpoolServer,
    atomic_write_json,
)


class TestRetryPolicy:
    def test_delays_grow_exponentially(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=100.0, jitter=0.0)
        rng = random.Random(0)
        assert [policy.delay(a, rng) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=5.0, jitter=0.0)
        assert policy.delay(10, random.Random(0)) == 5.0

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=2.0, max_delay=100.0, jitter=0.25)
        rng = random.Random(42)
        for attempt in range(1, 6):
            nominal = min(100.0, 2.0 * 2 ** (attempt - 1))
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_max_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=5.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, random.Random(0))


class TestAtomicWrite:
    def test_write_and_no_leftover_temp(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(str(path), {"ok": True})
        assert json.loads(path.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def small_manifest():
    owner = ModelOwner(ProteusConfig(k=0, target_subgraph_size=8, seed=0))
    result = owner.obfuscate(build_model("squeezenet"))
    return BucketManifest.from_bucket(result.bucket)


@pytest.fixture
def spool_setup(tmp_path):
    """(spool_dir, SpoolServer with fake clock + deterministic jitter, logs)."""
    spool = tmp_path / "spool"
    spool.mkdir()
    clock = FakeClock()
    logs = []
    with OptimizationServer("ortlike", workers=2) as srv:
        watcher = SpoolServer(
            str(spool),
            srv,
            retry=RetryPolicy(base_delay=10.0, max_delay=100.0, max_attempts=3,
                              jitter=0.0),
            log=logs.append,
            clock=clock,
            rng=random.Random(0),
        )
        yield spool, watcher, clock, logs


class TestSpoolServerBackoff:
    def test_success_writes_output_and_receipt_sidecar(
        self, spool_setup, small_manifest
    ):
        spool, watcher, _, _ = spool_setup
        save_manifest(small_manifest, str(spool / "in.json"))
        records = watcher.run_once()
        assert len(records) == 1
        assert (spool / ("in" + OPTIMIZED_SUFFIX)).exists()
        meta = json.loads((spool / ("in" + RECEIPT_SUFFIX)).read_text())
        assert meta["optimizer"] == "ortlike"
        assert meta["entries"]
        # sidecars are never picked up as inputs
        assert watcher.pending() == []

    def test_failure_backs_off_then_retries(self, spool_setup):
        spool, watcher, clock, logs = spool_setup
        (spool / "bad.json").write_text("{half-writ")
        assert watcher.run_once() == []
        assert len(logs) == 1 and "retry in" in logs[0]
        # immediately after: inside the backoff window, not retried
        assert watcher.pending() == []
        assert watcher.run_once() == []
        assert len(logs) == 1
        # past the first delay (10s, no jitter): due again
        clock.advance(10.1)
        assert watcher.pending() == ["bad.json"]
        assert watcher.run_once() == []
        assert len(logs) == 2

    def test_rewritten_file_resets_schedule(self, spool_setup, small_manifest):
        import os

        spool, watcher, clock, logs = spool_setup
        target = spool / "in.json"
        target.write_text("{half-writ")
        assert watcher.run_once() == []
        # writer finishes: new signature is due immediately, no backoff wait
        save_manifest(small_manifest, str(target))
        os.utime(target, (clock.now, clock.now))  # ensure signature changed
        assert watcher.pending() == ["in.json"]
        records = watcher.run_once()
        assert len(records) == 1
        assert (spool / ("in" + OPTIMIZED_SUFFIX)).exists()

    def test_exhausted_attempts_write_error_sidecar(self, spool_setup):
        spool, watcher, clock, logs = spool_setup
        (spool / "bad.json").write_text('{"nonsense": true}')
        for _ in range(3):  # max_attempts=3
            watcher.run_once()
            clock.advance(200.0)  # beyond any delay
        err = json.loads((spool / ("bad" + ERROR_SUFFIX)).read_text())
        assert err["error"]["code"] == "malformed_request"
        assert err["attempts"] == 3
        assert any("giving up" in line for line in logs)
        # given up: never retried again, even long after
        clock.advance(10_000.0)
        assert watcher.pending() == []

    def test_error_sidecar_surfaces_through_endpoint(
        self, spool_setup, small_manifest
    ):
        from repro.api.endpoint import SpoolEndpoint

        spool, watcher, clock, _ = spool_setup
        endpoint = SpoolEndpoint(str(spool), poll_interval=0.01)
        job_id = endpoint.submit(small_manifest)
        # the file is corrupted before the server ever reads it
        (spool / f"{job_id}.json").write_text('{"nonsense": true}')
        for _ in range(3):
            watcher.run_once()
            clock.advance(200.0)
        with pytest.raises(EndpointError) as exc_info:
            endpoint.await_receipt(job_id, timeout=5)
        assert exc_info.value.code in {"malformed_request", ERR_JOB_FAILED}

    def test_recovery_clears_error_sidecar(self, spool_setup, small_manifest):
        import os

        spool, watcher, clock, _ = spool_setup
        target = spool / "in.json"
        target.write_text('{"nonsense": true}')
        for _ in range(3):
            watcher.run_once()
            clock.advance(200.0)
        assert (spool / ("in" + ERROR_SUFFIX)).exists()
        save_manifest(small_manifest, str(target))
        os.utime(target, (clock.now, clock.now))
        assert len(watcher.run_once()) == 1
        assert not (spool / ("in" + ERROR_SUFFIX)).exists()
        assert (spool / ("in" + OPTIMIZED_SUFFIX)).exists()
