"""OptimizationServer: jobs, receipts, dedup, failure and metrics."""

import threading
import time

import pytest

from repro import ModelOwner, ProteusConfig, build_model
from repro.core.proteus import BucketEntry, ObfuscatedBucket
from repro.ir.serialization import graph_to_dict
from repro.runtime import graphs_equivalent
from repro.serving import (
    JobState,
    OptimizationCache,
    OptimizationServer,
    Priority,
    canonical_hash,
)


class CountingOptimizer:
    """A backend that counts (and can stall) its optimize() calls."""

    name = "counting"
    cache_fingerprint = "counting-default"

    def __init__(self, delay=0.0, gate=None):
        self.calls = 0
        self.delay = delay
        self.gate = gate
        self._lock = threading.Lock()

    def optimize(self, graph):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            self.gate.wait(10)
        if self.delay:
            time.sleep(self.delay)
        return graph.clone()


@pytest.fixture(scope="module")
def obfuscated():
    owner = ModelOwner(ProteusConfig(k=0, seed=0))
    result = owner.obfuscate(build_model("squeezenet"))
    return owner, result


def duplicate_bucket(n_copies=4):
    """A bucket whose entries are all structurally the same graph."""
    base = build_model("squeezenet")
    owner = ModelOwner(ProteusConfig(n=1, k=0, seed=0))
    entry = next(iter(owner.obfuscate(base).bucket))
    entries = [
        BucketEntry(f"dup-{i}", 0, entry.graph.clone(f"dup-{i}"))
        for i in range(n_copies)
    ]
    return ObfuscatedBucket(entries, n_groups=1, k=n_copies - 1)


class TestEndToEnd:
    def test_submit_await_reassemble(self, obfuscated, tmp_path):
        owner, result = obfuscated
        with OptimizationServer("ortlike", cache_dir=str(tmp_path / "c")) as srv:
            job_id = srv.submit(result.bucket)
            receipt = srv.await_receipt(job_id, timeout=120)
            status = srv.status(job_id)
        assert status.state is JobState.DONE
        assert status.completed_entries == status.total_entries == len(result.bucket)
        assert receipt.optimizer == "ortlike"
        recovered = owner.reassemble(receipt)
        assert graphs_equivalent(build_model("squeezenet"), recovered, n_trials=1)

    def test_receipt_matches_direct_service(self, obfuscated, tmp_path):
        """The server's receipt is entry-for-entry identical to the one-shot
        cached OptimizerService path."""
        from repro.api.clients import OptimizerService

        _, result = obfuscated
        direct = OptimizerService("ortlike").optimize(
            result.bucket, cache=OptimizationCache()
        )
        with OptimizationServer("ortlike", workers=3) as srv:
            served = srv.await_receipt(srv.submit(result.bucket), timeout=120)
        for entry in result.bucket:
            assert graph_to_dict(direct.bucket.get(entry.entry_id).graph) == \
                graph_to_dict(served.bucket.get(entry.entry_id).graph)

    def test_unknown_job_id(self):
        with OptimizationServer("ortlike") as srv:
            with pytest.raises(KeyError):
                srv.status("job-nope")
            with pytest.raises(KeyError):
                srv.await_receipt("job-nope")


class TestInFlightDedup:
    def test_duplicate_entries_optimize_once(self):
        """Concurrent duplicate entries: the backend runs exactly once and
        every duplicate receives the result (acceptance criterion)."""
        bucket = duplicate_bucket(n_copies=4)
        gate = threading.Event()
        backend = CountingOptimizer(gate=gate)
        with OptimizationServer(backend, workers=2) as srv:
            job_id = srv.submit(bucket)
            gate.set()
            receipt = srv.await_receipt(job_id, timeout=60)
        assert backend.calls == 1
        assert len(receipt.entries) == 4
        hashes = {canonical_hash(e.graph) for e in receipt.bucket}
        assert len(hashes) == 1  # all four got the (same) result
        # each entry keeps its own identity
        assert sorted(e.entry_id for e in receipt.bucket) == [
            f"dup-{i}" for i in range(4)
        ]

    def test_duplicates_across_concurrent_jobs(self):
        bucket_a = duplicate_bucket(n_copies=2)
        bucket_b = duplicate_bucket(n_copies=2)
        gate = threading.Event()
        backend = CountingOptimizer(gate=gate)
        with OptimizationServer(backend, workers=2) as srv:
            job_a = srv.submit(bucket_a)
            job_b = srv.submit(bucket_b)
            gate.set()
            srv.await_receipt(job_a, timeout=60)
            srv.await_receipt(job_b, timeout=60)
            stats = srv.metrics()["scheduler"]
        assert backend.calls == 1
        assert stats["dedup_hits"] == 3

    def test_cache_serves_repeat_jobs(self):
        bucket = duplicate_bucket(n_copies=2)
        backend = CountingOptimizer()
        with OptimizationServer(backend, cache=OptimizationCache()) as srv:
            srv.await_receipt(srv.submit(bucket), timeout=60)
            srv.await_receipt(srv.submit(bucket), timeout=60)
            metrics = srv.metrics()
        assert backend.calls == 1
        # job 1 dedups its duplicate; job 2's single execution is a cache hit
        assert metrics["entries"]["cache_hits"] >= 1
        assert metrics["entries"]["cache_hit_rate"] > 0


class TestFailure:
    def test_backend_failure_marks_job_failed(self):
        class Exploding:
            name = "exploding"

            def optimize(self, graph):
                raise RuntimeError("no optimizing today")

        bucket = duplicate_bucket(n_copies=1)
        with OptimizationServer(Exploding()) as srv:
            job_id = srv.submit(bucket)
            with pytest.raises(RuntimeError, match="no optimizing today"):
                srv.await_receipt(job_id, timeout=60)
            status = srv.status(job_id)
        assert status.state is JobState.FAILED
        assert "no optimizing today" in status.error

    def test_await_timeout(self):
        gate = threading.Event()
        backend = CountingOptimizer(gate=gate)
        bucket = duplicate_bucket(n_copies=1)
        with OptimizationServer(backend) as srv:
            job_id = srv.submit(bucket)
            with pytest.raises(TimeoutError):
                srv.await_receipt(job_id, timeout=0.05)
            gate.set()
            srv.await_receipt(job_id, timeout=60)  # recovers afterwards

    def test_submit_after_close_rejected(self):
        srv = OptimizationServer("ortlike")
        srv.close()
        with pytest.raises(RuntimeError):
            srv.submit(duplicate_bucket(n_copies=1))


class TestMetricsAndLifecycle:
    def test_metrics_shape(self, obfuscated):
        _, result = obfuscated
        with OptimizationServer("ortlike", cache=OptimizationCache()) as srv:
            srv.await_receipt(srv.submit(result.bucket, priority=Priority.HIGH),
                              timeout=120)
            m = srv.metrics()
        assert m["jobs"]["total"] == 1 and m["jobs"]["done"] == 1
        assert m["entries"]["optimized"] == len(result.bucket)
        assert m["latency"]["mean_s"] > 0
        assert m["latency"]["max_s"] >= m["latency"]["p50_s"] >= 0
        assert m["cache"]["misses"] == len(result.bucket)
        assert m["scheduler"]["executed"] == len(result.bucket)

    def test_uncached_server_reports_none(self):
        with OptimizationServer("ortlike") as srv:
            assert srv.metrics()["cache"] is None

    def test_forget_drops_job(self):
        bucket = duplicate_bucket(n_copies=1)
        with OptimizationServer("ortlike") as srv:
            job_id = srv.submit(bucket)
            srv.await_receipt(job_id, timeout=60)
            srv.forget(job_id)
            with pytest.raises(KeyError):
                srv.status(job_id)
            assert srv.metrics()["jobs"]["total"] == 0

    def test_cache_and_cache_dir_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            OptimizationServer(
                "ortlike", cache=OptimizationCache(), cache_dir=str(tmp_path)
            )


class TestMonotonicCounters:
    """submitted/completed/failed_total: goodput without sampling races."""

    def test_counters_track_job_lifecycle(self, obfuscated):
        _, result = obfuscated
        with OptimizationServer("ortlike", cache=OptimizationCache()) as srv:
            before = srv.metrics()["counters"]
            assert before == {
                "submitted_total": 0,
                "completed_total": 0,
                "failed_total": 0,
                "entries_optimized": 0,
                "entry_cache_hits": 0,
            }
            job_id = srv.submit(result.bucket)
            assert srv.metrics()["counters"]["submitted_total"] == 1
            srv.await_receipt(job_id, timeout=120)
            counters = srv.metrics()["counters"]
        assert counters["completed_total"] == 1
        assert counters["failed_total"] == 0
        assert counters["entries_optimized"] == len(result.bucket)

    def test_failed_jobs_count_separately(self):
        class Exploding:
            name = "exploding"

            def optimize(self, graph):
                raise RuntimeError("boom")

        with OptimizationServer(Exploding()) as srv:
            job_id = srv.submit(duplicate_bucket(n_copies=1))
            with pytest.raises(RuntimeError):
                srv.await_receipt(job_id, timeout=60)
            # completion is signalled by the entry futures, not by the
            # await call; poll briefly for the callback to land.
            deadline = time.time() + 5
            while time.time() < deadline:
                counters = srv.metrics()["counters"]
                if counters["failed_total"]:
                    break
                time.sleep(0.01)
        assert counters["submitted_total"] == 1
        assert counters["failed_total"] == 1
        assert counters["completed_total"] == 0

    def test_forget_never_decrements(self):
        bucket = duplicate_bucket(n_copies=2)
        with OptimizationServer("ortlike") as srv:
            job_id = srv.submit(bucket)
            srv.await_receipt(job_id, timeout=60)
            srv.forget(job_id)
            counters = srv.metrics()["counters"]
        assert counters["submitted_total"] == 1
        assert counters["completed_total"] == 1

    def test_dedup_jobs_each_complete(self):
        """Two jobs sharing dedup'd entry futures both count as completed."""
        backend = CountingOptimizer()
        bucket = duplicate_bucket(n_copies=2)
        with OptimizationServer(backend) as srv:
            jobs = [srv.submit(bucket), srv.submit(bucket)]
            for job_id in jobs:
                srv.await_receipt(job_id, timeout=60)
            counters = srv.metrics()["counters"]
        assert counters["submitted_total"] == 2
        assert counters["completed_total"] == 2


def _distinct_entry_bucket(i):
    """A 1-entry bucket whose graph differs from every other ``i``.

    Distinct initializer values give distinct canonical hashes, so the
    dedup scheduler and cache treat each bucket as genuinely new work —
    the cheap way to build a backlog without obfuscating N models.
    """
    import numpy as np

    from repro.ir.dtypes import DataType, TensorType
    from repro.ir.graph import Graph, Value
    from repro.ir.node import Node

    w = np.full((4, 3, 1, 1), float(i) + 0.5, dtype=np.float32)
    graph = Graph(
        f"tiny-{i}",
        inputs=[Value("x", TensorType(DataType.FLOAT32, (1, 3, 8, 8)))],
        outputs=[Value("y")],
        nodes=[
            Node("conv", "Conv", ["x", "w"], ["h"],
                 {"kernel_shape": (1, 1), "strides": (1, 1),
                  "pads": (0, 0, 0, 0)}),
            Node("act", "Relu", ["h"], ["y"]),
        ],
        initializers={"w": w},
    )
    return ObfuscatedBucket([BucketEntry(f"tiny-{i}", 0, graph)], n_groups=1, k=0)


class TestDrain:
    def test_begin_drain_rejects_new_submits_typed(self):
        from repro.api.wire import ERR_OVERLOADED, EndpointError

        gate = threading.Event()
        with OptimizationServer(CountingOptimizer(gate=gate), workers=1) as srv:
            job_id = srv.submit(_distinct_entry_bucket(0))
            srv.begin_drain()
            assert srv.draining is True
            assert srv.metrics()["draining"] is True
            with pytest.raises(EndpointError) as excinfo:
                srv.submit(_distinct_entry_bucket(1))
            assert excinfo.value.code == ERR_OVERLOADED
            assert excinfo.value.retry_after_s >= 1.0
            # queued work still completes: drain refuses, it does not kill.
            gate.set()
            receipt = srv.await_receipt(job_id, timeout=30)
            assert len(receipt.entries) == 1

    def test_drain_hint_scales_with_backlog(self):
        from repro.api.wire import EndpointError

        gate = threading.Event()
        with OptimizationServer(CountingOptimizer(gate=gate), workers=1) as srv:
            for i in range(5):
                srv.submit(_distinct_entry_bucket(i))
            # warm the latency EWMA so the hint has a backlog estimate.
            srv._signals.observe_entry(2.0)
            srv.begin_drain()
            with pytest.raises(EndpointError) as excinfo:
                srv.submit(_distinct_entry_bucket(99))
            gate.set()
        # 5 entries x 2s ewma = 10s wait -> hint 2x, capped at 30.
        assert excinfo.value.retry_after_s > 1.0


class TestAdmissionDelta:
    """The regression the control plane exists to prevent: under the
    same 2x-overload submit schedule, no admission -> latency grows with
    the backlog (collapse); admission -> latency stays near the budget
    and the excess is shed gracefully."""

    BUDGET_S = 0.25

    def _run(self, admission):
        delay = 0.05
        with OptimizationServer(
            CountingOptimizer(delay=delay), workers=1, admission=admission
        ) as srv:
            submits = []  # (job_id, submitted_at) for admitted jobs
            shed = 0
            for i in range(40):
                try:
                    submits.append((srv.submit(_distinct_entry_bucket(i)), time.monotonic()))
                except Exception:
                    shed += 1
                time.sleep(delay / 4)  # open-loop: 4x over capacity
            latencies = []
            for job_id, t0 in submits:
                srv.await_receipt(job_id, timeout=60)
                latencies.append(time.monotonic() - t0)
        return latencies, shed

    def test_no_admission_collapses_with_admission_bounded(self):
        from repro.control import AdmissionController

        unregulated, shed_without = self._run(admission=None)
        assert shed_without == 0  # nothing sheds without a controller
        # the backlog grows without bound: ~40 entries x 50ms against a
        # submit pace of 12.5ms means the last receipts wait >= 1.2s.
        assert max(unregulated) >= 3 * self.BUDGET_S

        regulated, shed_with = self._run(
            admission=AdmissionController(
                slo_budget_s=self.BUDGET_S, min_queue_depth=2
            )
        )
        assert shed_with > 0  # the excess was refused, typed
        assert len(regulated) > 0  # ...but real goodput got through
        # admitted work was served near the budget, not the backlog:
        # worst case is one just-under-budget wait + service + slack.
        assert max(regulated) <= 3 * self.BUDGET_S
        assert max(regulated) < max(unregulated)
