"""Wire-protocol tests for the HTTP endpoint server.

These speak raw HTTP (urllib) on purpose: they pin down the on-the-wire
contract — status codes, structured error codes, version negotiation —
independently of the `HttpEndpoint` client implementation.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api.clients import ModelOwner
from repro.api.manifest import BucketManifest
from repro.api.wire import (
    ERR_BAD_DIGEST,
    ERR_JOB_PENDING,
    ERR_MALFORMED,
    ERR_NOT_FOUND,
    ERR_UNKNOWN_BACKEND,
    ERR_UNKNOWN_JOB,
    ERR_VERSION_MISMATCH,
    PROTOCOL_VERSION,
    receipt_from_wire,
)
from repro.core import ProteusConfig
from repro.models import build_model
from repro.serving.http import OptimizationHTTPServer


@pytest.fixture(scope="module")
def obfuscation():
    owner = ModelOwner(ProteusConfig(k=0, target_subgraph_size=8, seed=0))
    result = owner.obfuscate(build_model("squeezenet"))
    return owner, result


@pytest.fixture(scope="module")
def server():
    with OptimizationHTTPServer("ortlike", workers=2, port=0) as app:
        host, port = app.start()
        yield f"http://{host}:{port}", app


def _call(base_url, method, path, body=None, raw_body=None):
    """Returns (status, payload) without raising on HTTP errors."""
    data = raw_body
    if body is not None:
        data = json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        base_url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _submit_body(bucket, **overrides):
    body = {
        "protocol_version": PROTOCOL_VERSION,
        "manifest": BucketManifest.from_bucket(bucket).to_dict(),
    }
    body.update(overrides)
    return body


class TestProtocolNegotiation:
    def test_banner(self, server):
        base_url, _ = server
        status, payload = _call(base_url, "GET", "/v1/protocol")
        assert status == 200
        assert payload["protocol_version"] == PROTOCOL_VERSION
        assert payload["optimizer"] == "ortlike"
        assert "ortlike" in payload["optimizers"]

    def test_version_mismatch_rejected(self, server, obfuscation):
        base_url, _ = server
        _, result = obfuscation
        status, payload = _call(
            base_url, "POST", "/v1/jobs",
            body=_submit_body(result.bucket, protocol_version=999),
        )
        assert status == 400
        assert payload["error"]["code"] == ERR_VERSION_MISMATCH
        # the error itself declares the version the server speaks
        assert payload["error"]["protocol_version"] == PROTOCOL_VERSION

    def test_missing_version_rejected(self, server, obfuscation):
        base_url, _ = server
        _, result = obfuscation
        body = _submit_body(result.bucket)
        del body["protocol_version"]
        status, payload = _call(base_url, "POST", "/v1/jobs", body=body)
        assert status == 400
        assert payload["error"]["code"] == ERR_VERSION_MISMATCH


class TestStructuredErrors:
    """Each failure mode returns its own distinct error code."""

    def test_malformed_json(self, server):
        base_url, _ = server
        status, payload = _call(
            base_url, "POST", "/v1/jobs", raw_body=b'{"not json'
        )
        assert status == 400
        assert payload["error"]["code"] == ERR_MALFORMED

    def test_non_object_body(self, server):
        base_url, _ = server
        status, payload = _call(base_url, "POST", "/v1/jobs", body=[1, 2, 3])
        assert status == 400
        assert payload["error"]["code"] == ERR_MALFORMED

    def test_missing_manifest(self, server):
        base_url, _ = server
        status, payload = _call(
            base_url, "POST", "/v1/jobs",
            body={"protocol_version": PROTOCOL_VERSION},
        )
        assert status == 400
        assert payload["error"]["code"] == ERR_MALFORMED

    def test_tampered_manifest_digest(self, server, obfuscation):
        base_url, _ = server
        _, result = obfuscation
        body = _submit_body(result.bucket)
        body["manifest"]["bucket"]["entries"][0]["graph"]["nodes"][0][
            "op_type"
        ] = "Evil"
        status, payload = _call(base_url, "POST", "/v1/jobs", body=body)
        assert status == 400
        assert payload["error"]["code"] == ERR_BAD_DIGEST

    def test_unknown_backend(self, server, obfuscation):
        base_url, _ = server
        _, result = obfuscation
        status, payload = _call(
            base_url, "POST", "/v1/jobs",
            body=_submit_body(result.bucket, optimizer="no-such-backend"),
        )
        assert status == 400
        assert payload["error"]["code"] == ERR_UNKNOWN_BACKEND
        assert "no-such-backend" in payload["error"]["message"]

    def test_unknown_job_status(self, server):
        base_url, _ = server
        status, payload = _call(base_url, "GET", "/v1/jobs/job-nope")
        assert status == 404
        assert payload["error"]["code"] == ERR_UNKNOWN_JOB

    def test_unknown_job_receipt(self, server):
        base_url, _ = server
        status, payload = _call(base_url, "GET", "/v1/jobs/job-nope/receipt")
        assert status == 404
        assert payload["error"]["code"] == ERR_UNKNOWN_JOB

    def test_unknown_route(self, server):
        base_url, _ = server
        status, payload = _call(base_url, "GET", "/v2/everything")
        assert status == 404
        assert payload["error"]["code"] == ERR_NOT_FOUND

    def test_bad_wait_parameter(self, server, obfuscation):
        base_url, _ = server
        _, result = obfuscation
        _, submitted = _call(
            base_url, "POST", "/v1/jobs", body=_submit_body(result.bucket)
        )
        status, payload = _call(
            base_url, "GET", f"/v1/jobs/{submitted['job_id']}/receipt?wait=forever"
        )
        assert status == 400
        assert payload["error"]["code"] == ERR_MALFORMED

    def test_all_codes_distinct(self):
        codes = {
            ERR_MALFORMED,
            ERR_VERSION_MISMATCH,
            ERR_BAD_DIGEST,
            ERR_UNKNOWN_BACKEND,
            ERR_UNKNOWN_JOB,
            ERR_JOB_PENDING,
            ERR_NOT_FOUND,
        }
        assert len(codes) == 7


class TestRoundTrip:
    def test_submit_status_receipt(self, server, obfuscation):
        base_url, _ = server
        owner, result = obfuscation
        status, submitted = _call(
            base_url, "POST", "/v1/jobs", body=_submit_body(result.bucket)
        )
        assert status == 200
        assert submitted["entries"] == len(result.bucket)
        job_id = submitted["job_id"]

        status, payload = _call(base_url, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        assert payload["state"] in {"queued", "running", "done"}

        status, payload = _call(
            base_url, "GET", f"/v1/jobs/{job_id}/receipt?wait=60"
        )
        assert status == 200
        receipt = receipt_from_wire(payload)  # digest-verified
        recovered = owner.reassemble(receipt)
        assert recovered.num_nodes <= build_model("squeezenet").num_nodes

        # receipts are claimed once: the job is gone afterwards
        status, payload = _call(base_url, "GET", f"/v1/jobs/{job_id}/receipt")
        assert status == 404
        assert payload["error"]["code"] == ERR_UNKNOWN_JOB

    def test_zero_wait_receipt_is_pending_or_done(self, server, obfuscation):
        base_url, _ = server
        _, result = obfuscation
        _, submitted = _call(
            base_url, "POST", "/v1/jobs", body=_submit_body(result.bucket)
        )
        status, payload = _call(
            base_url, "GET", f"/v1/jobs/{submitted['job_id']}/receipt?wait=0"
        )
        # tiny buckets may finish instantly; both outcomes are legal,
        # but pending must be the structured 202 form.
        if status == 202:
            assert payload["error"]["code"] == ERR_JOB_PENDING
        else:
            assert status == 200
            assert "manifest" in payload

    def test_metrics_after_traffic(self, server):
        base_url, _ = server
        status, payload = _call(base_url, "GET", "/v1/metrics")
        assert status == 200
        assert payload["transport"] == "http"
        assert "ortlike" in payload["backends"]
        assert payload["backends"]["ortlike"]["entries"]["optimized"] > 0
        # top-level counters aggregate the per-backend monotonic counters
        counters = payload["counters"]
        assert counters["submitted_total"] >= 1
        assert counters["submitted_total"] == sum(
            b["counters"]["submitted_total"] for b in payload["backends"].values()
        )
        assert counters["entries_optimized"] >= counters["entry_cache_hits"]

    def test_submit_names_another_backend(self, server, obfuscation):
        """A submit may request any registered backend by name."""
        base_url, _ = server
        _, result = obfuscation
        status, submitted = _call(
            base_url, "POST", "/v1/jobs",
            body=_submit_body(result.bucket, optimizer="hidetlike"),
        )
        assert status == 200
        assert submitted["optimizer"] == "hidetlike"
        status, payload = _call(
            base_url, "GET", f"/v1/jobs/{submitted['job_id']}/receipt?wait=60"
        )
        assert status == 200
        assert payload["optimizer"] == "hidetlike"

    def test_failed_job_is_structured_and_evicted(self, server, obfuscation):
        """A job whose optimizer raises returns job_failed once, then the
        job is evicted so failures cannot grow server memory unboundedly."""
        from repro.api.registry import register_optimizer
        from repro.api.wire import ERR_JOB_FAILED

        @register_optimizer("boom-http-test", overwrite=True)
        class BoomOptimizer:
            def optimize(self, graph):
                raise RuntimeError("boom")

        base_url, _ = server
        _, result = obfuscation
        status, submitted = _call(
            base_url, "POST", "/v1/jobs",
            body=_submit_body(result.bucket, optimizer="boom-http-test"),
        )
        assert status == 200
        status, payload = _call(
            base_url, "GET", f"/v1/jobs/{submitted['job_id']}/receipt?wait=60"
        )
        assert status == 500
        assert payload["error"]["code"] == ERR_JOB_FAILED
        assert "boom" in payload["error"]["message"]
        status, payload = _call(
            base_url, "GET", f"/v1/jobs/{submitted['job_id']}/receipt"
        )
        assert status == 404
        assert payload["error"]["code"] == ERR_UNKNOWN_JOB


class TestVerifyMemoAndJournal:
    def test_repeat_manifest_hits_verify_memo(self, server, obfuscation):
        """Re-submitting a sealed manifest must not re-hash every graph:
        the digest-table hash memoizes full verification down to the
        O(entries) consistency check, and the canonical-form memo spares
        the per-entry canonicalization."""
        base_url, _ = server
        _, result = obfuscation
        for _ in range(2):
            status, submitted = _call(
                base_url, "POST", "/v1/jobs", body=_submit_body(result.bucket)
            )
            assert status == 200
            _call(
                base_url, "GET", f"/v1/jobs/{submitted['job_id']}/receipt?wait=60"
            )
        status, payload = _call(base_url, "GET", "/v1/metrics")
        assert status == 200
        assert payload["verification"]["memo_entries"] >= 1
        assert payload["verification"]["memo_hits"] >= 1
        backend = payload["backends"]["ortlike"]
        assert backend["canonicalization"]["memo_entries"] >= 1
        assert backend["canonicalization"]["memo_hits"] >= 1

    def test_journal_records_a_replayable_workload(self, tmp_path, obfuscation):
        """`--journal`: accepted submits land in the workload.json schema
        and load back through the standard loadtest path."""
        from repro.loadgen.journal import TrafficJournal
        from repro.loadgen.workload import load_workload

        _, result = obfuscation
        path = str(tmp_path / "trace.json")
        journal = TrafficJournal(path)
        with OptimizationHTTPServer(
            "ortlike", workers=1, port=0, journal=journal
        ) as app:
            host, port = app.start()
            base_url = f"http://{host}:{port}"
            for _ in range(2):
                status, submitted = _call(
                    base_url, "POST", "/v1/jobs", body=_submit_body(result.bucket)
                )
                assert status == 200
                _call(
                    base_url,
                    "GET",
                    f"/v1/jobs/{submitted['job_id']}/receipt?wait=60",
                )
        workload = load_workload(path)
        assert len(workload.requests) == 2
        # identical live digests collapse onto one obfuscation variant
        assert workload.spec.variants == 1
        assert workload.spec.name == "journal"


class TestOverloadedWire:
    """HTTP 429 + code='overloaded' + retry_after_s, on the raw wire."""

    @pytest.fixture()
    def shedding_server(self):
        from repro.api.wire import ERR_OVERLOADED, EndpointError

        class AlwaysShed:
            """Sheds every submit; duck-types the controller surface."""

            class policy:
                slo_budget_s = 0.5

            def admit(self, signals, context="submit"):
                raise EndpointError(
                    ERR_OVERLOADED,
                    "submit shed by admission control (test stand-in)",
                    retry_after_s=1.75,
                )

            def stats(self):
                return {
                    "slo_budget_s": 0.5,
                    "admitted_total": 0,
                    "shed_total": 1,
                }

        with OptimizationHTTPServer(
            "ortlike", workers=2, port=0, admission_slo_s=0.5
        ) as app:
            host, port = app.start()
            app._backends[app.default_backend].admission = AlwaysShed()
            yield f"http://{host}:{port}", app

    def _post_job(self, base_url, body):
        req = urllib.request.Request(
            base_url + "/v1/jobs",
            data=json.dumps(body).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, dict(resp.headers), json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read())

    def test_shed_is_429_with_retry_after(self, shedding_server, obfuscation):
        base_url, _ = shedding_server
        _, result = obfuscation
        status, headers, payload = self._post_job(
            base_url, _submit_body(result.bucket)
        )
        assert status == 429
        assert payload["error"]["code"] == "overloaded"
        assert payload["error"]["retry_after_s"] == pytest.approx(1.75)
        # the standard header carries the hint too, integer-ceilinged.
        assert headers.get("Retry-After") == "2"

    def test_metrics_surface_signals_and_admission(self, shedding_server):
        base_url, _ = shedding_server
        req = urllib.request.Request(base_url + "/v1/metrics", method="GET")
        with urllib.request.urlopen(req, timeout=60) as resp:
            payload = json.loads(resp.read())
        signals = payload["signals"]
        assert set(signals) >= {
            "queue_depth", "workers", "ewma_entry_latency_s", "estimated_wait_s"
        }
        assert payload["admission"]["slo_budget_s"] == 0.5
        assert payload["draining"] is False


class TestGracefulDrain:
    def test_draining_app_refuses_submits_finishes_queued(self, obfuscation):
        _, result = obfuscation
        with OptimizationHTTPServer("ortlike", workers=2, port=0) as app:
            host, port = app.start()
            base = f"http://{host}:{port}"
            status, payload = _call(
                base, "POST", "/v1/jobs", body=_submit_body(result.bucket)
            )
            assert status == 200
            job_id = payload["job_id"]

            app.begin_drain()
            status, payload = _call(
                base, "POST", "/v1/jobs", body=_submit_body(result.bucket)
            )
            assert status == 429
            assert payload["error"]["code"] == "overloaded"
            assert payload["error"]["retry_after_s"] >= 1.0

            # the in-flight job still completes and can be claimed.
            status, payload = _call(
                base, "GET", f"/v1/jobs/{job_id}/receipt?wait=60"
            )
            assert status == 200
            assert receipt_from_wire(payload).entries

            assert app.drain(timeout_s=30.0) is True
            status, payload = _call(base, "GET", "/v1/metrics")
            assert payload["draining"] is True
