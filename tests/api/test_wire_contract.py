"""Runtime cross-transport parity of the wire error-code vocabulary.

The static half of this contract is the ``wire-codes``/``wire-totality``
analyzer rules (``repro check``); this test proves the same properties
about the *imported* module, so a code added through any path that the
AST pass might not see still fails CI.
"""

from repro.api import wire
from repro.api.wire import (
    ERR_JOB_PENDING,
    ERR_OVERLOADED,
    ERR_TRANSPORT,
    HTTP_STATUS,
    MUX_FRAME_EVENT,
    EndpointError,
)

CODES = {
    name: value
    for name, value in vars(wire).items()
    if name.startswith("ERR_") and isinstance(value, str)
}


class TestClosedSet:
    def test_the_set_is_nonempty_and_exported(self):
        assert len(CODES) >= 10
        for name in CODES:
            assert name in wire.__all__, f"{name} missing from wire.__all__"

    def test_code_values_are_distinct(self):
        values = list(CODES.values())
        assert len(values) == len(set(values)), "two ERR_* share a wire value"


class TestHttpParity:
    def test_total_over_the_closed_set(self):
        assert set(HTTP_STATUS) == set(CODES.values())

    def test_statuses_are_sane(self):
        for code, status in HTTP_STATUS.items():
            assert isinstance(status, int), code
            assert 100 <= status <= 599, code

    def test_semantic_anchors(self):
        assert HTTP_STATUS[ERR_JOB_PENDING] == 202  # not ready, not an error
        assert HTTP_STATUS[ERR_OVERLOADED] == 429  # back off and retry
        assert HTTP_STATUS[ERR_TRANSPORT] == 502  # an intermediary answered


class TestMuxFrameParity:
    def test_total_over_the_closed_set(self):
        assert set(MUX_FRAME_EVENT) == set(CODES.values())

    def test_events_are_known_dispositions(self):
        assert set(MUX_FRAME_EVENT.values()) <= {"error", "retry"}

    def test_job_pending_never_crosses_the_stream(self):
        # on the mux transport "not ready" is silence: the server-side
        # receipt watcher absorbs it and keeps waiting
        assert MUX_FRAME_EVENT[ERR_JOB_PENDING] == "retry"
        retried = [c for c, e in MUX_FRAME_EVENT.items() if e == "retry"]
        assert retried == [ERR_JOB_PENDING]

    def test_both_transports_cover_the_same_codes(self):
        assert set(HTTP_STATUS) == set(MUX_FRAME_EVENT)


class TestEndpointErrorRoundtrip:
    def test_every_code_survives_serialization(self):
        for code in CODES.values():
            err = EndpointError(code, f"probe for {code}")
            back = EndpointError.from_dict(err.to_dict())
            assert back.code == code
            assert back.message == f"probe for {code}"
