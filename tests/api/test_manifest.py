"""Tests for the versioned bucket manifest (repro.api.manifest)."""

import json

import pytest

from repro.api.clients import ModelOwner
from repro.api.manifest import (
    MANIFEST_VERSION,
    BucketManifest,
    ManifestIntegrityError,
    graph_digest,
    load_manifest,
    save_manifest,
)
from repro.core import ProteusConfig
from repro.core.bucket_io import save_bucket
from repro.models import build_model


@pytest.fixture(scope="module")
def small_bucket():
    g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
    owner = ModelOwner(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
    return owner.obfuscate(g).bucket


class TestDigests:
    def test_digest_is_stable(self, small_bucket):
        e = small_bucket.entries[0]
        assert graph_digest(e.graph) == graph_digest(e.graph)
        assert graph_digest(e.graph).startswith("sha256:")

    def test_digest_tracks_content(self, small_bucket, conv_chain):
        assert graph_digest(small_bucket.entries[0].graph) != graph_digest(conv_chain)


class TestRoundTrip:
    def test_file_roundtrip_verifies(self, small_bucket, tmp_path):
        path = str(tmp_path / "m.json")
        written = save_manifest(small_bucket, path)
        assert written.manifest_version == MANIFEST_VERSION
        back = load_manifest(path)
        assert len(back.bucket) == len(small_bucket)
        assert back.entry_digests == written.entry_digests
        assert back.bucket_digest == written.bucket_digest
        back.verify()  # explicit re-verification also passes

    def test_seal_then_dict_roundtrip(self, small_bucket):
        manifest = BucketManifest.from_bucket(small_bucket)
        back = BucketManifest.from_dict(manifest.to_dict())
        assert back.bucket_digest == manifest.bucket_digest

    def test_legacy_bare_bucket_loads(self, small_bucket, tmp_path):
        """Seed-format files (no envelope) keep working."""
        path = str(tmp_path / "legacy.json")
        save_bucket(small_bucket, path)
        back = load_manifest(path)
        assert len(back.bucket) == len(small_bucket)
        back.verify()

    def test_unsupported_version_rejected(self, small_bucket):
        d = BucketManifest.from_bucket(small_bucket).to_dict()
        d["manifest_version"] = 99
        with pytest.raises(ValueError, match="manifest version"):
            BucketManifest.from_dict(d)


class TestTamperDetection:
    def _tampered(self, small_bucket, tmp_path, mutate):
        path = str(tmp_path / "t.json")
        save_manifest(small_bucket, path)
        with open(path) as fh:
            d = json.load(fh)
        mutate(d)
        with open(path, "w") as fh:
            json.dump(d, fh)
        return path

    def test_payload_tamper_detected(self, small_bucket, tmp_path):
        path = self._tampered(
            small_bucket,
            tmp_path,
            lambda d: d["bucket"]["entries"][0]["graph"]["nodes"][0].update(
                op_type="Evil"
            ),
        )
        with pytest.raises(ManifestIntegrityError, match="digest mismatch"):
            load_manifest(path)

    def test_digest_tamper_detected(self, small_bucket, tmp_path):
        def flip_digest(d):
            eid = next(iter(d["entry_digests"]))
            d["entry_digests"][eid] = "sha256:" + "0" * 64

        path = self._tampered(small_bucket, tmp_path, flip_digest)
        with pytest.raises(ManifestIntegrityError):
            load_manifest(path)

    def test_dropped_entry_detected(self, small_bucket, tmp_path):
        path = self._tampered(
            small_bucket, tmp_path, lambda d: d["bucket"]["entries"].pop()
        )
        with pytest.raises(ManifestIntegrityError, match="entry set"):
            load_manifest(path)

    def test_bucket_digest_tamper_detected(self, small_bucket, tmp_path):
        path = self._tampered(
            small_bucket,
            tmp_path,
            lambda d: d.update(bucket_digest="sha256:" + "f" * 64),
        )
        with pytest.raises(ManifestIntegrityError, match="bucket digest"):
            load_manifest(path)

    def test_verify_can_be_skipped(self, small_bucket, tmp_path):
        path = self._tampered(
            small_bucket,
            tmp_path,
            lambda d: d.update(bucket_digest="sha256:" + "f" * 64),
        )
        manifest = load_manifest(path, verify=False)  # forensic loading
        with pytest.raises(ManifestIntegrityError):
            manifest.verify()
