"""Tests for the transport-agnostic endpoint API.

The load-bearing guarantee: the same owner script produces
byte-identical reassembled graphs through every transport
(`LocalEndpoint`, `SpoolEndpoint`, `HttpEndpoint`).
"""

import json
import time
from contextlib import contextmanager

import pytest

from tests.helpers import spool_endpoint_harness

from repro.api.clients import ModelOwner, OptimizerService
from repro.api.endpoint import (
    HttpEndpoint,
    LocalEndpoint,
    RemoteOptimizerService,
    SpoolEndpoint,
    open_endpoint,
)
from repro.api.manifest import BucketManifest
from repro.api.types import receipt_from_buckets
from repro.api.wire import (
    ERR_BAD_DIGEST,
    ERR_OVERLOADED,
    ERR_UNKNOWN_JOB,
    EndpointError,
)
from repro.core import ProteusConfig
from repro.ir.serialization import graph_to_dict
from repro.models import build_model
from repro.serving.server import JobState

TRANSPORTS = ["local", "spool", "http", "mux"]


@pytest.fixture(scope="module")
def obfuscation():
    owner = ModelOwner(ProteusConfig(k=0, target_subgraph_size=8, seed=0))
    result = owner.obfuscate(build_model("squeezenet"))
    return owner, result


@contextmanager
def _spool_endpoint(tmp_path):
    """A SpoolEndpoint backed by a pump thread draining the directory."""
    spool = tmp_path / "spool"
    spool.mkdir()
    with spool_endpoint_harness(spool) as endpoint:
        yield endpoint


@contextmanager
def _http_endpoint():
    from repro.serving.http import OptimizationHTTPServer

    with OptimizationHTTPServer("ortlike", workers=2, port=0) as app:
        host, port = app.start()
        yield HttpEndpoint(f"http://{host}:{port}")


@contextmanager
def _mux_endpoint():
    from repro.mux.server import MuxServer
    from repro.serving.http import OptimizationHTTPServer

    app = OptimizationHTTPServer("ortlike", workers=2, port=0)
    server = MuxServer(app)
    host, port = server.start()
    try:
        with open_endpoint(f"mux://{host}:{port}") as endpoint:
            yield endpoint
    finally:
        server.close()


@contextmanager
def _endpoint(kind, tmp_path):
    if kind == "local":
        with LocalEndpoint("ortlike", workers=2) as endpoint:
            yield endpoint
    elif kind == "spool":
        with _spool_endpoint(tmp_path) as endpoint:
            yield endpoint
    elif kind == "http":
        with _http_endpoint() as endpoint:
            yield endpoint
    elif kind == "mux":
        with _mux_endpoint() as endpoint:
            yield endpoint
    else:  # pragma: no cover - test bug
        raise AssertionError(kind)


def _graph_bytes(graph) -> bytes:
    return json.dumps(graph_to_dict(graph), sort_keys=True).encode("utf-8")


class TestCrossTransportIdentity:
    @pytest.fixture(scope="class")
    def reference_bytes(self, obfuscation):
        """The LocalEndpoint result every other transport must match."""
        owner, result = obfuscation
        with LocalEndpoint("ortlike", workers=2) as endpoint:
            job_id = endpoint.submit(BucketManifest.from_bucket(result.bucket))
            receipt = endpoint.await_receipt(job_id, timeout=120)
        return _graph_bytes(owner.reassemble(receipt))

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_reassembled_graph_is_byte_identical(
        self, transport, obfuscation, reference_bytes, tmp_path
    ):
        owner, result = obfuscation
        manifest = BucketManifest.from_bucket(result.bucket)
        with _endpoint(transport, tmp_path) as endpoint:
            job_id = endpoint.submit(manifest)
            receipt = endpoint.await_receipt(job_id, timeout=120)
        assert _graph_bytes(owner.reassemble(receipt)) == reference_bytes

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_optimize_via_owner_helper(
        self, transport, obfuscation, reference_bytes, tmp_path
    ):
        owner, result = obfuscation
        with _endpoint(transport, tmp_path) as endpoint:
            graph = owner.optimize_via(endpoint, result, timeout=120)
        assert _graph_bytes(graph) == reference_bytes

    def test_matches_cached_direct_service(self, obfuscation, reference_bytes):
        """The endpoint path equals the cached OptimizerService path."""
        from repro.serving import OptimizationCache

        owner, result = obfuscation
        receipt = OptimizerService("ortlike").optimize(
            result.bucket, cache=OptimizationCache()
        )
        assert _graph_bytes(owner.reassemble(receipt)) == reference_bytes


class TestEndpointProtocol:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_status_reaches_done(self, transport, obfuscation, tmp_path):
        _, result = obfuscation
        with _endpoint(transport, tmp_path) as endpoint:
            job_id = endpoint.submit(BucketManifest.from_bucket(result.bucket))
            # a live, unclaimed job must report a real status on every
            # transport (regression: HTTP once mistook the status body's
            # error=None field for a wire-error envelope)
            live = endpoint.status(job_id)
            assert live.job_id == job_id
            assert live.state in {
                JobState.QUEUED, JobState.RUNNING, JobState.DONE
            }
            endpoint.await_receipt(job_id, timeout=120)
            if transport == "http":
                # receipts are claimed once over HTTP: the job is forgotten
                with pytest.raises(EndpointError) as exc_info:
                    endpoint.status(job_id)
                assert exc_info.value.code == ERR_UNKNOWN_JOB
            elif transport == "mux":
                # mux is claimed-once too, but the forget rides the
                # client's async ack — poll until the server processes it
                deadline = time.monotonic() + 5.0
                while True:
                    try:
                        endpoint.status(job_id)
                    except EndpointError as exc:
                        assert exc.code == ERR_UNKNOWN_JOB
                        break
                    assert time.monotonic() < deadline, "job never forgotten"
                    time.sleep(0.05)
            else:
                assert endpoint.status(job_id).state is JobState.DONE

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_unknown_job_is_structured(self, transport, tmp_path):
        with _endpoint(transport, tmp_path) as endpoint:
            with pytest.raises(EndpointError) as exc_info:
                endpoint.status("job-does-not-exist")
            assert exc_info.value.code == ERR_UNKNOWN_JOB

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_tampered_manifest_rejected(self, transport, obfuscation, tmp_path):
        """Every transport rejects a bad digest with the same code."""
        _, result = obfuscation
        manifest = BucketManifest.from_bucket(result.bucket)
        entry_id = next(iter(manifest.entry_digests))
        manifest.entry_digests[entry_id] = "sha256:" + "0" * 64
        with _endpoint(transport, tmp_path) as endpoint:
            with pytest.raises(EndpointError) as exc_info:
                endpoint.submit(manifest)
            assert exc_info.value.code == ERR_BAD_DIGEST

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_metrics_carry_transport_tag(self, transport, tmp_path):
        with _endpoint(transport, tmp_path) as endpoint:
            assert endpoint.metrics()["transport"] == transport


class TestHttpKeepAlive:
    def test_requests_reuse_one_connection(self):
        from repro.serving.http import OptimizationHTTPServer

        with OptimizationHTTPServer("ortlike", workers=1, port=0) as app:
            host, port = app.start()
            endpoint = HttpEndpoint(f"http://{host}:{port}")
            for _ in range(3):
                endpoint.metrics()
            # all three requests rode the same pooled connection
            assert len(endpoint._connections) == 1
            endpoint.close()
            assert len(endpoint._connections) == 0

    def test_keep_alive_false_pools_nothing(self):
        from repro.serving.http import OptimizationHTTPServer

        with OptimizationHTTPServer("ortlike", workers=1, port=0) as app:
            host, port = app.start()
            endpoint = HttpEndpoint(f"http://{host}:{port}", keep_alive=False)
            for _ in range(2):
                endpoint.metrics()
            assert len(endpoint._connections) == 0
            endpoint.close()

    def test_stale_socket_reconnects_transparently(self):
        """A server restart between requests must not surface an error:
        the pooled socket is detected as stale and retried once fresh."""
        from repro.serving.http import OptimizationHTTPServer

        app = OptimizationHTTPServer("ortlike", workers=1, port=0)
        host, port = app.start()
        endpoint = HttpEndpoint(f"http://{host}:{port}")
        endpoint.metrics()  # pools a keep-alive connection
        app.close()
        replacement = OptimizationHTTPServer("ortlike", workers=1, port=port)
        try:
            replacement.start()
            assert endpoint.metrics()["transport"] == "http"
        finally:
            endpoint.close()
            replacement.close()

    def test_dead_server_raises_connection_error(self):
        endpoint = HttpEndpoint("http://127.0.0.1:1", timeout=2)
        with pytest.raises(ConnectionError):
            endpoint.metrics()
        endpoint.close()

    def test_bad_scheme_rejected_at_construction(self):
        with pytest.raises(ValueError):
            HttpEndpoint("ftp://host:1")


class TestRemoteOptimizerService:
    def test_service_facade_over_local_endpoint(self, obfuscation):
        owner, result = obfuscation
        with LocalEndpoint("ortlike") as endpoint:
            service = RemoteOptimizerService(endpoint, timeout=120)
            receipt = service.optimize(result.bucket)
        assert service.name == "remote:local"
        assert receipt.nodes_after <= receipt.nodes_before
        owner.reassemble(receipt)  # plan still matches the layout


class TestUriGrammar:
    def test_local_default(self):
        with open_endpoint("local:") as endpoint:
            assert isinstance(endpoint, LocalEndpoint)

    def test_local_named_backend(self, obfuscation):
        _, result = obfuscation
        with open_endpoint("local:hidetlike") as endpoint:
            receipt = endpoint.await_receipt(
                endpoint.submit(result.bucket), timeout=120
            )
        assert receipt.optimizer == "hidetlike"

    def test_spool_path(self, tmp_path):
        with open_endpoint(f"spool:{tmp_path / 'q'}") as endpoint:
            assert isinstance(endpoint, SpoolEndpoint)
            assert (tmp_path / "q").is_dir()  # created for the writer

    def test_http_scheme(self):
        endpoint = open_endpoint("http://127.0.0.1:1/")
        assert isinstance(endpoint, HttpEndpoint)
        assert endpoint.base_url == "http://127.0.0.1:1"
        assert endpoint.optimizer is None  # server-side default

    def test_http_forwards_backend_choice(self, obfuscation):
        """open_endpoint(optimizer=...) selects the backend per submit."""
        from repro.serving.http import OptimizationHTTPServer

        _, result = obfuscation
        with OptimizationHTTPServer("ortlike", workers=2, port=0) as app:
            host, port = app.start()
            with open_endpoint(
                f"http://{host}:{port}", optimizer="hidetlike"
            ) as endpoint:
                receipt = endpoint.await_receipt(
                    endpoint.submit(result.bucket), timeout=120
                )
        assert receipt.optimizer == "hidetlike"

    @pytest.mark.parametrize(
        "uri", ["bogus", "spool:", "ftp://x", "tcp:host:1", ""]
    )
    def test_invalid_uris(self, uri):
        with pytest.raises(ValueError):
            open_endpoint(uri)

    def test_unknown_local_backend_fails_fast(self):
        with pytest.raises(KeyError):
            open_endpoint("local:no-such-backend")


class TestReceiptPlumbing:
    def test_receipt_from_buckets_accounting(self, obfuscation):
        _, result = obfuscation
        receipt_direct = OptimizerService("ortlike").optimize(result.bucket)
        rebuilt = receipt_from_buckets(
            result.bucket, receipt_direct.bucket, optimizer="ortlike", workers=1
        )
        assert rebuilt.nodes_before == receipt_direct.nodes_before
        assert rebuilt.nodes_after == receipt_direct.nodes_after
        assert rebuilt.entries == receipt_direct.entries

    def test_wire_receipt_round_trip(self, obfuscation):
        from repro.api.wire import receipt_from_wire, receipt_to_wire

        _, result = obfuscation
        receipt = OptimizerService("ortlike").optimize(result.bucket)
        wire = json.loads(json.dumps(receipt_to_wire(receipt)))
        rebuilt = receipt_from_wire(wire)
        assert rebuilt.optimizer == receipt.optimizer
        assert rebuilt.entries == receipt.entries
        for entry in receipt.bucket:
            assert graph_to_dict(rebuilt.bucket.get(entry.entry_id).graph) == (
                graph_to_dict(entry.graph)
            )


class _AlwaysShed:
    """Admission stand-in that sheds every submit with a fixed hint.

    Duck-types the AdmissionController surface OptimizationServer uses
    (`policy.slo_budget_s`, `admit()`, `stats()`), so the parity tests
    exercise the *transport* propagation deterministically instead of
    racing a real queue into overload.
    """

    def __init__(self, retry_after_s=0.25):
        from repro.control import AdmissionPolicy

        self.policy = AdmissionPolicy(slo_budget_s=0.5)
        self.retry_after_s = retry_after_s
        self.shed_total = 0

    def admit(self, signals, context="submit"):
        self.shed_total += 1
        raise EndpointError(
            ERR_OVERLOADED,
            f"{context} shed by admission control (test stand-in)",
            retry_after_s=self.retry_after_s,
        )

    def stats(self):
        return {
            "slo_budget_s": self.policy.slo_budget_s,
            "admitted_total": 0,
            "shed_total": self.shed_total,
        }


class TestOverloadedParity:
    """Every transport surfaces an admission shed the same way: a typed
    EndpointError(code='overloaded') carrying a retry_after_s hint."""

    def _assert_overloaded(self, excinfo):
        assert excinfo.value.code == ERR_OVERLOADED
        assert excinfo.value.retry_after_s == pytest.approx(0.25, abs=1e-3)

    def test_local_endpoint_sheds_typed(self, obfuscation):
        _, result = obfuscation
        manifest = BucketManifest.from_bucket(result.bucket)
        with LocalEndpoint("ortlike", workers=2, admission=_AlwaysShed()) as ep:
            with pytest.raises(EndpointError) as excinfo:
                ep.submit(manifest)
        self._assert_overloaded(excinfo)

    def test_spool_endpoint_sheds_typed(self, obfuscation, tmp_path):
        import threading

        from repro.serving import OptimizationServer
        from repro.serving.spool import RetryPolicy, SpoolServer

        _, result = obfuscation
        spool = tmp_path / "spool"
        spool.mkdir()
        with OptimizationServer("ortlike", workers=2, admission=_AlwaysShed()) as srv:
            watcher = SpoolServer(
                str(spool),
                srv,
                retry=RetryPolicy(max_attempts=1),
                log=lambda msg: None,
            )
            stop = threading.Event()

            def pump():
                while not stop.is_set():
                    watcher.run_once()
                    stop.wait(0.02)

            thread = threading.Thread(target=pump, daemon=True)
            thread.start()
            try:
                with SpoolEndpoint(str(spool)) as ep:
                    job_id = ep.submit(BucketManifest.from_bucket(result.bucket))
                    with pytest.raises(EndpointError) as excinfo:
                        ep.await_receipt(job_id, timeout=30)
            finally:
                stop.set()
                thread.join(timeout=10)
        self._assert_overloaded(excinfo)

    def test_http_endpoint_sheds_typed(self, obfuscation):
        from repro.serving.http import OptimizationHTTPServer

        _, result = obfuscation
        manifest = BucketManifest.from_bucket(result.bucket)
        with OptimizationHTTPServer(
            "ortlike", workers=2, port=0, admission_slo_s=0.5
        ) as app:
            host, port = app.start()
            app._backends[app.default_backend].admission = _AlwaysShed()
            # retry=None: surface the first shed instead of backing off.
            with HttpEndpoint(f"http://{host}:{port}", retry=None) as ep:
                with pytest.raises(EndpointError) as excinfo:
                    ep.submit(manifest)
                assert ep.client_stats()["shed_total"] == 1
                assert ep.client_stats()["gave_up_total"] == 1
        self._assert_overloaded(excinfo)


class TestClientBackoff:
    """HttpEndpoint/RemoteOptimizerService honor retry_after_s with
    capped exponential backoff instead of failing fast."""

    def _shedding_server(self):
        from contextlib import contextmanager

        from repro.serving.http import OptimizationHTTPServer

        @contextmanager
        def cm():
            with OptimizationHTTPServer(
                "ortlike", workers=2, port=0, admission_slo_s=0.5
            ) as app:
                host, port = app.start()
                shed = _AlwaysShed(retry_after_s=0.01)
                app._backends[app.default_backend].admission = shed
                yield f"http://{host}:{port}", shed

        return cm()

    def test_exhausted_retries_tally_and_raise(self, obfuscation):
        from repro.serving.spool import RetryPolicy

        _, result = obfuscation
        manifest = BucketManifest.from_bucket(result.bucket)
        policy = RetryPolicy(
            base_delay=0.01, max_delay=0.05, max_attempts=3, jitter=0.0
        )
        with self._shedding_server() as (url, shed):
            with HttpEndpoint(url, retry=policy) as ep:
                with pytest.raises(EndpointError) as excinfo:
                    ep.submit(manifest)
                stats = ep.client_stats()
        assert excinfo.value.code == ERR_OVERLOADED
        assert stats["shed_total"] == 3  # every attempt was shed
        assert stats["retried_total"] == 2  # two backoffs between them
        assert stats["gave_up_total"] == 1
        assert shed.shed_total == 3  # the server really saw 3 submits

    def test_retry_succeeds_once_capacity_returns(self, obfuscation):
        from repro.serving.spool import RetryPolicy

        _, result = obfuscation
        manifest = BucketManifest.from_bucket(result.bucket)

        class ShedOnce(_AlwaysShed):
            def admit(self, signals, context="submit"):
                if self.shed_total == 0:
                    super().admit(signals, context)  # raises

        from repro.serving.http import OptimizationHTTPServer

        with OptimizationHTTPServer(
            "ortlike", workers=2, port=0, admission_slo_s=0.5
        ) as app:
            host, port = app.start()
            app._backends[app.default_backend].admission = ShedOnce(
                retry_after_s=0.01
            )
            policy = RetryPolicy(
                base_delay=0.01, max_delay=0.05, max_attempts=4, jitter=0.0
            )
            with HttpEndpoint(f"http://{host}:{port}", retry=policy) as ep:
                job_id = ep.submit(manifest)
                receipt = ep.await_receipt(job_id, timeout=120)
                stats = ep.client_stats()
        assert len(receipt.entries) >= 1
        assert stats["shed_total"] == 1
        assert stats["retried_total"] == 1
        assert stats["gave_up_total"] == 0

    def test_remote_service_does_not_stack_retries_on_http(self):
        # the facade must defer to an endpoint that backs off itself —
        # otherwise attempts would multiply (N_client x N_facade).
        with LocalEndpoint("ortlike", workers=1) as ep:
            svc = RemoteOptimizerService(ep)
            assert svc.retry is not None  # local endpoint: facade retries
        class HasRetry:
            transport = "fake"
            retry = object()

        assert RemoteOptimizerService(HasRetry()).retry is None
