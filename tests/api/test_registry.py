"""Tests for the component registries (repro.api.registry)."""

import pytest

from repro.api.registry import (
    Registry,
    UnknownComponentError,
    list_optimizers,
    list_partitioners,
    list_sentinel_strategies,
    resolve_optimizer,
    resolve_partitioner,
    resolve_sentinel_strategy,
)
from repro.core import ProteusConfig
from repro.optimizer import HidetLikeOptimizer, OrtLikeOptimizer


class TestBuiltins:
    def test_builtin_optimizers_registered(self):
        assert {"ortlike", "hidetlike"} <= set(list_optimizers())

    def test_builtin_partitioner_registered(self):
        assert "karger_stein" in list_partitioners()

    def test_builtin_strategies_registered(self):
        assert {"generate", "perturb", "mixed", "random"} <= set(
            list_sentinel_strategies()
        )

    def test_resolve_returns_the_classes(self):
        assert resolve_optimizer("ortlike") is OrtLikeOptimizer
        assert resolve_optimizer("hidetlike") is HidetLikeOptimizer

    def test_resolved_partitioner_partitions(self, conv_chain):
        part = resolve_partitioner("karger_stein")(conv_chain, 2, trials=4, seed=0)
        assert part.n == 2

    def test_config_strategies_match_registry(self):
        """The registry is authoritative: config's builtin tuple must not
        drift from the registered strategy set (the Fig. 6 `random`
        baseline went missing from the CLI exactly this way)."""
        assert set(ProteusConfig._STRATEGIES) <= set(list_sentinel_strategies())


class TestUnknownNames:
    def test_unknown_optimizer(self):
        with pytest.raises(UnknownComponentError, match="ortlike"):
            resolve_optimizer("tvm")

    def test_unknown_partitioner(self):
        with pytest.raises(UnknownComponentError, match="karger_stein"):
            resolve_partitioner("metis")

    def test_unknown_strategy(self):
        with pytest.raises(UnknownComponentError, match="mixed"):
            resolve_sentinel_strategy("telepathy")

    def test_error_is_a_lookup_error(self):
        with pytest.raises(KeyError):
            resolve_optimizer("nope")


class TestRegistration:
    def test_register_and_resolve(self):
        reg = Registry("widget")

        @reg.register("spinner")
        class Spinner:
            pass

        assert reg.resolve("spinner") is Spinner
        assert reg.names() == ["spinner"]
        assert "spinner" in reg
        assert len(reg) == 1

    def test_name_defaults_to_name_attribute(self):
        reg = Registry("widget")

        @reg.register()
        class Thing:
            name = "fancy"

        assert reg.resolve("fancy") is Thing

    def test_duplicate_rejected(self):
        reg = Registry("widget")
        reg.register("x")(object())
        with pytest.raises(ValueError, match="already registered"):
            reg.register("x")(object())

    def test_overwrite_allowed_explicitly(self):
        reg = Registry("widget")
        reg.register("x")(1)
        reg.register("x", overwrite=True)(2)
        assert reg.resolve("x") == 2

    def test_custom_optimizer_usable_by_name(self, conv_chain):
        """The third-party flow: register, then address by string."""
        from repro.api.clients import OptimizerService
        from repro.api.registry import OPTIMIZERS, register_optimizer

        @register_optimizer("test-noop")
        class NoopOptimizer:
            def optimize(self, graph):
                return graph.clone()

        try:
            receipt_cls = OptimizerService("test-noop")
            assert receipt_cls.name == "test-noop"
        finally:
            OPTIMIZERS._entries.pop("test-noop", None)

    def test_custom_strategy_accepted_by_config(self):
        from repro.api.registry import SENTINEL_STRATEGIES, register_sentinel_strategy

        @register_sentinel_strategy("test-strategy")
        def _source(config):  # pragma: no cover - never built
            raise NotImplementedError

        try:
            cfg = ProteusConfig(sentinel_strategy="test-strategy")
            assert cfg.sentinel_strategy == "test-strategy"
        finally:
            SENTINEL_STRATEGIES._entries.pop("test-strategy", None)
