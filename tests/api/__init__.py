"""Tests for the repro.api service surface."""
