"""Tests for the role-separated clients (repro.api.clients)."""

import threading

import pytest

from repro.api.clients import ModelOwner, OptimizerService
from repro.api.manifest import graph_digest
from repro.api.types import ObfuscationResult, OptimizationReceipt, bucket_key
from repro.core import ProteusConfig, Proteus
from repro.models import build_model
from repro.optimizer import OrtLikeOptimizer
from repro.runtime import graphs_equivalent


@pytest.fixture(scope="module")
def model():
    return build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))


@pytest.fixture(scope="module")
def obfuscated(model):
    owner = ModelOwner(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
    return owner, owner.obfuscate(model)


class TestModelOwner:
    def test_obfuscate_returns_typed_result(self, obfuscated):
        _, result = obfuscated
        assert isinstance(result, ObfuscationResult)
        assert result.stats.n_entries == len(result.bucket)
        assert result.stats.partitioner == "karger_stein"
        assert result.stats.search_space == result.bucket.nominal_search_space()

    def test_matches_legacy_facade(self, model):
        """The facade and the new client must produce identical buckets."""
        cfg = ProteusConfig(target_subgraph_size=8, k=0, seed=0)
        result = ModelOwner(cfg).obfuscate(model)
        bucket, plan = Proteus(cfg).obfuscate(model)
        assert [e.entry_id for e in result.bucket] == [e.entry_id for e in bucket]
        assert result.plan.real_ids == plan.real_ids
        for e in bucket:
            assert graph_digest(result.bucket.get(e.entry_id).graph) == graph_digest(
                e.graph
            )

    def test_reassemble_from_receipt(self, model, obfuscated):
        owner, result = obfuscated
        receipt = OptimizerService("ortlike").optimize(result.bucket)
        recovered = owner.reassemble(receipt)
        assert graphs_equivalent(model, recovered, n_trials=1)

    def test_reassemble_foreign_bucket_rejected(self, obfuscated):
        _, result = obfuscated
        stranger = ModelOwner()
        with pytest.raises(KeyError, match="plan"):
            stranger.reassemble(result.bucket)

    def test_reassemble_with_explicit_plan(self, model, obfuscated):
        _, result = obfuscated
        recovered = ModelOwner().reassemble(result.bucket, result.plan)
        assert graphs_equivalent(model, recovered, n_trials=1)

    def test_same_geometry_buckets_do_not_collide(self, model):
        """Two obfuscations with identical geometry (same model, different
        seeds) must keep distinct plans — entry ids carry a nonce so the
        layout keys differ and reassemble() always picks the right plan."""
        owner = ModelOwner(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        first = owner.obfuscate(model)
        owner.config = ProteusConfig(target_subgraph_size=8, k=0, seed=99)
        second = owner.obfuscate(model)
        assert first.key != second.key
        for result in (first, second):
            recovered = owner.reassemble(
                OptimizerService("ortlike").optimize(result.bucket)
            )
            assert graphs_equivalent(model, recovered, n_trials=1)

    def test_obfuscation_is_deterministic(self, model):
        """Same model + same config → identical bucket (ids included)."""
        cfg = ProteusConfig(target_subgraph_size=8, k=0, seed=0)
        a = ModelOwner(cfg).obfuscate(model)
        b = ModelOwner(cfg).obfuscate(model)
        assert a.key == b.key
        assert [e.entry_id for e in a.bucket] == [e.entry_id for e in b.bucket]

    def test_forget_drops_plan(self, model):
        owner = ModelOwner(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        result = owner.obfuscate(model)
        owner.forget(result)
        with pytest.raises(KeyError):
            owner.reassemble(result.bucket)

    def test_plan_never_in_optimizer_signatures(self):
        """Role separation: no OptimizerService entry point accepts a plan."""
        import inspect

        for name, fn in inspect.getmembers(OptimizerService, inspect.isfunction):
            params = set(inspect.signature(fn).parameters)
            assert "plan" not in params, f"OptimizerService.{name} leaks the plan"


class TestOptimizerService:
    def test_resolves_by_name(self):
        assert OptimizerService("hidetlike").name == "hidetlike"

    def test_unknown_name_raises(self):
        from repro.api.registry import UnknownComponentError

        with pytest.raises(UnknownComponentError):
            OptimizerService("tvm")

    def test_accepts_instance(self, obfuscated):
        _, result = obfuscated
        receipt = OptimizerService(OrtLikeOptimizer()).optimize(result.bucket)
        assert isinstance(receipt, OptimizationReceipt)
        assert receipt.nodes_after <= receipt.nodes_before

    def test_receipt_accounting(self, obfuscated):
        _, result = obfuscated
        receipt = OptimizerService("ortlike").optimize(result.bucket)
        assert set(receipt.entries) == {e.entry_id for e in result.bucket}
        assert receipt.nodes_before == sum(
            e.graph.num_nodes for e in result.bucket
        )
        assert receipt.key == bucket_key(result.bucket)
        assert "ortlike" in receipt.summary()

    def test_parallel_identical_to_serial(self, obfuscated):
        """The determinism guarantee: --jobs N is entry-for-entry identical."""
        _, result = obfuscated
        service = OptimizerService("ortlike")
        serial = service.optimize(result.bucket, max_workers=1)
        parallel = service.optimize(result.bucket, max_workers=4)
        assert [e.entry_id for e in serial.bucket] == [
            e.entry_id for e in parallel.bucket
        ]
        for entry in serial.bucket:
            assert graph_digest(entry.graph) == graph_digest(
                parallel.bucket.get(entry.entry_id).graph
            )
        assert serial.entries == parallel.entries

    def test_parallel_uses_multiple_threads(self, obfuscated):
        """With enough entries and workers, work actually fans out."""
        _, result = obfuscated
        seen = set()

        class Recorder:
            def optimize(self, graph):
                seen.add(threading.get_ident())
                return graph.clone()

        OptimizerService(Recorder()).optimize(result.bucket, max_workers=4)
        # len(bucket) >= 2 here; at least the pool ran (main thread never
        # optimizes on the parallel path).
        assert threading.get_ident() not in seen

    def test_progress_callback(self, obfuscated):
        _, result = obfuscated
        calls = []
        OptimizerService("ortlike").optimize(
            result.bucket,
            max_workers=2,
            progress=lambda done, total, eid: calls.append((done, total, eid)),
        )
        assert len(calls) == len(result.bucket)
        assert [c[0] for c in calls] == list(range(1, len(result.bucket) + 1))
        assert {c[2] for c in calls} == {e.entry_id for e in result.bucket}

    def test_class_as_factory(self, obfuscated):
        """Passing the class itself treats it as a per-worker factory,
        not an instance (its unbound .optimize must never be called)."""
        _, result = obfuscated
        service = OptimizerService(OrtLikeOptimizer)
        assert service.name == "ortlike"
        receipt = service.optimize(result.bucket, max_workers=2)
        assert len(receipt.entries) == len(result.bucket)

    def test_factory_input(self, obfuscated):
        _, result = obfuscated
        receipt = OptimizerService(lambda: OrtLikeOptimizer(level="basic")).optimize(
            result.bucket
        )
        assert len(receipt.entries) == len(result.bucket)

    def test_options_require_name(self):
        with pytest.raises(TypeError, match="backend name"):
            OptimizerService(OrtLikeOptimizer(), kernel_selection=True)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError, match="optimizer"):
            OptimizerService(42)


class TestEndToEndWithSentinels:
    def test_two_party_flow(self, sentinel_generator):
        model = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        owner = ModelOwner(
            ProteusConfig(target_subgraph_size=8, k=2, seed=0),
            sentinel_source=sentinel_generator,
        )
        result = owner.obfuscate(model)
        assert len(result.bucket) == result.bucket.n_groups * 3
        receipt = OptimizerService("ortlike").optimize(result.bucket, max_workers=3)
        recovered = owner.reassemble(receipt)
        assert graphs_equivalent(model, recovered, n_trials=1)
