"""Tests for perturbation-based sentinels."""

import numpy as np
import pytest

from repro.ir.validate import validate_graph
from repro.runtime import Executor, random_inputs
from repro.sentinel.perturbation import perturb_subgraph


class TestPerturbation:
    def test_valid_output(self, subgraph_database, rng):
        real = subgraph_database[3]
        p = perturb_subgraph(real, rng)
        validate_graph(p)

    def test_differs_from_original(self, subgraph_database, rng):
        real = subgraph_database[3]
        p = perturb_subgraph(real, rng)
        same_ops = [n.op_type for n in p.topological_order()] == [
            n.op_type for n in real.topological_order()
        ]
        same_count = p.num_nodes == real.num_nodes
        assert not (same_ops and same_count)

    def test_original_untouched(self, subgraph_database, rng):
        real = subgraph_database[3]
        ops_before = [n.op_type for n in real.nodes]
        perturb_subgraph(real, rng)
        assert [n.op_type for n in real.nodes] == ops_before

    def test_interface_preserved(self, subgraph_database, rng):
        real = subgraph_database[2]
        p = perturb_subgraph(real, rng)
        assert p.input_names == real.input_names
        assert p.output_names == real.output_names

    def test_executes(self, subgraph_database, rng):
        real = subgraph_database[4]
        p = perturb_subgraph(real, rng)
        out = Executor(p).run(random_inputs(p))
        assert set(out) == set(p.output_names)

    def test_multiple_seeds_diverse(self, subgraph_database):
        real = subgraph_database[3]
        signatures = set()
        for seed in range(6):
            p = perturb_subgraph(real, np.random.default_rng(seed))
            signatures.add(tuple(sorted(p.opcode_histogram().items())))
        assert len(signatures) >= 3

    def test_explicit_edit_count(self, subgraph_database, rng):
        real = subgraph_database[3]
        p = perturb_subgraph(real, rng, n_edits=1)
        validate_graph(p)

    def test_name_assigned(self, subgraph_database, rng):
        p = perturb_subgraph(subgraph_database[3], rng, name="mysentinel")
        assert p.name == "mysentinel"
