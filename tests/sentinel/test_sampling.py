"""Tests for density estimation and Algorithm 1 topology sampling."""

import networkx as nx
import numpy as np
import pytest

from repro.sentinel.density import FeatureDensity
from repro.sentinel.features import feature_matrix, graph_features
from repro.sentinel.topology_sampler import TopologySampler


class TestFeatureDensity:
    def test_density_positive(self):
        rng = np.random.default_rng(0)
        samples = rng.standard_normal((50, 3))
        d = FeatureDensity(samples)
        assert d(np.zeros(3)) > 0

    def test_higher_near_mass(self):
        rng = np.random.default_rng(1)
        samples = rng.standard_normal((100, 2))
        d = FeatureDensity(samples)
        assert d(np.zeros(2)) > d(np.array([8.0, 8.0]))

    def test_degenerate_dimension_handled(self):
        rng = np.random.default_rng(2)
        samples = np.column_stack([rng.standard_normal(40), np.full(40, 3.0)])
        d = FeatureDensity(samples)  # must not crash on zero-variance dim
        assert d(np.array([0.0, 3.0])) > 0

    def test_all_degenerate(self):
        samples = np.full((10, 2), 5.0)
        d = FeatureDensity(samples)
        assert d(np.array([5.0, 5.0])) == 1.0

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="N>=2"):
            FeatureDensity(np.zeros((1, 3)))

    def test_standardize(self):
        rng = np.random.default_rng(3)
        samples = rng.standard_normal((60, 2)) * np.array([2.0, 5.0]) + 1.0
        d = FeatureDensity(samples)
        z = d.standardize(samples.mean(axis=0))
        np.testing.assert_allclose(z, 0.0, atol=1e-9)


class TestTopologySampler:
    @pytest.fixture(scope="class")
    def sampler(self, subgraph_database):
        from repro.sentinel.graphrnn import GraphRNNLite
        model = GraphRNNLite().fit(subgraph_database, seed=0)
        return TopologySampler(model.sample_many(150, seed=1))

    def test_pool_size_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            TopologySampler([nx.path_graph(3)])

    def test_beta_validation(self, sampler, subgraph_database, rng):
        with pytest.raises(ValueError, match="beta"):
            sampler.sample(subgraph_database[0], beta=0.0, rng=rng)

    def test_samples_are_dags(self, sampler, subgraph_database, rng):
        results = sampler.sample(subgraph_database[2], beta=0.8, rng=rng)
        for r in results:
            assert nx.is_directed_acyclic_graph(r.dag)

    def test_samples_near_protected_features(self, sampler, subgraph_database, rng):
        protected = subgraph_database[2]
        results = sampler.sample(protected, beta=0.6, rng=rng)
        if not results:
            pytest.skip("band empty at this seed")
        x = sampler.density.standardize(graph_features(protected).as_array())
        for r in results:
            z = sampler.density.standardize(r.features)
            # in-band: within beta of the protected graph on every axis
            assert np.all(np.abs(z - x) <= 0.6 + 1e-9)

    def test_weights_are_inverse_density(self, sampler, subgraph_database, rng):
        results = sampler.sample(subgraph_database[2], beta=1.0, rng=rng)
        for r in results:
            assert r.weight == pytest.approx(1.0 / sampler.density(r.features), rel=1e-6)

    def test_sample_at_least_reaches_count(self, sampler, subgraph_database, rng):
        got = sampler.sample_at_least(subgraph_database[0], beta=0.3, rng=rng, count=10)
        assert len(got) == 10

    def test_max_results_respected(self, sampler, subgraph_database, rng):
        got = sampler.sample(subgraph_database[0], beta=2.0, rng=rng, max_results=3)
        assert len(got) <= 3
