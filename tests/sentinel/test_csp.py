"""Tests for the finite-domain CSP enumerator."""

import pytest

from repro.sentinel.csp import CSPSolver


class TestCSPSolver:
    def test_simple_enumeration(self):
        solver = CSPSolver(["a", "b"], lambda v, asn: [0, 1])
        sols = list(solver.solutions())
        assert len(sols) == 4
        assert {(s["a"], s["b"]) for s in sols} == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_max_solutions(self):
        solver = CSPSolver(["a", "b", "c"], lambda v, asn: [0, 1])
        assert len(list(solver.solutions(max_solutions=3))) == 3

    def test_dynamic_domains(self):
        # b must exceed a
        def domain(var, asn):
            if var == "a":
                return [0, 1, 2]
            return [x for x in [0, 1, 2] if x > asn["a"]]

        sols = list(CSPSolver(["a", "b"], domain).solutions())
        assert all(s["b"] > s["a"] for s in sols)
        assert len(sols) == 3

    def test_constraints_filter(self):
        solver = CSPSolver(
            ["a", "b"],
            lambda v, asn: [0, 1, 2],
            constraints=[lambda v, val, asn: val != 1],
        )
        sols = list(solver.solutions())
        assert all(1 not in s.values() for s in sols)
        assert len(sols) == 4

    def test_unsatisfiable(self):
        def domain(var, asn):
            return [] if var == "b" else [0]

        assert list(CSPSolver(["a", "b"], domain).solutions()) == []

    def test_budget_soft_stops(self):
        solver = CSPSolver(list("abcdefgh"), lambda v, asn: [0, 1], budget=10)
        sols = list(solver.solutions())
        assert solver.stats.expansions <= 10
        assert len(sols) < 2**8

    def test_solutions_are_copies(self):
        solver = CSPSolver(["a"], lambda v, asn: [0, 1])
        s1, s2 = list(solver.solutions())
        s1["a"] = 99
        assert s2["a"] != 99

    def test_first_solution(self):
        solver = CSPSolver(["a"], lambda v, asn: [7])
        assert solver.first_solution() == {"a": 7}
        solver2 = CSPSolver(["a"], lambda v, asn: [])
        assert solver2.first_solution() is None

    def test_no_variables_rejected(self):
        with pytest.raises(ValueError, match="variable"):
            CSPSolver([], lambda v, asn: [0])

    def test_stats_counting(self):
        solver = CSPSolver(["a", "b"], lambda v, asn: [0, 1])
        list(solver.solutions())
        assert solver.stats.solutions == 4
        assert solver.stats.expansions >= 4
