"""Tests for syntactic constraint generation (candidate choices)."""

import numpy as np
import pytest

from repro.ir.dtypes import f32
from repro.sentinel.constraints import BINARY_OPS, UNARY_OPS, candidate_choices


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestUnaryCandidates:
    def test_4d_input_gets_conv_choices(self, rng):
        choices = candidate_choices([f32(1, 16, 16, 16)], rng)
        ops = {c.op_type for c in choices}
        assert "Conv" in ops
        assert "MaxPool" in ops
        assert "BatchNormalization" in ops

    def test_2d_input_no_conv(self, rng):
        choices = candidate_choices([f32(4, 16)], rng)
        ops = {c.op_type for c in choices}
        assert "Conv" not in ops
        assert "MaxPool" not in ops
        assert "Gemm" in ops

    def test_3d_input_matmul_but_not_gemm(self, rng):
        choices = candidate_choices([f32(1, 8, 16)], rng)
        ops = {c.op_type for c in choices}
        assert "MatMul" in ops
        assert "Gemm" not in ops
        assert "LayerNormalization" in ops

    def test_all_choices_shape_infer(self, rng):
        """Every candidate must already be syntactically valid."""
        for t in [f32(1, 8, 8, 8), f32(1, 8, 16), f32(4, 16)]:
            for c in candidate_choices([t], rng):
                assert c.out_type is not None
                assert c.out_type.shape  # non-degenerate

    def test_conv_candidates_carry_weights(self, rng):
        choices = [c for c in candidate_choices([f32(1, 8, 8, 8)], rng) if c.op_type == "Conv"]
        assert choices
        for c in choices:
            assert len(c.param_shapes) == 2  # weight + bias
            assert c.param_shapes[0][2] == c.attrs["kernel_shape"][0]

    def test_depthwise_variant_present(self, rng):
        choices = [c for c in candidate_choices([f32(1, 8, 8, 8)], rng) if c.op_type == "Conv"]
        assert any(c.attrs.get("group") == 8 for c in choices)

    def test_small_spatial_output_never_degenerate(self, rng):
        # 1x1 spatial input: padding keeps 3x3 kernels legal, but every
        # surviving candidate must still produce a positive spatial output
        choices = [c for c in candidate_choices([f32(1, 8, 1, 1)], rng) if c.op_type == "Conv"]
        assert choices
        for c in choices:
            assert c.out_type.shape[2] >= 1 and c.out_type.shape[3] >= 1


class TestBinaryCandidates:
    def test_equal_shapes_get_add(self, rng):
        choices = candidate_choices([f32(1, 8, 4, 4), f32(1, 8, 4, 4)], rng)
        ops = {c.op_type for c in choices}
        assert "Add" in ops and "Mul" in ops and "Concat" in ops

    def test_incompatible_shapes_filtered(self, rng):
        choices = candidate_choices([f32(1, 8, 4, 4), f32(1, 7, 3, 3)], rng)
        assert all(c.op_type not in ("Add", "Mul", "Sub", "Div") for c in choices)

    def test_concat_on_channel_mismatch(self, rng):
        choices = candidate_choices([f32(1, 8, 4, 4), f32(1, 4, 4, 4)], rng)
        ops = {c.op_type for c in choices}
        assert "Concat" in ops

    def test_input_types_splices_params(self, rng):
        c = next(c for c in candidate_choices([f32(1, 8, 8, 8)], rng) if c.op_type == "Conv")
        full = c.input_types([f32(1, 8, 8, 8)])
        assert len(full) == 3
        assert full[1].shape == c.param_shapes[0]


class TestOpTables:
    def test_tables_disjoint_sanity(self):
        assert "Conv" in UNARY_OPS
        assert "Concat" in BINARY_OPS
        assert "Identity" not in UNARY_OPS
