"""Tests for graph feature extraction."""

import networkx as nx
import numpy as np
import pytest

from repro.sentinel.features import (
    FEATURE_NAMES,
    as_undirected,
    feature_matrix,
    graph_features,
)


class TestFeatures:
    def test_path_graph(self):
        g = nx.path_graph(5)
        f = graph_features(g)
        assert f.num_nodes == 5
        assert f.diameter == 4
        assert f.average_degree == pytest.approx(2 * 4 / 5)
        assert f.clustering_coefficient == 0.0

    def test_triangle_clustering(self):
        f = graph_features(nx.complete_graph(3))
        assert f.clustering_coefficient == 1.0
        assert f.diameter == 1

    def test_ir_graph_accepted(self, conv_chain):
        f = graph_features(conv_chain)
        assert f.num_nodes == conv_chain.num_nodes

    def test_digraph_accepted(self):
        g = nx.DiGraph([(0, 1), (1, 2)])
        assert graph_features(g).num_nodes == 3

    def test_disconnected_uses_largest_component(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (10, 11)])
        assert graph_features(g).diameter == 2

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(0)
        f = graph_features(g)
        assert f.num_nodes == 1
        assert f.diameter == 0

    def test_empty_graph(self):
        assert graph_features(nx.Graph()).num_nodes == 0

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            graph_features([1, 2, 3])

    def test_self_loops_ignored(self):
        g = nx.Graph([(0, 0), (0, 1)])
        assert graph_features(g).average_degree == 1.0

    def test_as_array_order_matches_names(self):
        f = graph_features(nx.path_graph(4))
        arr = f.as_array()
        assert len(arr) == len(FEATURE_NAMES)
        assert arr[3] == 4  # num_nodes last


class TestFeatureMatrix:
    def test_shape(self):
        m = feature_matrix([nx.path_graph(3), nx.path_graph(5)])
        assert m.shape == (2, 4)
        assert m[0, 3] == 3 and m[1, 3] == 5

    def test_empty(self):
        assert feature_matrix([]).shape == (0, 4)

    def test_undirected_view_strips_direction(self, conv_chain):
        und = as_undirected(conv_chain)
        assert not und.is_directed()
        assert und.number_of_nodes() == conv_chain.num_nodes
