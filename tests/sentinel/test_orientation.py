"""Tests for Algorithm 3 (induce orientation)."""

import networkx as nx
import numpy as np
import pytest

from repro.sentinel.graphrnn import GraphRNNLite
from repro.sentinel.orientation import diameter_endpoints, induce_orientation


class TestDiameterEndpoints:
    def test_path_endpoints(self):
        u, v = diameter_endpoints(nx.path_graph(6))
        assert {u, v} == {0, 5}

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            diameter_endpoints(nx.Graph())

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(7)
        assert diameter_endpoints(g) == (7, 7)


class TestInduceOrientation:
    @pytest.mark.parametrize("maker", [
        lambda: nx.path_graph(8),
        lambda: nx.cycle_graph(7),
        lambda: nx.random_regular_graph(3, 12, seed=1),
        lambda: nx.barbell_graph(4, 2),
    ])
    def test_always_acyclic(self, maker):
        g = maker()
        dag = induce_orientation(g)
        assert nx.is_directed_acyclic_graph(dag)

    def test_edge_set_preserved(self):
        g = nx.cycle_graph(9)
        dag = induce_orientation(g)
        assert dag.number_of_edges() == g.number_of_edges()
        for a, b in g.edges():
            assert dag.has_edge(a, b) or dag.has_edge(b, a)

    def test_node_attributes_preserved(self):
        g = nx.path_graph(3)
        g.nodes[1]["op_type"] = "Conv"
        dag = induce_orientation(g)
        assert dag.nodes[1]["op_type"] == "Conv"

    def test_disconnected_graph(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (5, 6)])
        dag = induce_orientation(g)
        assert nx.is_directed_acyclic_graph(dag)
        assert dag.number_of_edges() == 3

    def test_generated_topologies_orient(self, subgraph_database):
        model = GraphRNNLite().fit(subgraph_database, seed=0)
        for g in model.sample_many(20, seed=2):
            dag = induce_orientation(g)
            assert nx.is_directed_acyclic_graph(dag)

    def test_deterministic(self):
        g = nx.random_regular_graph(3, 10, seed=3)
        a = induce_orientation(g)
        b = induce_orientation(g)
        assert set(a.edges()) == set(b.edges())
