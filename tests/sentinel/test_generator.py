"""Tests for the orchestrating SentinelGenerator."""

import numpy as np
import pytest

from repro.ir.validate import validate_graph
from repro.sentinel.generator import SentinelGenerator, build_subgraph_database
from repro.sentinel.random_baseline import random_opcode_graph, random_opcode_sentinels
from repro.sentinel.orientation import induce_orientation


class TestDatabase:
    def test_database_covers_corpus(self, small_corpus, subgraph_database):
        total_nodes = sum(g.num_nodes for g in small_corpus)
        assert sum(g.num_nodes for g in subgraph_database) == total_nodes

    def test_database_subgraphs_valid(self, subgraph_database):
        for g in subgraph_database[:10]:
            validate_graph(g)


class TestGenerator:
    def test_strategy_validation(self, subgraph_database):
        with pytest.raises(ValueError, match="strategy"):
            SentinelGenerator(subgraph_database, strategy="bogus")

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SentinelGenerator([])

    def test_generate_count_and_validity(self, sentinel_generator, subgraph_database):
        real = subgraph_database[5]
        sentinels = sentinel_generator.generate(real, k=5, seed=1)
        assert len(sentinels) == 5
        for s in sentinels:
            validate_graph(s)

    def test_k_zero(self, sentinel_generator, subgraph_database):
        assert sentinel_generator.generate(subgraph_database[0], k=0) == []

    def test_deterministic_by_seed(self, sentinel_generator, subgraph_database):
        real = subgraph_database[5]
        a = sentinel_generator.generate(real, k=3, seed=9)
        b = sentinel_generator.generate(real, k=3, seed=9)
        assert [g.opcode_histogram() for g in a] == [g.opcode_histogram() for g in b]

    def test_sentinels_not_copies_of_real(self, sentinel_generator, subgraph_database):
        import networkx as nx
        real = subgraph_database[5]
        sentinels = sentinel_generator.generate(real, k=5, seed=2)
        real_nx = real.to_networkx()
        identical = sum(
            1 for s in sentinels
            if nx.is_isomorphic(
                s.to_networkx(), real_nx,
                node_match=lambda a, b: a["op_type"] == b["op_type"])
        )
        assert identical <= 1  # perturbations guarantee structural change

    def test_perturb_strategy(self, subgraph_database):
        gen = SentinelGenerator(subgraph_database, strategy="perturb", pool_size=48, seed=0)
        real = subgraph_database[5]
        sentinels = gen.generate(real, k=3, seed=0)
        assert len(sentinels) == 3

    def test_generate_strategy(self, subgraph_database):
        gen = SentinelGenerator(subgraph_database, strategy="generate", pool_size=48, seed=0)
        real = subgraph_database[5]
        sentinels = gen.generate(real, k=3, seed=0)
        assert len(sentinels) == 3


class TestDefaultSource:
    def test_cached(self):
        from repro.core import ProteusConfig
        from repro.sentinel.generator import default_sentinel_source
        cfg = ProteusConfig(target_subgraph_size=8, seed=0)
        a = default_sentinel_source(cfg)
        b = default_sentinel_source(cfg)
        assert a is b


class TestRandomBaseline:
    def test_opcodes_assigned(self, sentinel_generator, rng):
        topo = induce_orientation(sentinel_generator.pool[0])
        g = random_opcode_graph(topo, rng)
        assert all("op_type" in g.nodes[v] for v in g.nodes())

    def test_binary_nodes_get_binary_ops(self, sentinel_generator, rng):
        from repro.sentinel.constraints import BINARY_OPS
        topo = induce_orientation(sentinel_generator.pool[1])
        g = random_opcode_graph(topo, rng)
        for v in g.nodes():
            if g.in_degree(v) >= 2:
                assert g.nodes[v]["op_type"] in BINARY_OPS

    def test_sentinel_count(self, sentinel_generator):
        topos = [induce_orientation(t) for t in sentinel_generator.pool[:8]]
        fakes = random_opcode_sentinels(topos, k=7, seed=0)
        assert len(fakes) == 7
