"""sentinel tests."""
