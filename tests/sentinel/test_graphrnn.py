"""Tests for the GraphRNN-lite topology model."""

import networkx as nx
import numpy as np
import pytest

from repro.sentinel.features import feature_matrix
from repro.sentinel.graphrnn import GraphRNNLite, bfs_adjacency_sequences


class TestSequences:
    def test_path_graph_rows(self, rng):
        rows = bfs_adjacency_sequences(nx.path_graph(5), window=4, rng=rng)
        assert len(rows) == 5
        # every non-root node connects to its predecessor (offset 0)
        for row in rows[1:]:
            assert row[0] == 1

    def test_window_truncates(self, rng):
        g = nx.star_graph(6)  # hub connects to everything
        rows = bfs_adjacency_sequences(g, window=2, rng=rng)
        assert all(len(r) == 2 for r in rows)

    def test_empty_graph(self, rng):
        assert bfs_adjacency_sequences(nx.Graph(), window=3, rng=rng) == []


class TestModel:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            GraphRNNLite().sample(np.random.default_rng(0))

    def test_fit_rejects_trivial_corpus(self):
        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(ValueError, match="usable"):
            GraphRNNLite().fit([g])

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            GraphRNNLite(window=0)

    def test_samples_connected(self, subgraph_database):
        model = GraphRNNLite().fit(subgraph_database, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            g = model.sample(rng)
            assert nx.is_connected(g)
            assert g.number_of_nodes() >= 2

    def test_sample_fixed_size(self, subgraph_database):
        model = GraphRNNLite().fit(subgraph_database, seed=0)
        g = model.sample(np.random.default_rng(0), n_nodes=9)
        assert g.number_of_nodes() == 9

    def test_sample_many_deterministic(self, subgraph_database):
        model = GraphRNNLite().fit(subgraph_database, seed=0)
        a = model.sample_many(5, seed=3)
        b = model.sample_many(5, seed=3)
        assert all(set(x.edges()) == set(y.edges()) for x, y in zip(a, b))

    def test_sizes_track_training_distribution(self, subgraph_database):
        model = GraphRNNLite().fit(subgraph_database, seed=0)
        train_sizes = [g.num_nodes for g in subgraph_database]
        samples = model.sample_many(60, seed=5)
        gen_sizes = [g.number_of_nodes() for g in samples]
        assert abs(np.mean(gen_sizes) - np.mean(train_sizes)) < 4

    def test_degree_statistics_close_to_training(self, subgraph_database):
        """The Fig. 5 property at unit-test scale: generated average degree
        within a reasonable band of the real subgraphs'."""
        model = GraphRNNLite().fit(subgraph_database, seed=0)
        samples = model.sample_many(80, seed=7)
        real = feature_matrix(subgraph_database)[:, 0]
        gen = feature_matrix(samples)[:, 0]
        assert abs(real.mean() - gen.mean()) < 0.35
