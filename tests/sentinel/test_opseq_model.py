"""Tests for the operator-sequence likelihood model."""

import math

import pytest

from repro.sentinel.opseq_model import START, OpSequenceModel


class TestOpSequenceModel:
    @pytest.fixture(scope="class")
    def model(self, subgraph_database):
        vocab = sorted({n.op_type for g in subgraph_database for n in g.nodes})
        return OpSequenceModel(vocab).fit(subgraph_database)

    def test_vocab_required(self):
        with pytest.raises(ValueError, match="vocabulary"):
            OpSequenceModel([])

    def test_probabilities_normalized(self, model):
        for ctx in ["Conv", "Relu", START]:
            total = sum(
                math.exp(model.edge_logprob(ctx, op)) for op in model.vocabulary
            )
            assert total == pytest.approx(1.0, rel=1e-6)

    def test_common_transition_likelier_than_rare(self, model):
        # Conv -> BatchNormalization is the dominant CNN idiom
        assert model.edge_logprob("Conv", "BatchNormalization") > model.edge_logprob(
            "Conv", "Softmax"
        )

    def test_unseen_context_backed_off(self, model):
        lp = model.edge_logprob("NeverSeenOp", "Conv")
        assert math.isfinite(lp)
        assert lp == pytest.approx(-math.log(len(model.vocabulary)), rel=0.01)

    def test_graph_logprob_prefers_real(self, model, subgraph_database, rng):
        """Real subgraphs should be likelier than opcode-shuffled ones."""
        from repro.sentinel.random_baseline import random_opcode_graph
        real = subgraph_database[2]
        real_lp = model.graph_logprob(real)
        shuffled = random_opcode_graph(real.to_networkx(), rng)
        edges = list(shuffled.edges())
        ops = {v: shuffled.nodes[v]["op_type"] for v in shuffled.nodes()}
        sources = [v for v in shuffled.nodes() if shuffled.in_degree(v) == 0]
        rand_lp = model.assignment_logprob(edges, ops, sources)
        assert real_lp > rand_lp

    def test_successor_distribution_sorted(self, model):
        dist = model.successor_distribution("Conv")
        probs = [p for _, p in dist]
        assert probs == sorted(probs, reverse=True)
        assert dist[0][0] in ("BatchNormalization", "Relu")

    def test_assignment_logprob_averages(self, model):
        lp1 = model.assignment_logprob([(0, 1)], {0: "Conv", 1: "Relu"}, [0])
        assert math.isfinite(lp1)
