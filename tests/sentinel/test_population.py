"""Tests for Algorithm 2 (operator population) and materialization."""

import networkx as nx
import numpy as np
import pytest

from repro.ir.validate import validate_graph
from repro.runtime import Executor, random_inputs
from repro.sentinel.operator_population import assign_operators
from repro.sentinel.opseq_model import OpSequenceModel


@pytest.fixture(scope="module")
def seq_model():
    from repro.models import build_model
    from repro.sentinel.generator import build_subgraph_database
    db = build_subgraph_database([build_model("resnet"), build_model("bert")], seed=0)
    vocab = sorted({n.op_type for g in db for n in g.nodes})
    return OpSequenceModel(vocab).fit(db)


def chain_dag(n):
    g = nx.DiGraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def diamond_dag():
    g = nx.DiGraph()
    g.add_edges_from([(0, 1), (0, 2), (1, 3), (2, 3)])
    return g


class TestAssignOperators:
    def test_chain_populates(self, seq_model, rng):
        results = assign_operators(chain_dag(6), seq_model, rng, max_solutions=8)
        assert results
        for r in results:
            validate_graph(r.graph)
            assert r.graph.num_nodes == 6

    def test_diamond_with_merge(self, seq_model, rng):
        results = assign_operators(diamond_dag(), seq_model, rng, max_solutions=8)
        assert results
        g = results[0].graph
        merge = [n for n in g.nodes if len([i for i in n.inputs if not g.is_initializer(i)]) == 2]
        assert merge  # the join node hosts a binary op

    def test_results_sorted_by_likelihood(self, seq_model, rng):
        results = assign_operators(chain_dag(5), seq_model, rng, max_solutions=16, pct=100.0)
        lps = [r.logprob for r in results]
        assert lps == sorted(lps, reverse=True)

    def test_percentile_filters(self, seq_model, rng):
        all_r = assign_operators(chain_dag(4), seq_model,
                                 np.random.default_rng(0), max_solutions=16, pct=100.0)
        top_r = assign_operators(chain_dag(4), seq_model,
                                 np.random.default_rng(0), max_solutions=16, pct=25.0)
        assert len(top_r) <= max(1, len(all_r) // 2)

    def test_empty_dag(self, seq_model, rng):
        assert assign_operators(nx.DiGraph(), seq_model, rng) == []

    def test_materialized_graph_executes(self, seq_model, rng):
        results = assign_operators(chain_dag(7), seq_model, rng, max_solutions=4)
        g = results[0].graph
        out = Executor(g).run(random_inputs(g))
        assert out

    def test_input_hints_respected(self, seq_model, rng):
        from repro.ir.dtypes import f32
        hints = [f32(1, 24, 10, 10)]
        results = assign_operators(chain_dag(4), seq_model, rng,
                                   input_type_hints=hints, max_solutions=4)
        assert results
        assert results[0].graph.inputs[0].type.shape == (1, 24, 10, 10)

    def test_single_node_dag(self, seq_model, rng):
        g = nx.DiGraph()
        g.add_node(0)
        results = assign_operators(g, seq_model, rng, max_solutions=4)
        assert results
        assert results[0].graph.num_nodes == 1

    def test_semantic_quality(self, seq_model):
        """Populated chains should prefer realistic sequences: across many
        samples, Conv should be followed by BN/Relu more often than by
        exotic ops."""
        follows = {"realistic": 0, "other": 0}
        for seed in range(8):
            rng = np.random.default_rng(seed)
            results = assign_operators(chain_dag(8), seq_model, rng, max_solutions=4)
            for r in results[:1]:
                g = r.graph
                for node in g.nodes:
                    if node.op_type != "Conv":
                        continue
                    for c in g.consumers_of(node.outputs[0]):
                        if c.op_type in ("BatchNormalization", "Relu", "Add", "Clip"):
                            follows["realistic"] += 1
                        else:
                            follows["other"] += 1
        assert follows["realistic"] >= follows["other"]
