"""Tests for the CLI: the full two-party workflow through files."""

import pytest

from repro.cli import main
from repro.ir.serialization import load_graph
from repro.runtime import graphs_equivalent


@pytest.fixture
def model_file(tmp_path):
    path = str(tmp_path / "model.json")
    assert main(["build", "resnet", "-o", path]) == 0
    return path


class TestBuild:
    def test_build_writes_model(self, model_file):
        g = load_graph(model_file)
        assert g.num_nodes > 20

    def test_unknown_model(self, tmp_path):
        rc = main(["build", "nope", "-o", str(tmp_path / "x.json")])
        assert rc == 2


class TestWorkflow:
    def test_full_two_party_flow(self, model_file, tmp_path, capsys):
        bucket = str(tmp_path / "ship.json")
        plan = str(tmp_path / "secret.json")
        # k=0 keeps the CLI test fast; sentinel-full paths are covered by
        # core/sentinel tests
        assert main([
            "obfuscate", model_file, "--bucket", bucket, "--plan", plan,
            "-k", "0", "--seed", "1",
        ]) == 0
        returned = str(tmp_path / "returned.json")
        assert main(["optimize", bucket, "-o", returned, "--optimizer", "ortlike"]) == 0
        recovered = str(tmp_path / "model_opt.json")
        assert main(["deobfuscate", returned, plan, "-o", recovered]) == 0
        original = load_graph(model_file)
        optimized = load_graph(recovered)
        assert graphs_equivalent(original, optimized, n_trials=1)
        out = capsys.readouterr().out
        assert "search space" in out

    def test_hidet_optimizer_choice(self, model_file, tmp_path):
        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json"),
                     "--optimizer", "hidetlike"]) == 0

    def test_parallel_identical_to_serial(self, model_file, tmp_path):
        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["optimize", bucket, "-o", str(serial), "--jobs", "1"]) == 0
        assert main(["optimize", bucket, "-o", str(parallel), "--jobs", "4"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()


class TestOptimizeOutput:
    def test_stdout_is_machine_parseable_json(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        capsys.readouterr()
        returned = str(tmp_path / "r.json")
        assert main(["optimize", bucket, "-o", returned, "-v"]) == 0
        captured = capsys.readouterr()
        result = json.loads(captured.out)  # stdout: exactly one JSON document
        assert result["output"] == returned
        assert result["entries"] > 0
        assert result["cache"] is None
        # progress + human summary live on stderr
        assert "entries optimized" in captured.err
        assert "[1/" in captured.err

    def test_cache_dir_round_trip(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        cache_dir = str(tmp_path / "cache")
        cold = tmp_path / "cold.json"
        hot = tmp_path / "hot.json"
        capsys.readouterr()
        assert main(["optimize", bucket, "-o", str(cold), "--cache-dir", cache_dir]) == 0
        cold_stats = json.loads(capsys.readouterr().out)["cache"]
        assert cold_stats["misses"] > 0 and cold_stats["hit_rate"] == 0.0
        assert main(["optimize", bucket, "-o", str(hot), "--cache-dir", cache_dir]) == 0
        hot_stats = json.loads(capsys.readouterr().out)["cache"]
        assert hot_stats["hit_rate"] == 1.0
        # cached result is byte-identical to the cold one
        assert cold.read_bytes() == hot.read_bytes()

    def test_default_jobs_env_override(self, monkeypatch):
        from repro.cli import _default_jobs, _MAX_DEFAULT_JOBS

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert 1 <= _default_jobs() <= _MAX_DEFAULT_JOBS
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert _default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert 1 <= _default_jobs() <= _MAX_DEFAULT_JOBS


class TestServe:
    def test_serve_once_processes_spool(self, model_file, tmp_path, capsys):
        import json

        spool = tmp_path / "spool"
        spool.mkdir()
        bucket = str(spool / "incoming.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        capsys.readouterr()
        cache_dir = str(tmp_path / "cache")
        assert main(["serve", str(spool), "--once", "--cache-dir", cache_dir]) == 0
        out_path = spool / "incoming.optimized.json"
        assert out_path.exists()
        lines = capsys.readouterr().out.strip().splitlines()
        record = json.loads(lines[0])
        assert record["output"] == str(out_path)
        assert record["entries"] > 0
        # the optimized bucket reassembles into an equivalent model
        from repro.core.bucket_io import load_plan
        from repro.api.clients import ModelOwner
        from repro.api.manifest import load_manifest

        recovered = ModelOwner().reassemble(
            load_manifest(str(out_path)).bucket, load_plan(plan)
        )
        assert graphs_equivalent(load_graph(model_file), recovered, n_trials=1)

    def test_serve_skips_already_optimized(self, model_file, tmp_path, capsys):
        spool = tmp_path / "spool"
        spool.mkdir()
        bucket = str(spool / "job.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        assert main(["serve", str(spool), "--once"]) == 0
        capsys.readouterr()
        # second pass: nothing pending, no new job lines on stdout
        assert main(["serve", str(spool), "--once"]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_serve_missing_dir(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_bad_bucket_skipped(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "garbage.json").write_text('{"nonsense": true}')
        assert main(["serve", str(spool), "--once"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == ""
        assert "cannot load bucket" in captured.err

    def test_serve_retries_rewritten_file(self, model_file, tmp_path, capsys):
        """A file that failed to load (e.g. caught mid-write) is retried
        once its content changes, not blacklisted forever."""
        import json
        import shutil

        spool = tmp_path / "spool"
        spool.mkdir()
        good = tmp_path / "good.json"
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", str(good), "--plan", plan, "-k", "0"])
        target = spool / "incoming.json"
        target.write_text("{tru")  # half-written file
        assert main(["serve", str(spool), "--once"]) == 0
        assert not (spool / "incoming.optimized.json").exists()
        capsys.readouterr()
        shutil.copy(str(good), str(target))  # writer finishes
        assert main(["serve", str(spool), "--once"]) == 0
        assert (spool / "incoming.optimized.json").exists()
        assert json.loads(capsys.readouterr().out.splitlines()[0])["entries"] > 0


class TestBadBucketFiles:
    def test_tampered_bucket_rejected(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        d = json.load(open(bucket))
        d["bucket"]["entries"][0]["graph"]["nodes"][0]["op_type"] = "Evil"
        json.dump(d, open(bucket, "w"))
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json")]) == 3
        assert "integrity" in capsys.readouterr().err

    def test_unsupported_manifest_version(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        d = json.load(open(bucket))
        d["manifest_version"] = 99
        json.dump(d, open(bucket, "w"))
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json")]) == 3
        assert "cannot load bucket" in capsys.readouterr().err

    def test_garbage_bucket_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"nonsense": true}')
        assert main(["optimize", str(bad), "-o", str(tmp_path / "r.json")]) == 3
        assert "cannot load bucket" in capsys.readouterr().err


class TestUtilities:
    def test_profile(self, model_file, capsys):
        assert main(["profile", model_file]) == 0
        assert "us over" in capsys.readouterr().out

    def test_render(self, model_file, tmp_path):
        out = str(tmp_path / "g.dot")
        assert main(["render", model_file, "-o", out]) == 0
        text = open(out).read()
        assert text.startswith("digraph")
        assert "Conv" in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
