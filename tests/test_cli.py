"""Tests for the CLI: the full two-party workflow through files."""

import pytest

from repro.cli import main
from repro.ir.serialization import load_graph
from repro.runtime import graphs_equivalent


@pytest.fixture
def model_file(tmp_path):
    path = str(tmp_path / "model.json")
    assert main(["build", "resnet", "-o", path]) == 0
    return path


class TestBuild:
    def test_build_writes_model(self, model_file):
        g = load_graph(model_file)
        assert g.num_nodes > 20

    def test_unknown_model(self, tmp_path):
        rc = main(["build", "nope", "-o", str(tmp_path / "x.json")])
        assert rc == 2


class TestWorkflow:
    def test_full_two_party_flow(self, model_file, tmp_path, capsys):
        bucket = str(tmp_path / "ship.json")
        plan = str(tmp_path / "secret.json")
        # k=0 keeps the CLI test fast; sentinel-full paths are covered by
        # core/sentinel tests
        assert main([
            "obfuscate", model_file, "--bucket", bucket, "--plan", plan,
            "-k", "0", "--seed", "1",
        ]) == 0
        returned = str(tmp_path / "returned.json")
        assert main(["optimize", bucket, "-o", returned, "--optimizer", "ortlike"]) == 0
        recovered = str(tmp_path / "model_opt.json")
        assert main(["deobfuscate", returned, plan, "-o", recovered]) == 0
        original = load_graph(model_file)
        optimized = load_graph(recovered)
        assert graphs_equivalent(original, optimized, n_trials=1)
        out = capsys.readouterr().out
        assert "search space" in out

    def test_hidet_optimizer_choice(self, model_file, tmp_path):
        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json"),
                     "--optimizer", "hidetlike"]) == 0

    def test_parallel_identical_to_serial(self, model_file, tmp_path):
        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["optimize", bucket, "-o", str(serial), "--jobs", "1"]) == 0
        assert main(["optimize", bucket, "-o", str(parallel), "--jobs", "4"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()


class TestOptimizeOutput:
    def test_stdout_is_machine_parseable_json(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        capsys.readouterr()
        returned = str(tmp_path / "r.json")
        assert main(["optimize", bucket, "-o", returned, "-v"]) == 0
        captured = capsys.readouterr()
        result = json.loads(captured.out)  # stdout: exactly one JSON document
        assert result["output"] == returned
        assert result["entries"] > 0
        assert result["cache"] is None
        # progress + human summary live on stderr
        assert "entries optimized" in captured.err
        assert "[1/" in captured.err

    def test_cache_dir_round_trip(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        cache_dir = str(tmp_path / "cache")
        cold = tmp_path / "cold.json"
        hot = tmp_path / "hot.json"
        capsys.readouterr()
        assert main(["optimize", bucket, "-o", str(cold), "--cache-dir", cache_dir]) == 0
        cold_stats = json.loads(capsys.readouterr().out)["cache"]
        assert cold_stats["misses"] > 0 and cold_stats["hit_rate"] == 0.0
        assert main(["optimize", bucket, "-o", str(hot), "--cache-dir", cache_dir]) == 0
        hot_stats = json.loads(capsys.readouterr().out)["cache"]
        assert hot_stats["hit_rate"] == 1.0
        # cached result is byte-identical to the cold one
        assert cold.read_bytes() == hot.read_bytes()

    def test_default_jobs_env_override(self, monkeypatch):
        from repro.cli import _default_jobs, _MAX_DEFAULT_JOBS

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert 1 <= _default_jobs() <= _MAX_DEFAULT_JOBS
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert _default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert 1 <= _default_jobs() <= _MAX_DEFAULT_JOBS


class TestServe:
    def test_serve_once_processes_spool(self, model_file, tmp_path, capsys):
        import json

        spool = tmp_path / "spool"
        spool.mkdir()
        bucket = str(spool / "incoming.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        capsys.readouterr()
        cache_dir = str(tmp_path / "cache")
        assert main(["serve", str(spool), "--once", "--cache-dir", cache_dir]) == 0
        out_path = spool / "incoming.optimized.json"
        assert out_path.exists()
        lines = capsys.readouterr().out.strip().splitlines()
        record = json.loads(lines[0])
        assert record["output"] == str(out_path)
        assert record["entries"] > 0
        # the optimized bucket reassembles into an equivalent model
        from repro.core.bucket_io import load_plan
        from repro.api.clients import ModelOwner
        from repro.api.manifest import load_manifest

        recovered = ModelOwner().reassemble(
            load_manifest(str(out_path)).bucket, load_plan(plan)
        )
        assert graphs_equivalent(load_graph(model_file), recovered, n_trials=1)

    def test_serve_skips_already_optimized(self, model_file, tmp_path, capsys):
        spool = tmp_path / "spool"
        spool.mkdir()
        bucket = str(spool / "job.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        assert main(["serve", str(spool), "--once"]) == 0
        capsys.readouterr()
        # second pass: nothing pending, no new job lines on stdout
        assert main(["serve", str(spool), "--once"]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_serve_missing_dir(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_bad_bucket_skipped(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "garbage.json").write_text('{"nonsense": true}')
        assert main(["serve", str(spool), "--once"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == ""
        assert "cannot load bucket" in captured.err

    def test_serve_retries_rewritten_file(self, model_file, tmp_path, capsys):
        """A file that failed to load (e.g. caught mid-write) is retried
        once its content changes, not blacklisted forever."""
        import json
        import shutil

        spool = tmp_path / "spool"
        spool.mkdir()
        good = tmp_path / "good.json"
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", str(good), "--plan", plan, "-k", "0"])
        target = spool / "incoming.json"
        target.write_text("{tru")  # half-written file
        assert main(["serve", str(spool), "--once"]) == 0
        assert not (spool / "incoming.optimized.json").exists()
        capsys.readouterr()
        shutil.copy(str(good), str(target))  # writer finishes
        assert main(["serve", str(spool), "--once"]) == 0
        assert (spool / "incoming.optimized.json").exists()
        assert json.loads(capsys.readouterr().out.splitlines()[0])["entries"] > 0


class TestBadBucketFiles:
    def test_tampered_bucket_rejected(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        d = json.load(open(bucket))
        d["bucket"]["entries"][0]["graph"]["nodes"][0]["op_type"] = "Evil"
        json.dump(d, open(bucket, "w"))
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json")]) == 3
        assert "integrity" in capsys.readouterr().err

    def test_unsupported_manifest_version(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        d = json.load(open(bucket))
        d["manifest_version"] = 99
        json.dump(d, open(bucket, "w"))
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json")]) == 3
        assert "cannot load bucket" in capsys.readouterr().err

    def test_garbage_bucket_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"nonsense": true}')
        assert main(["optimize", str(bad), "-o", str(tmp_path / "r.json")]) == 3
        assert "cannot load bucket" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        import re

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert re.match(r"repro \d+\.\d+", out)


class TestEndpointFlag:
    @pytest.fixture
    def shipped(self, model_file, tmp_path):
        bucket = str(tmp_path / "ship.json")
        plan = str(tmp_path / "secret.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        return bucket, plan

    def test_local_endpoint_output(self, model_file, shipped, tmp_path, capsys):
        import json

        bucket, plan = shipped
        capsys.readouterr()
        out = str(tmp_path / "r.json")
        assert main(["optimize", bucket, "-o", out, "--endpoint", "local:"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["endpoint"] == "local:"
        assert record["entries"] > 0
        recovered = str(tmp_path / "rec.json")
        assert main(["deobfuscate", out, plan, "-o", recovered]) == 0
        assert graphs_equivalent(
            load_graph(model_file), load_graph(recovered), n_trials=1
        )

    def test_invalid_endpoint_uri(self, shipped, tmp_path, capsys):
        bucket, _ = shipped
        out = str(tmp_path / "r.json")
        assert main(["optimize", bucket, "-o", out, "--endpoint", "bogus"]) == 2
        assert "endpoint URIs" in capsys.readouterr().err

    def test_unreachable_http_endpoint(self, shipped, tmp_path, capsys):
        bucket, _ = shipped
        out = str(tmp_path / "r.json")
        rc = main(["optimize", bucket, "-o", out,
                   "--endpoint", "http://127.0.0.1:1", "--timeout", "2"])
        assert rc == 4
        assert "cannot reach" in capsys.readouterr().err

    def test_spool_endpoint_round_trip(self, shipped, tmp_path, capsys):
        """The owner's `--endpoint spool:DIR` against a spool server."""
        from tests.helpers import spool_endpoint_harness

        bucket, _ = shipped
        spool = tmp_path / "spool"
        spool.mkdir()
        out = str(tmp_path / "r.json")
        with spool_endpoint_harness(spool):
            rc = main(["optimize", bucket, "-o", out,
                       "--endpoint", f"spool:{spool}", "--timeout", "60"])
        assert rc == 0

    def test_http_endpoint_matches_local(self, shipped, tmp_path, capsys):
        """`--endpoint http://` output is byte-identical to `local:`."""
        from repro.serving import OptimizationHTTPServer

        bucket, _ = shipped
        local_out = tmp_path / "local.json"
        http_out = tmp_path / "http.json"
        assert main(["optimize", bucket, "-o", str(local_out),
                     "--endpoint", "local:"]) == 0
        with OptimizationHTTPServer("ortlike", workers=2, port=0) as app:
            host, port = app.start()
            assert main(["optimize", bucket, "-o", str(http_out),
                         "--endpoint", f"http://{host}:{port}"]) == 0
        assert local_out.read_bytes() == http_out.read_bytes()

    def test_http_endpoint_honors_optimizer_flag(self, shipped, tmp_path, capsys):
        import json

        from repro.serving import OptimizationHTTPServer

        bucket, _ = shipped
        capsys.readouterr()
        out = str(tmp_path / "r.json")
        with OptimizationHTTPServer("ortlike", workers=2, port=0) as app:
            host, port = app.start()
            assert main(["optimize", bucket, "-o", out,
                         "--endpoint", f"http://{host}:{port}",
                         "--optimizer", "hidetlike"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["optimizer"] == "hidetlike"


class TestServeHttpProcess:
    def test_serve_http_subprocess_round_trip(self, model_file, tmp_path):
        """Full two-process flow: `repro serve --http 0` + client CLI."""
        import json
        import os
        import subprocess
        import sys as _sys

        bucket = str(tmp_path / "ship.json")
        plan = str(tmp_path / "secret.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])

        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--http", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            banner = json.loads(proc.stdout.readline())
            url = banner["endpoint"]
            out = str(tmp_path / "returned.json")
            assert main(["optimize", bucket, "-o", out,
                         "--endpoint", url, "--timeout", "120"]) == 0
            recovered = str(tmp_path / "model_opt.json")
            assert main(["deobfuscate", out, plan, "-o", recovered]) == 0
            assert graphs_equivalent(
                load_graph(model_file), load_graph(recovered), n_trials=1
            )
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_serve_requires_exactly_one_mode(self, tmp_path, capsys):
        assert main(["serve"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["serve", str(tmp_path), "--http", "0"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestUtilities:
    def test_profile(self, model_file, capsys):
        assert main(["profile", model_file]) == 0
        assert "us over" in capsys.readouterr().out

    def test_render(self, model_file, tmp_path):
        out = str(tmp_path / "g.dot")
        assert main(["render", model_file, "-o", out]) == 0
        text = open(out).read()
        assert text.startswith("digraph")
        assert "Conv" in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
