"""Tests for the CLI: the full two-party workflow through files."""

import pytest

from repro.cli import main
from repro.ir.serialization import load_graph
from repro.runtime import graphs_equivalent


@pytest.fixture
def model_file(tmp_path):
    path = str(tmp_path / "model.json")
    assert main(["build", "resnet", "-o", path]) == 0
    return path


class TestBuild:
    def test_build_writes_model(self, model_file):
        g = load_graph(model_file)
        assert g.num_nodes > 20

    def test_unknown_model(self, tmp_path):
        rc = main(["build", "nope", "-o", str(tmp_path / "x.json")])
        assert rc == 2


class TestWorkflow:
    def test_full_two_party_flow(self, model_file, tmp_path, capsys):
        bucket = str(tmp_path / "ship.json")
        plan = str(tmp_path / "secret.json")
        # k=0 keeps the CLI test fast; sentinel-full paths are covered by
        # core/sentinel tests
        assert main([
            "obfuscate", model_file, "--bucket", bucket, "--plan", plan,
            "-k", "0", "--seed", "1",
        ]) == 0
        returned = str(tmp_path / "returned.json")
        assert main(["optimize", bucket, "-o", returned, "--optimizer", "ortlike"]) == 0
        recovered = str(tmp_path / "model_opt.json")
        assert main(["deobfuscate", returned, plan, "-o", recovered]) == 0
        original = load_graph(model_file)
        optimized = load_graph(recovered)
        assert graphs_equivalent(original, optimized, n_trials=1)
        out = capsys.readouterr().out
        assert "search space" in out

    def test_hidet_optimizer_choice(self, model_file, tmp_path):
        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json"),
                     "--optimizer", "hidetlike"]) == 0

    def test_parallel_identical_to_serial(self, model_file, tmp_path):
        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["optimize", bucket, "-o", str(serial), "--jobs", "1"]) == 0
        assert main(["optimize", bucket, "-o", str(parallel), "--jobs", "4"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()


class TestBadBucketFiles:
    def test_tampered_bucket_rejected(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        d = json.load(open(bucket))
        d["bucket"]["entries"][0]["graph"]["nodes"][0]["op_type"] = "Evil"
        json.dump(d, open(bucket, "w"))
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json")]) == 3
        assert "integrity" in capsys.readouterr().err

    def test_unsupported_manifest_version(self, model_file, tmp_path, capsys):
        import json

        bucket = str(tmp_path / "b.json")
        plan = str(tmp_path / "p.json")
        main(["obfuscate", model_file, "--bucket", bucket, "--plan", plan, "-k", "0"])
        d = json.load(open(bucket))
        d["manifest_version"] = 99
        json.dump(d, open(bucket, "w"))
        assert main(["optimize", bucket, "-o", str(tmp_path / "r.json")]) == 3
        assert "cannot load bucket" in capsys.readouterr().err

    def test_garbage_bucket_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"nonsense": true}')
        assert main(["optimize", str(bad), "-o", str(tmp_path / "r.json")]) == 3
        assert "cannot load bucket" in capsys.readouterr().err


class TestUtilities:
    def test_profile(self, model_file, capsys):
        assert main(["profile", model_file]) == 0
        assert "us over" in capsys.readouterr().out

    def test_render(self, model_file, tmp_path):
        out = str(tmp_path / "g.dot")
        assert main(["render", model_file, "-o", out]) == 0
        text = open(out).read()
        assert text.startswith("digraph")
        assert "Conv" in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
