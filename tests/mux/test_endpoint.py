"""Integration tests for the multiplexed transport.

The load-bearing guarantees, in descending order of importance:

1. receipts through ``mux://`` are byte-identical to ``local:`` —
   single job, 8-way concurrent, and across a mid-job disconnect;
2. server-side batching engages under concurrent load and never
   changes result bytes;
3. the serialization memos (client submit/verify, server receipt/parse)
   are *proof-carrying*: a tampered payload replaying a genuine digest
   is still rejected;
4. one malformed frame degrades to a typed error, not a dead
   connection.
"""

import copy
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro.api.clients import ModelOwner
from repro.api.endpoint import LocalEndpoint, open_endpoint
from repro.api.manifest import BucketManifest
from repro.api.wire import (
    ERR_BAD_DIGEST,
    ERR_MALFORMED,
    ERR_UNKNOWN_JOB,
    PROTOCOL_VERSION,
    EndpointError,
    receipt_to_wire,
)
from repro.core import ProteusConfig
from repro.models import build_model
from repro.mux.client import MuxEndpoint
from repro.mux.frames import FrameDecoder, FrameError, encode_frame
from repro.mux.server import MuxServer
from repro.serving import OptimizationCache
from repro.serving.http import OptimizationHTTPServer


@pytest.fixture(scope="module")
def manifests():
    """Two distinct sealed manifests (different obfuscation seeds), so
    concurrent tests interleave genuinely different payloads."""
    out = []
    for seed in (0, 7):
        owner = ModelOwner(ProteusConfig(k=0, target_subgraph_size=8, seed=seed))
        bucket = owner.obfuscate(build_model("squeezenet")).bucket
        out.append(BucketManifest.from_bucket(bucket))
    return out


@pytest.fixture(scope="module")
def local_reference(manifests):
    """Canonical receipt bytes per manifest, from the local transport."""
    refs = []
    with LocalEndpoint("ortlike", workers=2) as endpoint:
        for manifest in manifests:
            receipt = endpoint.await_receipt(
                endpoint.submit(manifest), timeout=120
            )
            refs.append(_receipt_bytes(receipt))
    return refs


def _receipt_bytes(receipt) -> bytes:
    return json.dumps(
        BucketManifest.from_bucket(receipt.bucket).to_dict(), sort_keys=True
    ).encode("utf-8")


@contextmanager
def _mux_server(**kwargs):
    app_kwargs = kwargs.pop("app_kwargs", {})
    app = OptimizationHTTPServer(
        "ortlike", cache=OptimizationCache(), workers=2, port=0, **app_kwargs
    )
    server = MuxServer(app, **kwargs)
    host, port = server.start()
    try:
        yield server, f"mux://{host}:{port}"
    finally:
        server.close()


class TestByteIdentity:
    def test_single_job_matches_local(self, manifests, local_reference):
        with _mux_server() as (_, url):
            with open_endpoint(url) as endpoint:
                assert isinstance(endpoint, MuxEndpoint)
                receipt = endpoint.await_receipt(
                    endpoint.submit(manifests[0]), timeout=120
                )
        assert _receipt_bytes(receipt) == local_reference[0]

    def test_8way_concurrent_matches_local(self, manifests, local_reference):
        """8 threads interleave two distinct manifests on ONE connection;
        every receipt must match its manifest's local reference."""
        with _mux_server() as (_, url):
            with open_endpoint(url) as endpoint:

                def one(i):
                    which = i % len(manifests)
                    receipt = endpoint.await_receipt(
                        endpoint.submit(manifests[which]), timeout=120
                    )
                    return which, _receipt_bytes(receipt)

                with ThreadPoolExecutor(max_workers=8) as pool:
                    results = [
                        f.result()
                        for f in [pool.submit(one, i) for i in range(16)]
                    ]
        for which, got in results:
            assert got == local_reference[which]

    def test_reconnect_mid_job_is_lossless(self, manifests, local_reference):
        """Kill the socket between submit and await: the job survives
        server-side (receipts are claimed-once, forgotten only on ack),
        the client reconnects and the receipt is still byte-identical."""
        with _mux_server(app_kwargs={"entry_cost_s": 0.3}) as (_, url):
            endpoint = open_endpoint(url)
            try:
                job_id = endpoint.submit(manifests[0])
                # simulate a transport failure while the job is running
                endpoint._sock.close()
                receipt = endpoint.await_receipt(job_id, timeout=120)
                assert endpoint._reconnects_total >= 1
            finally:
                endpoint.close()
        assert _receipt_bytes(receipt) == local_reference[0]


class TestBatching:
    def test_synchronized_wave_coalesces(self, manifests, local_reference):
        """8 submits released through a barrier land inside one
        collection window and flush as batches — and batching must not
        change result bytes."""
        with _mux_server(batch_max=8, batch_window_ms=200.0) as (server, url):
            with open_endpoint(url) as endpoint:
                # warm the path once so wave submits are memo-fast
                endpoint.await_receipt(endpoint.submit(manifests[0]), timeout=120)
                barrier = threading.Barrier(8)

                def wave():
                    barrier.wait()
                    receipt = endpoint.await_receipt(
                        endpoint.submit(manifests[0]), timeout=120
                    )
                    return _receipt_bytes(receipt)

                with ThreadPoolExecutor(max_workers=8) as pool:
                    results = [
                        f.result() for f in [pool.submit(wave) for _ in range(8)]
                    ]
                stats = server.stats()["batching"]
        assert all(got == local_reference[0] for got in results)
        assert stats["batched_total"] >= 2
        assert stats["batch_size_max"] >= 2

    def test_welcome_announces_operating_point(self):
        with _mux_server(batch_max=5, batch_window_ms=3.0) as (_, url):
            with open_endpoint(url) as endpoint:
                welcome = endpoint.negotiate()
        assert welcome["batching"] == {"batch_max": 5, "batch_window_ms": 3.0}

    def test_batch_isolates_a_bad_member(self, manifests):
        """One tampered submit in a coalesced batch fails alone; its
        batch-mates still get their jobs (per-item error isolation)."""
        app = OptimizationHTTPServer(
            "ortlike", cache=OptimizationCache(), workers=2, port=0
        )
        good = {
            "protocol_version": PROTOCOL_VERSION,
            "manifest": manifests[0].to_dict(),
        }
        tampered = copy.deepcopy(good)
        eid = next(iter(tampered["manifest"]["entry_digests"]))
        tampered["manifest"]["entry_digests"][eid] = "sha256:" + "0" * 64
        results = app.handle_submit_batch([good, tampered, copy.deepcopy(good)])
        assert isinstance(results[0], dict) and "job_id" in results[0]
        assert isinstance(results[1], EndpointError)
        assert results[1].code == ERR_BAD_DIGEST
        assert isinstance(results[2], dict) and "job_id" in results[2]

    def test_parse_memo_requires_deep_equality(self, manifests):
        """The per-batch parse memo is keyed by declared digest but
        *proved* by payload equality: a tampered body replaying a
        batch-mate's genuine digest must not inherit its parse."""
        app = OptimizationHTTPServer(
            "ortlike", cache=OptimizationCache(), workers=2, port=0
        )
        good = {
            "protocol_version": PROTOCOL_VERSION,
            "manifest": manifests[0].to_dict(),
        }
        forged = copy.deepcopy(good)
        eid = next(iter(forged["manifest"]["entry_digests"]))
        forged["manifest"]["entry_digests"][eid] = "sha256:" + "1" * 64
        # same declared bucket_digest as `good`, different content
        assert forged["manifest"]["bucket_digest"] == good["manifest"]["bucket_digest"]
        results = app.handle_submit_batch([good, forged])
        assert isinstance(results[0], dict)
        assert isinstance(results[1], EndpointError)
        assert results[1].code == ERR_BAD_DIGEST


class TestClaimedOnce:
    def test_job_forgotten_after_acked_receipt(self, manifests):
        with _mux_server() as (_, url):
            with open_endpoint(url) as endpoint:
                job_id = endpoint.submit(manifests[0])
                endpoint.await_receipt(job_id, timeout=120)
                # the ack rides the reader thread; poll briefly for the
                # server to process it and forget the job
                deadline = time.monotonic() + 5.0
                while True:
                    try:
                        endpoint.status(job_id)
                    except EndpointError as exc:
                        assert exc.code == ERR_UNKNOWN_JOB
                        break
                    if time.monotonic() >= deadline:
                        pytest.fail("job was never forgotten after ack")
                    time.sleep(0.05)


class TestVerifyMemoTamperResistance:
    def test_replayed_digest_does_not_skip_verification(self, manifests):
        """Warm the client's verified-payload memo with a genuine
        receipt, then have the server stream a tampered payload carrying
        the *same* declared bucket_digest.  The memo must not vouch for
        it (deep equality is the proof), so verification runs and
        rejects the forgery."""
        with _mux_server() as (server, url):
            with open_endpoint(url) as endpoint:
                endpoint.await_receipt(endpoint.submit(manifests[0]), timeout=120)

                def evil_encoded_receipt(receipt):
                    payload = receipt_to_wire(receipt)
                    eid = next(iter(payload["manifest"]["entry_digests"]))
                    payload["manifest"]["entry_digests"][eid] = (
                        "sha256:" + "0" * 64
                    )
                    return json.dumps(
                        payload, separators=(",", ":")
                    ).encode("utf-8")

                server._encoded_receipt = evil_encoded_receipt
                job_id = endpoint.submit(manifests[0])
                with pytest.raises(EndpointError) as exc_info:
                    endpoint.await_receipt(job_id, timeout=120)
                assert exc_info.value.code == ERR_BAD_DIGEST


class TestConnectionRobustness:
    def _recv_frames(self, sock, decoder, want=1, timeout=10.0):
        sock.settimeout(timeout)
        events = []
        while len(events) < want:
            data = sock.recv(65536)
            if not data:
                raise AssertionError("server closed the connection")
            events.extend(decoder.feed(data))
        return events

    def test_malformed_frame_gets_typed_error_not_disconnect(self):
        """Garbage JSON in a well-framed payload must come back as a
        `malformed_request` wire error on the SAME connection, which
        then still speaks the protocol normally."""
        with _mux_server() as (_, url):
            host, port = url[len("mux://") :].rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                decoder = FrameDecoder()
                sock.sendall(b"\x00\x00\x00\x07not{js}")
                (error,) = self._recv_frames(sock, decoder)
                assert error["type"] == "error"
                assert error["error"]["code"] == ERR_MALFORMED
                # the stream survived: a proper hello still gets welcome
                sock.sendall(
                    encode_frame(
                        {
                            "type": "hello",
                            "channel": 0,
                            "protocol_version": PROTOCOL_VERSION,
                        }
                    )
                )
                (welcome,) = self._recv_frames(sock, decoder)
                assert welcome["type"] == "welcome"
                assert welcome["protocol_version"] == PROTOCOL_VERSION

    def test_unknown_frame_type_is_typed_error(self):
        with _mux_server() as (_, url):
            host, port = url[len("mux://") :].rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                decoder = FrameDecoder()
                sock.sendall(encode_frame({"type": "teleport", "channel": 1}))
                (error,) = self._recv_frames(sock, decoder)
                assert error["type"] == "error"
                assert error["error"]["code"] == ERR_MALFORMED
                assert error["channel"] == 1

    def test_oversized_submit_is_typed_refusal(self, manifests, monkeypatch):
        """A manifest too big for the wire must come back as a typed
        `malformed_request`, not a raw ValueError out of the codec —
        the CLI maps EndpointError to a friendly exit 4."""
        with _mux_server() as (_, url):
            with open_endpoint(url) as endpoint:
                endpoint.negotiate()  # connect while frames still fit
                monkeypatch.setattr("repro.mux.frames.MAX_FRAME_BYTES", 1024)
                with pytest.raises(EndpointError) as excinfo:
                    endpoint.submit(manifests[0])
                assert excinfo.value.code == ERR_MALFORMED
                assert "exceeds" in str(excinfo.value)


class TestOpenEndpointGrammar:
    def test_mux_uri_yields_mux_endpoint_lazily(self):
        # no server behind this port: construction must not connect
        endpoint = open_endpoint("mux://127.0.0.1:1")
        try:
            assert isinstance(endpoint, MuxEndpoint)
        finally:
            endpoint.close()

    def test_mixed_scheme_fleet_uri_parses(self):
        from repro.loadgen.fleet import FleetEndpoint

        endpoint = open_endpoint("http://127.0.0.1:1,mux://127.0.0.1:2")
        try:
            assert isinstance(endpoint, FleetEndpoint)
        finally:
            endpoint.close()
