"""Tests for submit coalescing: the operating-point table and the
Coalescer's size/age flush discipline."""

import threading
import time

import pytest

from repro.mux.batch import (
    OPERATING_POINTS,
    Coalescer,
    OperatingPoint,
    choose_operating_point,
)


class TestOperatingPoints:
    def test_table_is_sorted_and_ends_open(self):
        bounds = [b for b, _ in OPERATING_POINTS[:-1]]
        assert bounds == sorted(bounds)
        assert OPERATING_POINTS[-1][0] is None

    def test_single_client_never_waits(self):
        point = choose_operating_point(1)
        assert point.batch_max == 1
        assert point.batch_window_ms == 0.0

    @pytest.mark.parametrize("clients", [2, 3, 4])
    def test_small_fanin_band(self, clients):
        assert choose_operating_point(clients) == OperatingPoint(4, 2.0)

    def test_default_expectation_is_the_8_client_band(self):
        assert choose_operating_point() == choose_operating_point(8)
        assert choose_operating_point(8).batch_max == 8

    def test_tail_band_covers_any_fanin(self):
        assert choose_operating_point(10_000) == OPERATING_POINTS[-1][1]


class _Collector:
    def __init__(self):
        self.batches = []
        self.event = threading.Event()

    def __call__(self, batch):
        self.batches.append(batch)
        self.event.set()

    def wait_for(self, n, timeout=5.0):
        deadline = time.monotonic() + timeout
        while len(self.batches) < n:
            if time.monotonic() >= deadline:
                raise AssertionError(
                    f"only {len(self.batches)} batches after {timeout:g}s"
                )
            time.sleep(0.005)
        return self.batches


class TestCoalescer:
    def test_fills_to_batch_max(self):
        got = _Collector()
        co = Coalescer(got, batch_max=4, batch_window_s=60.0)
        try:
            for i in range(4):
                co.add(i)
            batches = got.wait_for(1)
            assert batches[0] == [0, 1, 2, 3]
            stats = co.stats()
            assert stats["flushes_total"] == 1
            assert stats["batched_total"] == 4
            assert stats["batch_size_max"] == 4
        finally:
            co.close()

    def test_window_flushes_a_lone_item(self):
        got = _Collector()
        co = Coalescer(got, batch_max=64, batch_window_s=0.02)
        try:
            co.add("only")
            batches = got.wait_for(1)
            assert batches[0] == ["only"]
            # a solo flush is not counted as "batched"
            assert co.stats()["batched_total"] == 0
        finally:
            co.close()

    def test_overflow_splits_into_ceil_batches(self):
        got = _Collector()
        co = Coalescer(got, batch_max=3, batch_window_s=0.01)
        try:
            for i in range(7):
                co.add(i)
            batches = got.wait_for(3)
            assert [x for b in batches for x in b] == list(range(7))
            assert all(len(b) <= 3 for b in batches)
        finally:
            co.close()

    def test_close_flushes_pending(self):
        got = _Collector()
        co = Coalescer(got, batch_max=64, batch_window_s=60.0)
        co.add("pending-at-close")
        co.close()
        assert got.batches == [["pending-at-close"]]
        assert co.stats()["pending"] == 0

    def test_add_after_close_raises(self):
        co = Coalescer(lambda batch: None, batch_max=1, batch_window_s=0.0)
        co.close()
        with pytest.raises(RuntimeError, match="closed"):
            co.add("late")

    def test_close_is_idempotent(self):
        co = Coalescer(lambda batch: None, batch_max=1, batch_window_s=0.0)
        co.close()
        co.close()

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="batch_max"):
            Coalescer(lambda b: None, batch_max=0, batch_window_s=0.0)
        with pytest.raises(ValueError, match="batch_window_s"):
            Coalescer(lambda b: None, batch_max=1, batch_window_s=-1.0)

    def test_zero_window_still_delivers(self):
        """window=0 (the 1-client operating point) degrades to
        flush-per-item, never to dropped items."""
        got = _Collector()
        co = Coalescer(got, batch_max=1, batch_window_s=0.0)
        try:
            for i in range(5):
                co.add(i)
            batches = got.wait_for(5)
            assert [x for b in batches for x in b] == list(range(5))
        finally:
            co.close()
