"""Tests for the length-prefixed JSON frame codec.

The codec contract under test: any chunking of the byte stream decodes
to the same frame sequence, and a bad *payload* (oversized, garbage,
non-object) degrades to a :class:`FrameError` event while the stream
stays framed — the connection must survive a malformed frame.
"""

import json
import struct

import pytest

from repro.mux.frames import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
    encode_frame_with_raw,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - test extra not installed
    HAVE_HYPOTHESIS = False


def _frames(events):
    return [e for e in events if isinstance(e, dict)]


def _errors(events):
    return [e for e in events if isinstance(e, FrameError)]


class TestRoundTrip:
    def test_single_frame(self):
        frame = {"type": "hello", "channel": 1, "protocol_version": 1}
        dec = FrameDecoder()
        assert dec.feed(encode_frame(frame)) == [frame]
        assert dec.frames_total == 1
        assert dec.buffered() == 0

    def test_many_frames_one_feed(self):
        frames = [{"type": "status", "channel": i} for i in range(10)]
        blob = b"".join(encode_frame(f) for f in frames)
        assert FrameDecoder().feed(blob) == frames

    def test_byte_at_a_time_matches_one_big_read(self):
        frames = [
            {"type": "submit", "channel": 3, "manifest": {"entries": [1, 2]}},
            {"type": "receipt", "channel": 4, "receipt": {"key": "a" * 64}},
        ]
        blob = b"".join(encode_frame(f) for f in frames)
        dec = FrameDecoder()
        out = []
        for i in range(len(blob)):
            out.extend(dec.feed(blob[i : i + 1]))
        assert out == frames
        assert dec.buffered() == 0

    def test_interleaved_channels_preserve_order(self):
        """Frames for distinct channels share one stream; the decoder
        hands them back in wire order so the router can demux them."""
        frames = [
            {"type": "submitted", "channel": 1, "job_id": "a"},
            {"type": "status", "channel": 2, "status": {"state": "running"}},
            {"type": "receipt", "channel": 1, "receipt": {}},
            {"type": "receipt", "channel": 2, "receipt": {}},
        ]
        blob = b"".join(encode_frame(f) for f in frames)
        # split mid-frame to force buffering across channel boundaries
        dec = FrameDecoder()
        out = dec.feed(blob[:7])
        out += dec.feed(blob[7:31])
        out += dec.feed(blob[31:])
        assert out == frames
        assert [f["channel"] for f in out] == [1, 2, 1, 2]

    def test_unicode_payload(self):
        frame = {"type": "error", "message": "manifeste tronqué — 壊れた"}
        dec = FrameDecoder()
        assert dec.feed(encode_frame(frame)) == [frame]


class TestMalformedFrames:
    def test_garbage_payload_is_an_event_not_a_death(self):
        good = {"type": "hello", "channel": 9}
        garbage = struct.pack(">I", 7) + b"not{js}"
        dec = FrameDecoder()
        events = dec.feed(garbage + encode_frame(good))
        assert len(_errors(events)) == 1
        assert "not valid JSON" in _errors(events)[0].message
        # the stream survives: the next frame decodes normally
        assert _frames(events) == [good]
        assert dec.errors_total == 1
        assert dec.frames_total == 1

    def test_non_object_payload_rejected(self):
        blob = json.dumps([1, 2, 3]).encode()
        dec = FrameDecoder()
        events = dec.feed(struct.pack(">I", len(blob)) + blob)
        assert len(_errors(events)) == 1
        assert "JSON object" in _errors(events)[0].message

    def test_invalid_utf8_payload_rejected(self):
        dec = FrameDecoder()
        events = dec.feed(struct.pack(">I", 2) + b"\xff\xfe")
        assert len(_errors(events)) == 1

    def test_oversized_frame_resynchronizes(self):
        """An oversized declared length yields one error, then the
        decoder discards exactly that many payload bytes and picks the
        next header back up — no gigabyte buffering, no desync."""
        dec = FrameDecoder(max_frame_bytes=64)
        big = b"x" * 100
        good = {"type": "hello"}
        blob = struct.pack(">I", len(big)) + big + encode_frame(good)
        events = []
        # drip-feed so the discard path runs across feed() boundaries
        for i in range(0, len(blob), 17):
            events.extend(dec.feed(blob[i : i + 17]))
        assert len(_errors(events)) == 1
        assert "exceeds" in _errors(events)[0].message
        assert _frames(events) == [good]

    def test_encode_refuses_oversized_frame(self, monkeypatch):
        # shrink the cap rather than allocate a genuinely cap-sized
        # payload (the real ceiling is hundreds of MB)
        monkeypatch.setattr("repro.mux.frames.MAX_FRAME_BYTES", 1024)
        with pytest.raises(ValueError, match="exceeds MAX_FRAME_BYTES"):
            encode_frame({"pad": "x" * 1025})

    def test_manifest_scale_frames_encode(self):
        """The cap clears a real obfuscated-manifest payload: sealed
        manifests for heavily obfuscated models run ~100 MB of compact
        JSON, and mux must carry whatever http:// carries."""
        assert MAX_FRAME_BYTES >= 200 * 1024 * 1024


class TestEncodeWithRaw:
    """The spliced-raw fast path must be byte-identical to re-encoding."""

    @pytest.mark.parametrize(
        "obj, value",
        [
            ({"type": "receipt", "channel": 7}, {"key": "k", "entries": {}}),
            ({}, [1, 2, 3]),
            ({"a": 1}, "just a string"),
            ({"type": "submit", "channel": 0, "want_receipt": True}, None),
        ],
    )
    def test_byte_identical_to_encode_frame(self, obj, value):
        raw = json.dumps(value, separators=(",", ":")).encode("utf-8")
        spliced = encode_frame_with_raw(obj, "payload", raw)
        rebuilt = encode_frame({**obj, "payload": value})
        assert spliced == rebuilt
        # and it decodes back to the merged object
        assert FrameDecoder().feed(spliced) == [{**obj, "payload": value}]

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="must not also be present"):
            encode_frame_with_raw({"manifest": 1}, "manifest", b"{}")

    def test_oversized_spliced_frame_rejected(self, monkeypatch):
        monkeypatch.setattr("repro.mux.frames.MAX_FRAME_BYTES", 1024)
        raw = b'"' + b"x" * 1024 + b'"'
        with pytest.raises(ValueError, match="exceeds MAX_FRAME_BYTES"):
            encode_frame_with_raw({"type": "receipt"}, "receipt", raw)


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestFuzzRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.dictionaries(
                st.text(max_size=8),
                st.recursive(
                    st.none()
                    | st.booleans()
                    | st.integers(min_value=-(2**53), max_value=2**53)
                    | st.text(max_size=16),
                    lambda inner: st.lists(inner, max_size=3)
                    | st.dictionaries(st.text(max_size=4), inner, max_size=3),
                    max_leaves=8,
                ),
                max_size=4,
            ),
            max_size=4,
        ),
        st.randoms(use_true_random=False),
    )
    def test_any_chunking_round_trips(self, frames, rng):
        blob = b"".join(encode_frame(f) for f in frames)
        dec = FrameDecoder()
        out = []
        i = 0
        while i < len(blob):
            step = rng.randint(1, max(1, len(blob) // 3))
            out.extend(dec.feed(blob[i : i + step]))
            i += step
        assert out == frames
        assert dec.buffered() == 0
        assert dec.frames_total == len(frames)
        assert dec.errors_total == 0

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=256))
    def test_arbitrary_bytes_never_crash_the_decoder(self, junk):
        """Garbage in: FrameError events out, exceptions never."""
        dec = FrameDecoder(max_frame_bytes=1024)
        events = dec.feed(junk)
        for event in events:
            assert isinstance(event, (dict, FrameError))
        # whatever state the junk left, a fresh valid frame still works
        # once the pending declared length is satisfied; at minimum the
        # decoder object stays usable.
        dec.feed(encode_frame({"type": "hello"}))


def test_header_size_is_four_bytes():
    # the wire format is frozen: 4-byte big-endian length prefix
    assert HEADER_BYTES == 4
    assert encode_frame({})[:4] == struct.pack(">I", 2)
