"""Tests for distribution stats and search-space math."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis import (
    TradeoffRow,
    compare_feature_distributions,
    format_sci,
    histogram_overlap,
    optimizer_overhead,
    recovery_cost,
)


class TestHistogramOverlap:
    def test_identical_full_overlap(self):
        a = np.random.default_rng(0).standard_normal(200)
        assert histogram_overlap(a, a) == pytest.approx(1.0)

    def test_disjoint_zero_overlap(self):
        assert histogram_overlap(np.zeros(50), np.ones(50) * 10) < 0.1

    def test_degenerate_range(self):
        assert histogram_overlap(np.ones(5), np.ones(5)) == 1.0


class TestCompareDistributions:
    def test_same_family_high_overlap(self):
        rng = np.random.default_rng(0)
        graphs_a = [nx.path_graph(int(n)) for n in rng.integers(5, 15, 30)]
        graphs_b = [nx.path_graph(int(n)) for n in rng.integers(5, 15, 30)]
        cmp = compare_feature_distributions(graphs_a, graphs_b)
        assert set(cmp) == {"average_degree", "clustering_coefficient", "diameter", "num_nodes"}
        assert cmp["num_nodes"].p_value > 0.01

    def test_different_family_detected(self):
        chains = [nx.path_graph(10) for _ in range(20)]
        cliques = [nx.complete_graph(10) for _ in range(20)]
        cmp = compare_feature_distributions(chains, cliques)
        assert cmp["average_degree"].ks_statistic == 1.0

    def test_needs_two_each(self):
        with pytest.raises(ValueError, match="at least 2"):
            compare_feature_distributions([nx.path_graph(3)], [nx.path_graph(3)] * 5)

    def test_summary_string(self):
        cmp = compare_feature_distributions([nx.path_graph(5)] * 3, [nx.path_graph(6)] * 3)
        assert "KS=" in cmp["num_nodes"].summary()


class TestSearchSpaceMath:
    def test_recovery_cost(self):
        assert recovery_cost(10, 20) == 21.0**10
        assert recovery_cost(0, 20) == 1.0

    def test_recovery_validates(self):
        with pytest.raises(ValueError):
            recovery_cost(-1, 2)

    def test_overhead(self):
        assert optimizer_overhead(20) == 21
        with pytest.raises(ValueError):
            optimizer_overhead(-2)

    def test_format_sci(self):
        assert format_sci(0) == "0"
        assert format_sci(42.0) == "42"
        out = format_sci(1.23e21)
        assert "e21" in out

    def test_tradeoff_row(self):
        row = TradeoffRow(n=10, k=20)
        assert row.recovery == 21.0**10
        assert row.overhead == 21
        assert "n= 10" in row.summary()
