"""analysis tests."""
