"""ir tests."""
