"""Tests for repro.ir.node."""

import pytest

from repro.ir.node import Node


class TestNodeConstruction:
    def test_basic(self):
        n = Node("n0", "Relu", ["x"], ["y"])
        assert n.name == "n0"
        assert n.op_type == "Relu"
        assert n.inputs == ["x"]
        assert n.outputs == ["y"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Node("", "Relu", ["x"], ["y"])

    def test_empty_op_type_rejected(self):
        with pytest.raises(ValueError, match="op_type"):
            Node("n", "", ["x"], ["y"])

    def test_no_outputs_rejected(self):
        with pytest.raises(ValueError, match="output"):
            Node("n", "Relu", ["x"], [])

    def test_list_attrs_become_tuples(self):
        n = Node("n", "Conv", ["x", "w"], ["y"], {"kernel_shape": [3, 3]})
        assert n.attrs["kernel_shape"] == (3, 3)

    def test_bad_attr_type_rejected(self):
        with pytest.raises(TypeError, match="unsupported type"):
            Node("n", "Relu", ["x"], ["y"], {"bad": object()})


class TestNodeHelpers:
    def test_attr_default(self):
        n = Node("n", "Conv", ["x", "w"], ["y"], {"pads": 1})
        assert n.attr("pads") == 1
        assert n.attr("missing", 7) == 7

    def test_set_attr_tuples(self):
        n = Node("n", "Relu", ["x"], ["y"])
        n.set_attr("axes", [1, 2])
        assert n.attrs["axes"] == (1, 2)

    def test_replace_input_counts(self):
        n = Node("n", "Add", ["a", "a"], ["y"])
        assert n.replace_input("a", "b") == 2
        assert n.inputs == ["b", "b"]
        assert n.replace_input("zzz", "q") == 0

    def test_clone_is_independent(self):
        n = Node("n", "Conv", ["x", "w"], ["y"], {"pads": 1})
        c = n.clone()
        c.inputs[0] = "other"
        c.attrs["pads"] = 9
        assert n.inputs[0] == "x"
        assert n.attrs["pads"] == 1

    def test_clone_rename(self):
        assert Node("n", "Relu", ["x"], ["y"]).clone("m").name == "m"

    def test_equality(self):
        a = Node("n", "Relu", ["x"], ["y"])
        b = Node("n", "Relu", ["x"], ["y"])
        assert a == b
        assert a != Node("n", "Relu", ["x2"], ["y"])

    def test_repr_contains_op(self):
        assert "Relu" in repr(Node("n", "Relu", ["x"], ["y"]))
