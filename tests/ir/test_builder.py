"""Tests for the GraphBuilder fluent API."""

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.ir.dtypes import DataType


class TestBuilderBasics:
    def test_build_validates_and_types_outputs(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        y = b.relu(x)
        g = b.build([y])
        assert g.outputs[0].type is not None
        assert g.outputs[0].type.shape == (1, 4)

    def test_weight_reproducible_by_seed(self):
        g1 = GraphBuilder("a", seed=7)
        g2 = GraphBuilder("b", seed=7)
        w1 = g1.weight((3, 3))
        w2 = g2.weight((3, 3))
        np.testing.assert_array_equal(g1.graph.initializers[w1], g2.graph.initializers[w2])

    def test_constant(self):
        b = GraphBuilder("t", seed=0)
        c = b.constant(np.arange(4, dtype=np.float32))
        assert b.graph.initializers[c].tolist() == [0, 1, 2, 3]

    def test_conv_infers_channels(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 6, 8, 8))
        h = b.conv(x, 12, kernel=3)
        assert b.shape_of(h) == (1, 12, 8, 8)

    def test_conv_requires_type_info(self):
        b = GraphBuilder("t", seed=0)
        with pytest.raises(ValueError, match="in_channels"):
            b.conv("nonexistent", 8)

    def test_linear_emits_matmul_add(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        b.linear(x, 4, 8)
        ops = [n.op_type for n in b.graph.nodes]
        assert ops == ["MatMul", "Add"]

    def test_gemm_shape(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 6))
        h = b.gemm(x, 6, 3)
        assert b.shape_of(h) == (2, 3)

    def test_int_input(self):
        b = GraphBuilder("t", seed=0)
        ids = b.input("ids", (5,), DataType.INT64)
        assert b.type_of(ids).dtype is DataType.INT64


class TestBuilderOps:
    def test_pool_chain(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 16, 16))
        h = b.maxpool(x, 2)
        h = b.avgpool(h, 2)
        h = b.global_avgpool(h)
        assert b.shape_of(h) == (1, 4, 1, 1)

    def test_batchnorm_params_registered(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8, 4, 4))
        b.batchnorm(x)
        assert len(b.graph.initializers) == 4

    def test_layernorm(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 16))
        h = b.layernorm(x, 16)
        assert b.shape_of(h) == (1, 4, 16)

    def test_concat(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        y = b.relu(x)
        z = b.concat([x, y], axis=1)
        assert b.shape_of(z) == (1, 8, 8, 8)

    def test_reshape_transpose(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8, 4))
        h = b.transpose(x, (0, 2, 1))
        h = b.reshape(h, (1, 32))
        assert b.shape_of(h) == (1, 32)

    def test_scalar_helper(self):
        b = GraphBuilder("t", seed=0)
        s = b.scalar(0.5)
        assert float(b.graph.initializers[s]) == 0.5

    def test_multiple_outputs(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        y1 = b.relu(x)
        y2 = b.tanh(x)
        g = b.build([y1, y2])
        assert len(g.outputs) == 2

    def test_build_toposorts(self, conv_chain):
        names_in_order = [n.name for n in conv_chain.nodes]
        assert names_in_order == [n.name for n in conv_chain.topological_order()]
