"""Tests for the Graph container: indices, mutation, ordering."""

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.ir.dtypes import f32
from repro.ir.graph import Graph, GraphError, Value
from repro.ir.node import Node


def diamond_graph():
    """x -> a -> (b, c) -> d"""
    return Graph(
        "diamond",
        inputs=[Value("x", f32(1, 4))],
        outputs=[Value("d_out")],
        nodes=[
            Node("a", "Relu", ["x"], ["a_out"]),
            Node("b", "Sigmoid", ["a_out"], ["b_out"]),
            Node("c", "Tanh", ["a_out"], ["c_out"]),
            Node("d", "Add", ["b_out", "c_out"], ["d_out"]),
        ],
    )


class TestIndices:
    def test_producer(self):
        g = diamond_graph()
        assert g.producer_of("a_out").name == "a"
        assert g.producer_of("x") is None

    def test_consumers(self):
        g = diamond_graph()
        assert {n.name for n in g.consumers_of("a_out")} == {"b", "c"}
        assert g.consumers_of("d_out") == []

    def test_predecessors_successors(self):
        g = diamond_graph()
        d = g.node_by_name("d")
        assert {n.name for n in g.predecessors(d)} == {"b", "c"}
        a = g.node_by_name("a")
        assert {n.name for n in g.successors(a)} == {"b", "c"}

    def test_duplicate_producer_rejected(self):
        g = Graph(
            "bad",
            nodes=[
                Node("a", "Relu", ["x"], ["y"]),
                Node("b", "Tanh", ["x"], ["y"]),
            ],
        )
        with pytest.raises(GraphError, match="produced by both"):
            g.producer_of("y")


class TestMembership:
    def test_initializer_and_input_flags(self):
        g = diamond_graph()
        g.add_initializer("w", np.zeros(3, dtype=np.float32))
        assert g.is_initializer("w")
        assert g.is_graph_input("x")
        assert g.is_graph_output("d_out")
        assert not g.is_graph_output("a_out")

    def test_node_by_name_missing(self):
        with pytest.raises(KeyError):
            diamond_graph().node_by_name("zzz")

    def test_all_value_names(self):
        g = diamond_graph()
        names = g.all_value_names()
        assert {"x", "a_out", "b_out", "c_out", "d_out"} <= names


class TestMutation:
    def test_add_duplicate_node_rejected(self):
        g = diamond_graph()
        with pytest.raises(GraphError, match="duplicate node"):
            g.add_node(Node("a", "Relu", ["x"], ["zz"]))

    def test_remove_node(self):
        g = diamond_graph()
        g.remove_node(g.node_by_name("d"))
        assert not g.has_node("d")

    def test_remove_missing_node_rejected(self):
        g = diamond_graph()
        with pytest.raises(GraphError, match="not in graph"):
            g.remove_node(Node("ghost", "Relu", ["x"], ["q"]))

    def test_duplicate_initializer_rejected(self):
        g = diamond_graph()
        g.add_initializer("w", np.zeros(2, dtype=np.float32))
        with pytest.raises(GraphError, match="duplicate initializer"):
            g.add_initializer("w", np.zeros(2, dtype=np.float32))

    def test_replace_all_uses_rewires_consumers_and_outputs(self):
        g = diamond_graph()
        count = g.replace_all_uses("a_out", "x")
        assert count == 2
        assert g.node_by_name("b").inputs == ["x"]
        count = g.replace_all_uses("d_out", "c_out")
        assert g.output_names == ["c_out"]
        assert count == 1

    def test_fresh_names(self):
        g = diamond_graph()
        assert g.fresh_value_name("a_out") != "a_out"
        assert g.fresh_node_name("a") != "a"
        assert g.fresh_node_name("unique") == "unique"


class TestOrdering:
    def test_topological_order(self):
        g = diamond_graph()
        order = [n.name for n in g.topological_order()]
        assert order.index("a") < order.index("b")
        assert order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_cycle_detected(self):
        g = Graph(
            "cyc",
            nodes=[
                Node("a", "Relu", ["b_out"], ["a_out"]),
                Node("b", "Relu", ["a_out"], ["b_out"]),
            ],
        )
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()
        assert not g.is_acyclic()

    def test_toposort_inplace(self):
        g = diamond_graph()
        g.nodes.reverse()
        g._invalidate()
        g.toposort_inplace()
        order = [n.name for n in g.nodes]
        assert order.index("a") == 0


class TestConversions:
    def test_to_networkx(self):
        nxg = diamond_graph().to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.has_edge("a", "b")
        assert nxg.nodes["a"]["op_type"] == "Relu"

    def test_clone_independent(self):
        g = diamond_graph()
        c = g.clone()
        c.node_by_name("a").op_type = "Tanh"
        c.remove_node(c.node_by_name("d"))
        assert g.node_by_name("a").op_type == "Relu"
        assert g.has_node("d")

    def test_opcode_histogram(self):
        hist = diamond_graph().opcode_histogram()
        assert hist == {"Relu": 1, "Sigmoid": 1, "Tanh": 1, "Add": 1}

    def test_len_iter(self):
        g = diamond_graph()
        assert len(g) == 4
        assert len(list(g)) == 4


class TestBuilderIntegration:
    def test_builder_records_types(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.conv(x, 8)
        assert b.shape_of(h) == (1, 8, 8, 8)

    def test_builder_requires_outputs(self):
        b = GraphBuilder("t", seed=0)
        b.input("x", (1, 4))
        with pytest.raises(ValueError, match="outputs"):
            b.build()


class TestTopoCache:
    def test_repeated_calls_return_equal_fresh_lists(self):
        g = diamond_graph()
        first = g.topological_order()
        second = g.topological_order()
        assert first == second
        assert first is not second  # callers may mutate their copy freely

    def test_mutating_returned_list_does_not_corrupt_cache(self):
        g = diamond_graph()
        order = g.topological_order()
        order.clear()
        assert [n.name for n in g.topological_order()][0] == "a"

    def test_cache_invalidated_by_mutation(self):
        g = diamond_graph()
        assert len(g.topological_order()) == 4
        g.add_node(Node("e", "Relu", ["d_out"], ["e_out"]))
        order = g.topological_order()
        assert len(order) == 5
        assert order[-1].name == "e"

    def test_touch_bumps_revision_and_drops_caches(self):
        g = diamond_graph()
        g.topological_order()
        before = g._revision
        g.touch()
        assert g._revision == before + 1
        assert g._topo_cache is None and g._shape_cache is None

    def test_toposort_inplace_still_works_with_cache(self):
        g = diamond_graph()
        g.nodes.reverse()
        g.touch()  # direct list mutation requires an explicit touch
        g.toposort_inplace()
        assert [n.name for n in g.nodes][0] == "a"
