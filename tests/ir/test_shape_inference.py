"""Tests for static shape inference — one class per operator family."""

import pytest

from repro.ir.dtypes import DataType, TensorType, f32
from repro.ir.node import Node
from repro.ir.shape_inference import (
    ShapeInferenceError,
    broadcast_shapes,
    infer_node_types,
)


def infer(op, in_types, attrs=None, n_out=1):
    node = Node("t", op, [f"i{k}" for k in range(len(in_types))],
                [f"o{k}" for k in range(n_out)], attrs)
    return infer_node_types(node, in_types)


class TestBroadcast:
    def test_equal(self):
        assert broadcast_shapes((2, 3), (2, 3)) == (2, 3)

    def test_ones_expand(self):
        assert broadcast_shapes((2, 1, 4), (3, 1)) == (2, 3, 4)

    def test_scalar(self):
        assert broadcast_shapes((), (5, 2)) == (5, 2)

    def test_incompatible(self):
        with pytest.raises(ShapeInferenceError, match="broadcast"):
            broadcast_shapes((2, 3), (2, 4))


class TestElementwise:
    def test_unary_preserves(self):
        assert infer("Relu", [f32(1, 8, 4, 4)])[0].shape == (1, 8, 4, 4)

    def test_binary_broadcasts(self):
        assert infer("Add", [f32(1, 8, 4, 4), f32(8, 1, 1)])[0].shape == (1, 8, 4, 4)

    def test_binary_dtype_mismatch(self):
        with pytest.raises(ShapeInferenceError, match="dtype"):
            infer("Add", [f32(2), TensorType(DataType.INT64, (2,))])

    def test_softmax_axis_validation(self):
        with pytest.raises(ShapeInferenceError, match="axis"):
            infer("Softmax", [f32(2, 3)], {"axis": 5})


class TestConv:
    W = f32(16, 8, 3, 3)

    def test_same_padding(self):
        out = infer("Conv", [f32(1, 8, 32, 32), self.W],
                    {"kernel_shape": (3, 3), "strides": (1, 1), "pads": 1})
        assert out[0].shape == (1, 16, 32, 32)

    def test_stride2(self):
        out = infer("Conv", [f32(1, 8, 32, 32), self.W],
                    {"kernel_shape": (3, 3), "strides": (2, 2), "pads": 1})
        assert out[0].shape == (1, 16, 16, 16)

    def test_channel_mismatch(self):
        with pytest.raises(ShapeInferenceError, match="channel mismatch"):
            infer("Conv", [f32(1, 4, 8, 8), self.W], {"kernel_shape": (3, 3), "pads": 1})

    def test_kernel_attr_disagrees_with_weight(self):
        with pytest.raises(ShapeInferenceError, match="disagrees"):
            infer("Conv", [f32(1, 8, 8, 8), self.W], {"kernel_shape": (5, 5), "pads": 2})

    def test_grouped_conv(self):
        w = f32(8, 1, 3, 3)
        out = infer("Conv", [f32(1, 8, 8, 8), w],
                    {"kernel_shape": (3, 3), "pads": 1, "group": 8})
        assert out[0].shape == (1, 8, 8, 8)

    def test_bias_shape_checked(self):
        with pytest.raises(ShapeInferenceError, match="bias"):
            infer("Conv", [f32(1, 8, 8, 8), self.W, f32(4)],
                  {"kernel_shape": (3, 3), "pads": 1})

    def test_too_small_spatial(self):
        with pytest.raises(ShapeInferenceError, match="non-positive"):
            infer("Conv", [f32(1, 8, 2, 2), self.W], {"kernel_shape": (3, 3), "pads": 0})

    def test_missing_required_attr(self):
        with pytest.raises(ShapeInferenceError, match="missing required attr"):
            infer("Conv", [f32(1, 8, 8, 8), self.W])

    def test_fused_conv_add_residual_shape(self):
        out = infer("FusedConvAdd", [f32(1, 8, 8, 8), self.W, f32(1, 16, 8, 8)],
                    {"kernel_shape": (3, 3), "pads": 1, "activation": "Relu"})
        assert out[0].shape == (1, 16, 8, 8)

    def test_fused_conv_add_bad_residual(self):
        with pytest.raises(ShapeInferenceError, match="residual"):
            infer("FusedConvAdd", [f32(1, 8, 8, 8), self.W, f32(1, 16, 4, 4)],
                  {"kernel_shape": (3, 3), "pads": 1})


class TestPool:
    def test_maxpool(self):
        out = infer("MaxPool", [f32(1, 8, 16, 16)],
                    {"kernel_shape": (2, 2), "strides": (2, 2)})
        assert out[0].shape == (1, 8, 8, 8)

    def test_global_avgpool(self):
        assert infer("GlobalAveragePool", [f32(1, 8, 7, 9)])[0].shape == (1, 8, 1, 1)

    def test_pool_requires_4d(self):
        with pytest.raises(ShapeInferenceError, match="4-D"):
            infer("MaxPool", [f32(8, 16)], {"kernel_shape": (2, 2)})


class TestNormalization:
    def test_batchnorm(self):
        c = f32(8)
        out = infer("BatchNormalization", [f32(1, 8, 4, 4), c, c, c, c])
        assert out[0].shape == (1, 8, 4, 4)

    def test_batchnorm_param_shape(self):
        with pytest.raises(ShapeInferenceError, match="param"):
            infer("BatchNormalization", [f32(1, 8, 4, 4), f32(4), f32(8), f32(8), f32(8)])

    def test_layernorm(self):
        out = infer("LayerNormalization", [f32(1, 8, 16), f32(16), f32(16)], {"axis": -1})
        assert out[0].shape == (1, 8, 16)

    def test_skip_layernorm_shape_mismatch(self):
        with pytest.raises(ShapeInferenceError, match="mismatch"):
            infer("SkipLayerNormalization",
                  [f32(1, 4, 8), f32(1, 5, 8), f32(8), f32(8)])


class TestMatMul:
    def test_2d(self):
        assert infer("MatMul", [f32(3, 4), f32(4, 5)])[0].shape == (3, 5)

    def test_batched_broadcast(self):
        out = infer("MatMul", [f32(2, 1, 3, 4), f32(5, 4, 6)])
        assert out[0].shape == (2, 5, 3, 6)

    def test_inner_mismatch(self):
        with pytest.raises(ShapeInferenceError, match="inner-dim"):
            infer("MatMul", [f32(3, 4), f32(5, 6)])

    def test_gemm_transB(self):
        out = infer("Gemm", [f32(2, 4), f32(8, 4)], {"transB": 1})
        assert out[0].shape == (2, 8)

    def test_gemm_rank_check(self):
        with pytest.raises(ShapeInferenceError, match="2-D"):
            infer("Gemm", [f32(1, 2, 4), f32(4, 8)])

    def test_fused_matmul_with_bias(self):
        out = infer("FusedMatMul", [f32(1, 8, 16), f32(16, 32), f32(32)],
                    {"activation": "Relu"})
        assert out[0].shape == (1, 8, 32)


class TestShapeOps:
    def test_reshape_minus_one(self):
        out = infer("Reshape", [f32(1, 8, 4, 4)], {"shape": (1, -1)})
        assert out[0].shape == (1, 128)

    def test_reshape_zero_copies_dim(self):
        out = infer("Reshape", [f32(2, 8, 4)], {"shape": (0, -1)})
        assert out[0].shape == (2, 32)

    def test_reshape_element_mismatch(self):
        with pytest.raises(ShapeInferenceError):
            infer("Reshape", [f32(2, 3)], {"shape": (4, 2)})

    def test_reshape_two_minus_ones(self):
        with pytest.raises(ShapeInferenceError, match="-1"):
            infer("Reshape", [f32(4, 4)], {"shape": (-1, -1)})

    def test_transpose(self):
        out = infer("Transpose", [f32(1, 2, 3, 4)], {"perm": (0, 2, 1, 3)})
        assert out[0].shape == (1, 3, 2, 4)

    def test_transpose_bad_perm(self):
        with pytest.raises(ShapeInferenceError, match="perm"):
            infer("Transpose", [f32(2, 3)], {"perm": (0, 0)})

    def test_flatten(self):
        assert infer("Flatten", [f32(2, 3, 4)], {"axis": 1})[0].shape == (2, 12)

    def test_concat(self):
        out = infer("Concat", [f32(1, 4, 8, 8), f32(1, 6, 8, 8)], {"axis": 1})
        assert out[0].shape == (1, 10, 8, 8)

    def test_concat_mismatch(self):
        with pytest.raises(ShapeInferenceError, match="non-axis"):
            infer("Concat", [f32(1, 4, 8, 8), f32(1, 6, 4, 4)], {"axis": 1})

    def test_squeeze_unsqueeze_roundtrip(self):
        up = infer("Unsqueeze", [f32(3, 4)], {"axes": (0,)})[0]
        down = infer("Squeeze", [up], {"axes": (0,)})[0]
        assert down.shape == (3, 4)

    def test_squeeze_non_unit(self):
        with pytest.raises(ShapeInferenceError, match="non-unit"):
            infer("Squeeze", [f32(3, 4)], {"axes": (0,)})

    def test_slice(self):
        out = infer("Slice", [f32(1, 10, 4)], {"starts": (2,), "ends": (5,), "axes": (1,)})
        assert out[0].shape == (1, 3, 4)

    def test_gather(self):
        out = infer("Gather", [f32(100, 16), TensorType(DataType.INT64, (7,))], {"axis": 0})
        assert out[0].shape == (7, 16)


class TestReduce:
    def test_reduce_mean_keepdims(self):
        out = infer("ReduceMean", [f32(1, 8, 4, 4)], {"axes": (2, 3), "keepdims": 1})
        assert out[0].shape == (1, 8, 1, 1)

    def test_reduce_sum_no_keepdims(self):
        out = infer("ReduceSum", [f32(2, 3, 4)], {"axes": (-1,), "keepdims": 0})
        assert out[0].shape == (2, 3)


class TestArity:
    def test_arity_violation(self):
        with pytest.raises(ShapeInferenceError, match="inputs"):
            infer("Relu", [f32(2), f32(2)])

    def test_unknown_value_in_graph(self, conv_chain):
        from repro.ir.shape_inference import infer_shapes
        conv_chain.nodes[0].inputs[0] = "ghost_value"
        with pytest.raises(ShapeInferenceError, match="undefined"):
            infer_shapes(conv_chain)


class TestMemoization:
    def _graph(self):
        from repro.ir import GraphBuilder

        b = GraphBuilder("memo", seed=0)
        x = b.input("x", (1, 4))
        return b.build([b.relu(x)])

    def test_unchanged_graph_returns_same_mapping_object(self):
        from repro.ir.shape_inference import infer_shapes

        g = self._graph()
        g.touch()
        first = infer_shapes(g)
        assert infer_shapes(g) is first  # memo hit: identity, not recompute

    def test_mutation_invalidates_memo(self):
        from repro.ir import GraphBuilder
        from repro.ir.shape_inference import infer_shapes

        b = GraphBuilder("memo2", seed=0)
        x = b.input("x", (1, 4))
        g = b.build([b.relu(x)])
        first = infer_shapes(g)
        g.add_node(Node("extra", "Tanh", [g.nodes[0].outputs[0]], ["t_out"]))
        second = infer_shapes(g)
        assert second is not first
        assert "t_out" in second

    def test_clone_does_not_share_memo(self):
        from repro.ir.shape_inference import infer_shapes

        g = self._graph()
        infer_shapes(g)
        c = g.clone()
        types = infer_shapes(c)
        assert types is c.value_types

    def test_failure_not_memoized(self):
        from repro.ir.graph import Graph, Value
        from repro.ir.shape_inference import infer_shapes

        bad = Graph(
            "bad",
            inputs=[Value("x", f32(1, 4)), Value("y", f32(3,))],
            outputs=[Value("o")],
            nodes=[Node("a", "Add", ["x", "y"], ["o"])],
        )
        for _ in range(2):  # raises every time, never caches the failure
            with pytest.raises(ShapeInferenceError):
                infer_shapes(bad)

    def test_explicit_touch_forces_recompute(self):
        from repro.ir.shape_inference import infer_shapes

        g = self._graph()
        first = infer_shapes(g)
        g.touch()
        assert infer_shapes(g) is not first
