"""Tests for the operator registry."""

import pytest

from repro.ir.ops import (
    MODEL_OPCODES,
    OPSET,
    SENTINEL_OPCODES,
    OpSpec,
    is_registered,
    op_spec,
    register_op,
)


class TestRegistry:
    def test_core_ops_registered(self):
        for op in ["Conv", "MatMul", "Relu", "Add", "Softmax", "BatchNormalization",
                    "Concat", "Reshape", "Gemm", "LayerNormalization"]:
            assert is_registered(op)

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError, match="unknown operator"):
            op_spec("NotAnOp")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_op(OpSpec("Conv", 2, 3))

    def test_fused_ops_not_in_model_opcodes(self):
        for op in ["FusedConv", "FusedGemm", "SkipLayerNormalization", "FusedMatMul"]:
            assert is_registered(op)
            assert op not in MODEL_OPCODES

    def test_sentinel_opcodes_exclude_plumbing(self):
        assert "Identity" not in SENTINEL_OPCODES
        assert "Cast" not in SENTINEL_OPCODES
        assert "Conv" in SENTINEL_OPCODES


class TestArity:
    def test_fixed_arity(self):
        spec = op_spec("Relu")
        assert spec.accepts_arity(1)
        assert not spec.accepts_arity(2)
        assert not spec.accepts_arity(0)

    def test_optional_input(self):
        spec = op_spec("Conv")
        assert spec.accepts_arity(2)
        assert spec.accepts_arity(3)
        assert not spec.accepts_arity(4)

    def test_variadic(self):
        spec = op_spec("Concat")
        assert spec.max_inputs == -1
        assert spec.accepts_arity(2)
        assert spec.accepts_arity(17)
        assert not spec.accepts_arity(1)


class TestTags:
    def test_conv_tag(self):
        assert op_spec("Conv").has_tag("conv")

    def test_elementwise_tags(self):
        assert op_spec("Add").has_tag("elementwise")
        assert op_spec("Relu").has_tag("activation")
        assert not op_spec("Conv").has_tag("elementwise")

    def test_required_attrs(self):
        assert "kernel_shape" in op_spec("Conv").required_attrs
        assert "axis" in op_spec("Concat").required_attrs
