"""Tests for DOT export."""

from repro.ir.dot import graph_to_dot


class TestDotExport:
    def test_contains_every_op(self, conv_chain):
        dot = graph_to_dot(conv_chain)
        for node in conv_chain.nodes:
            assert node.op_type in dot

    def test_valid_braces(self, conv_chain):
        dot = graph_to_dot(conv_chain)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_edge_count(self, conv_chain):
        dot = graph_to_dot(conv_chain, show_io=False)
        n_edges = dot.count(" -> ")
        expected = sum(
            1
            for node in conv_chain.nodes
            for inp in node.inputs
            if conv_chain.producer_of(inp) is not None
        )
        assert n_edges == expected

    def test_attrs_shown(self, conv_chain):
        dot = graph_to_dot(conv_chain, show_attrs=True)
        assert "kernel_shape" in dot

    def test_attrs_hidden(self, conv_chain):
        dot = graph_to_dot(conv_chain, show_attrs=False)
        assert "kernel_shape" not in dot

    def test_io_nodes(self, conv_chain):
        dot = graph_to_dot(conv_chain, show_io=True)
        assert "ellipse" in dot
        assert conv_chain.input_names[0] in dot

    def test_title(self, conv_chain):
        dot = graph_to_dot(conv_chain, title="real or fake?")
        assert "real or fake?" in dot

    def test_sentinel_renders(self, sentinel_generator, subgraph_database):
        s = sentinel_generator.generate(subgraph_database[3], 1, seed=0)[0]
        dot = graph_to_dot(s)
        assert "digraph" in dot
