"""Tests for graph JSON serialization."""

import numpy as np
import pytest

from repro.ir.serialization import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.runtime import Executor, random_inputs

from ..conftest import make_conv_chain


class TestRoundTrip:
    def test_structure_roundtrip(self, conv_chain):
        d = graph_to_dict(conv_chain)
        back = graph_from_dict(d)
        assert back.name == conv_chain.name
        assert [n.op_type for n in back.nodes] == [n.op_type for n in conv_chain.nodes]
        assert back.input_names == conv_chain.input_names
        assert back.output_names == conv_chain.output_names

    def test_attrs_preserve_tuples(self, conv_chain):
        back = graph_from_dict(graph_to_dict(conv_chain))
        conv = next(n for n in back.nodes if n.op_type == "Conv")
        assert conv.attrs["kernel_shape"] == (3, 3)
        assert isinstance(conv.attrs["kernel_shape"], tuple)

    def test_weights_bitexact(self, conv_chain):
        back = graph_from_dict(graph_to_dict(conv_chain))
        for name, arr in conv_chain.initializers.items():
            np.testing.assert_array_equal(back.initializers[name], arr)
            assert back.initializers[name].dtype == arr.dtype

    def test_execution_identical(self):
        g = make_conv_chain()
        back = graph_from_dict(graph_to_dict(g))
        feeds = random_inputs(g, seed=3)
        out_a = Executor(g).run(feeds)
        out_b = Executor(back).run(feeds)
        for k in out_a:
            np.testing.assert_array_equal(out_a[k], out_b[k])

    def test_file_roundtrip(self, conv_chain, tmp_path):
        path = str(tmp_path / "g.json")
        save_graph(conv_chain, path)
        back = load_graph(path)
        assert len(back.nodes) == len(conv_chain.nodes)

    def test_version_check(self, conv_chain):
        d = graph_to_dict(conv_chain)
        d["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            graph_from_dict(d)
