"""Tests for structural validation."""

import numpy as np
import pytest

from repro.ir.dtypes import f32
from repro.ir.graph import Graph, Value
from repro.ir.node import Node
from repro.ir.validate import ValidationError, dead_value_names, validate_graph


def valid_graph():
    return Graph(
        "v",
        inputs=[Value("x", f32(1, 4))],
        outputs=[Value("y")],
        nodes=[Node("a", "Relu", ["x"], ["y"])],
    )


class TestValidate:
    def test_valid_graph_passes(self):
        validate_graph(valid_graph())

    def test_unknown_op(self):
        g = valid_graph()
        g.nodes[0].op_type = "Quux"
        with pytest.raises(ValidationError, match="unknown op"):
            validate_graph(g)

    def test_bad_arity(self):
        g = valid_graph()
        g.nodes[0].inputs.append("x")
        with pytest.raises(ValidationError, match="arity"):
            validate_graph(g)

    def test_missing_required_attr(self):
        g = valid_graph()
        g.add_initializer("w", np.zeros((4, 4, 3, 3), dtype=np.float32))
        g.add_node(Node("c", "Conv", ["x", "w"], ["c_out"]))
        with pytest.raises(ValidationError, match="missing attr"):
            validate_graph(g)

    def test_duplicate_node_names(self):
        g = valid_graph()
        g.nodes.append(Node("a", "Tanh", ["x"], ["z"]))
        g._invalidate()
        with pytest.raises(ValidationError, match="duplicate node name"):
            validate_graph(g)

    def test_value_produced_twice(self):
        g = valid_graph()
        g.nodes.append(Node("b", "Tanh", ["x"], ["y"]))
        g._invalidate()
        with pytest.raises(ValidationError, match="more than once"):
            validate_graph(g)

    def test_shadowed_input(self):
        g = valid_graph()
        g.nodes.append(Node("b", "Tanh", ["y"], ["x"]))
        g._invalidate()
        with pytest.raises(ValidationError, match="shadow"):
            validate_graph(g)

    def test_undefined_value(self):
        g = valid_graph()
        g.nodes[0].inputs[0] = "ghost"
        with pytest.raises(ValidationError, match="undefined"):
            validate_graph(g)

    def test_cycle(self):
        g = Graph(
            "c",
            inputs=[Value("x", f32(2))],
            outputs=[Value("a_out")],
            nodes=[
                Node("a", "Add", ["x", "b_out"], ["a_out"]),
                Node("b", "Relu", ["a_out"], ["b_out"]),
            ],
        )
        with pytest.raises(ValidationError):
            validate_graph(g)

    def test_unproduced_output(self):
        g = valid_graph()
        g.outputs.append(Value("nowhere"))
        with pytest.raises(ValidationError, match="never produced"):
            validate_graph(g)

    def test_wrong_output_count(self):
        g = valid_graph()
        g.nodes[0].outputs.append("extra")
        with pytest.raises(ValidationError, match="outputs"):
            validate_graph(g)


class TestDeadValues:
    def test_detects_dead(self):
        g = valid_graph()
        g.nodes.append(Node("b", "Tanh", ["x"], ["dead"]))
        g._invalidate()
        assert dead_value_names(g) == ["dead"]

    def test_clean_graph_no_dead(self):
        assert dead_value_names(valid_graph()) == []
