"""Tests for repro.ir.dtypes."""

import numpy as np
import pytest

from repro.ir.dtypes import DataType, TensorType, f32, from_numpy_dtype, i64, numpy_dtype


class TestDataType:
    def test_roundtrip_all_dtypes(self):
        for dt in DataType:
            assert from_numpy_dtype(numpy_dtype(dt)) is dt

    def test_unsupported_numpy_dtype_raises(self):
        with pytest.raises(ValueError, match="unsupported numpy dtype"):
            from_numpy_dtype(np.complex128)

    def test_float32_mapping(self):
        assert numpy_dtype(DataType.FLOAT32) == np.dtype(np.float32)


class TestTensorType:
    def test_basic_properties(self):
        t = TensorType(DataType.FLOAT32, (2, 3, 4))
        assert t.rank == 3
        assert t.num_elements == 24
        assert t.num_bytes == 96

    def test_scalar(self):
        t = TensorType(DataType.FLOAT32, ())
        assert t.rank == 0
        assert t.num_elements == 1
        assert t.num_bytes == 4

    def test_int64_bytes(self):
        assert TensorType(DataType.INT64, (5,)).num_bytes == 40

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError, match="negative dimension"):
            TensorType(DataType.FLOAT32, (2, -1))

    def test_shape_normalized_to_int_tuple(self):
        t = TensorType(DataType.FLOAT32, [np.int64(2), np.int64(3)])
        assert t.shape == (2, 3)
        assert all(isinstance(d, int) for d in t.shape)

    def test_with_shape(self):
        t = f32(2, 3).with_shape((6,))
        assert t.shape == (6,)
        assert t.dtype is DataType.FLOAT32

    def test_equality_and_hash(self):
        assert f32(1, 2) == f32(1, 2)
        assert hash(f32(1, 2)) == hash(f32(1, 2))
        assert f32(1, 2) != f32(2, 1)

    def test_str(self):
        assert str(f32(1, 3)) == "float32[1x3]"
        assert "scalar" in str(f32())

    def test_shorthands(self):
        assert f32(4).dtype is DataType.FLOAT32
        assert i64(4).dtype is DataType.INT64
