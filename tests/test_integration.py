"""End-to-end integration tests spanning every subsystem.

These exercise the complete paper workflow at reduced scale:
obfuscate → optimize → deobfuscate with real sentinels, plus the
adversary loop and the public API surface.
"""

import numpy as np
import pytest

from repro import Proteus, ProteusConfig, build_model
from repro.adversary import (
    evaluate_classifier,
    run_attack,
    train_classifier,
)
from repro.adversary.opgraph import LabeledDataset
from repro.optimizer import HidetLikeOptimizer, OrtLikeOptimizer
from repro.runtime import CostModel, graphs_equivalent, profile_graph


class TestPublicAPI:
    def test_top_level_imports(self):
        import repro
        assert repro.__version__
        for name in ["Proteus", "ProteusConfig", "build_model", "list_models",
                     "Graph", "GraphBuilder", "ObfuscatedBucket", "ReassemblyPlan"]:
            assert hasattr(repro, name)

    def test_quickstart_snippet(self, sentinel_generator):
        """The README quickstart must actually run."""
        model = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        proteus = Proteus(
            ProteusConfig(target_subgraph_size=8, k=2, seed=0),
            sentinel_source=sentinel_generator,
        )
        bucket, plan = proteus.obfuscate(model)
        optimized = proteus.optimize_bucket(bucket, OrtLikeOptimizer())
        recovered = proteus.deobfuscate(optimized, plan)
        assert graphs_equivalent(model, recovered, n_trials=1)


class TestPaperWorkflow:
    def test_performance_triangle(self, sentinel_generator):
        """unopt >= proteus >= best for both optimizers (Fig. 4 shape)."""
        g = build_model("mobilenet")
        cm = CostModel()
        for optimizer in (OrtLikeOptimizer(), HidetLikeOptimizer()):
            p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
            rec = p.run_pipeline(g, optimizer)
            best = optimizer.optimize(g)
            assert cm.graph_latency(best) <= cm.graph_latency(rec) <= cm.graph_latency(g)

    def test_sentinels_optimizable_by_both_optimizers(self, sentinel_generator, subgraph_database):
        """The optimizer party must be able to process sentinels blindly."""
        real = subgraph_database[5]
        sentinels = sentinel_generator.generate(real, k=4, seed=3)
        for s in sentinels:
            for opt in (OrtLikeOptimizer(), HidetLikeOptimizer()):
                out = opt.optimize(s)
                assert out.num_nodes <= s.num_nodes

    def test_obfuscation_hides_group_reality(self, sentinel_generator):
        """Within a bucket group, entry ids must not encode realness."""
        g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        p = Proteus(
            ProteusConfig(target_subgraph_size=8, k=2, seed=0),
            sentinel_source=sentinel_generator,
        )
        bucket, plan = p.obfuscate(g)
        real_positions = []
        for group in range(bucket.n_groups):
            entries = bucket.group_entries(group)
            ids = [e.entry_id for e in entries]
            real_id = plan.real_ids[group]
            real_positions.append(ids.index(real_id))
        assert len(set(real_positions)) > 1  # shuffled, not always first

    def test_adversary_loop_small(self, sentinel_generator, subgraph_database):
        """Train on real-vs-sentinel, attack held-out subgraphs: the search
        space must remain much larger than the random baseline's."""
        reals = subgraph_database
        train_reals = reals[: len(reals) // 2]
        attack_reals = reals[len(reals) // 2:][:4]
        train_fakes = []
        for i, r in enumerate(train_reals):
            train_fakes.extend(sentinel_generator.generate(r, k=1, seed=50 + i))
        ds = LabeledDataset.from_parts(train_reals, train_fakes)
        result = train_classifier(ds, epochs=25, seed=0)
        groups = [
            sentinel_generator.generate(r, k=4, seed=200 + i)
            for i, r in enumerate(attack_reals)
        ]
        rep = run_attack(result.model, attack_reals, groups, "heldout")
        assert rep.sensitivity == 1.0
        assert rep.candidates >= 1.0


class TestProfilingIntegration:
    def test_profile_every_zoo_model(self):
        from repro.models import list_models
        for name in list_models():
            rep = profile_graph(build_model(name))
            assert rep.total_latency > 0
            assert len(rep.per_op) > 0
