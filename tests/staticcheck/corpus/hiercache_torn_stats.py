"""Regression corpus: the pre-fix HierarchicalCache torn snapshot (PR 10).

Minimized from the cluster cache tier as it shipped before the metrics
registry conversion: the base cache counters lived under ``self._lock``
while the shared-tier counters grew a second ``self._tier_lock``, and
``tier_stats()`` read the shared counter **lock-free** between the two —
a snapshot could observe a lookup's memory-side effect without its
tier-side effect, so the per-tier hit rates did not sum to 1.  The
analyzer must flag the lock-free read with ``lock-discipline`` —
tests/staticcheck/test_corpus.py asserts it does.  (The shipped
``repro.cluster.hiercache.HierarchicalCache`` moves every tier event
onto one labeled counter instrument: one lock, one atomic snapshot.)
"""

import threading


class HierarchicalCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._tier_lock = threading.Lock()
        self._memory = {}
        self._memory_hits = 0
        self._misses = 0
        self._shared_hits = 0

    def get(self, key):
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory_hits += 1
                return payload
        payload = self._read_shared(key)
        if payload is None:
            with self._lock:
                self._misses += 1
            return None
        with self._tier_lock:
            self._shared_hits += 1
        with self._lock:
            self._memory[key] = payload
        return payload

    def tier_stats(self):
        with self._lock:
            memory_hits = self._memory_hits
            misses = self._misses
        # pre-fix: the shared counter is read outside self._tier_lock,
        # torn against the two writes a concurrent get() is making
        shared_hits = self._shared_hits
        lookups = memory_hits + shared_hits + misses
        return {
            "memory_hits": memory_hits,
            "shared_hits": shared_hits,
            "misses": misses,
            "memory_hit_rate": memory_hits / lookups if lookups else 0.0,
            "shared_hit_rate": shared_hits / lookups if lookups else 0.0,
        }

    def _read_shared(self, key):
        return None
