"""Regression corpus: the pre-fix MuxServer close()/start() race (PR 8).

Minimized lifecycle shape as it shipped before the fix: ``start()``
re-arms the shutdown flag and ``close()`` sets it, from different
threads, with no lock held — a ``close()`` racing a ``start()`` can be
overwritten and the accept loop keeps serving a "closed" server.  The
analyzer must flag the flag (and the listener handle) as an
unsynchronized multi-writer — tests/staticcheck/test_corpus.py asserts
it does.  (The shipped ``repro.mux.server.MuxServer`` serializes
lifecycle transitions.)
"""

import socket
import threading


class MuxServer:
    def __init__(self, host, port):
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._listener = None
        self._closed = False
        self._frames_total = 0

    def bind(self):
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind((self.host, self.port))
            listener.listen(16)
            self._listener = listener
        return self._listener.getsockname()

    def start(self):
        address = self.bind()
        self._closed = False  # pre-fix: unsynchronized re-arm
        thread = threading.Thread(target=self._serve_loop, daemon=True)
        thread.start()
        return address

    def _serve_loop(self):
        while not self._closed:
            with self._lock:
                self._frames_total += 1

    def close(self):
        self._closed = True  # pre-fix: races the start() re-arm
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
