"""Regression corpus: the pre-fix Coalescer window wait (PR 8).

Minimized from the mux batching layer as it shipped before the fix: the
window-wait guard re-checks the batch size and age but **not** the
shutdown flag, so a ``close()`` that lands between the guard and the
timed ``wait()`` spends its ``notify_all`` early and the worker sleeps
the full window out holding queued items.  The analyzer must flag the
timed wait with ``cond-wait-recheck`` — tests/staticcheck/test_corpus.py
asserts it does.  (The shipped ``repro.mux.batch.Coalescer`` adds
``not self._closed`` to the guard.)
"""

import threading


class Coalescer:
    def __init__(self, batch_max, batch_window_s):
        self.batch_max = batch_max
        self.batch_window_s = batch_window_s
        self._cond = threading.Condition()
        self._items = []
        self._closed = False

    def submit(self, item):
        with self._cond:
            self._items.append(item)
            self._cond.notify_all()

    def take_batch(self, age):
        with self._cond:
            while True:
                if self._closed and not self._items:
                    return None
                if self._items:
                    # pre-fix guard: never consults self._closed
                    if len(self._items) < self.batch_max and age < self.batch_window_s:
                        self._cond.wait(self.batch_window_s - age)
                        continue
                    batch, self._items = self._items, []
                    return batch
                self._cond.wait()

    def close(self):
        with self._cond:
            self._closed = True
            self._cond.notify_all()
