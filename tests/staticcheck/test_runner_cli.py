"""The analyzer runner and the ``repro check`` CLI gate."""

import json
import os
import textwrap

from repro.cli import main
from repro.staticcheck import (
    analyze_paths,
    available_rules,
    iter_python_files,
    load_report,
    run_check,
    validate_report,
)

RACY = """
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def bump(self):
        with self._lock:
            self._n += 1

    def peek(self):
        return self._n
"""

CLEAN = """
def double(x):
    return 2 * x
"""


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(tmp_path)


class TestRunner:
    def test_iter_python_files_skips_caches(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "pkg/a.py": CLEAN,
                "pkg/__pycache__/a.cpython-311.pyc.py": "x = 1",
                "pkg/data.txt": "not python",
            },
        )
        files = list(iter_python_files([root]))
        assert [os.path.basename(f) for f in files] == ["a.py"]

    def test_findings_and_counts(self, tmp_path):
        root = write_tree(tmp_path, {"mux/racy.py": RACY, "mux/fine.py": CLEAN})
        findings, scanned = analyze_paths([root], base=str(tmp_path))
        assert scanned == 2
        assert [f.rule for f in findings] == ["lock-discipline"]
        assert findings[0].path == "mux/racy.py"

    def test_unparseable_file_is_a_finding_not_a_crash(self, tmp_path):
        root = write_tree(tmp_path, {"mux/broken.py": "def broken(:\n"})
        findings, scanned = analyze_paths([root], base=str(tmp_path))
        assert scanned == 1
        assert [f.rule for f in findings] == ["parse-error"]

    def test_inline_suppression_is_applied(self, tmp_path):
        suppressed = RACY.replace(
            "        return self._n",
            "        # staticcheck: ignore[lock-discipline] — stats-only read\n"
            "        return self._n",
        )
        root = write_tree(tmp_path, {"mux/racy.py": suppressed})
        findings, _ = analyze_paths([root], base=str(tmp_path))
        assert [f.suppressed for f in findings] == [True]

    def test_run_check_applies_baseline(self, tmp_path):
        root = write_tree(tmp_path, {"mux/racy.py": RACY})
        report = run_check([root], base=str(tmp_path))
        validate_report(report)
        assert report["counts"]["new"] == 1
        fingerprint = report["findings"][0]["fingerprint"]
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {"schema_version": 1, "fingerprints": {fingerprint: {}}}
            ),
            encoding="utf-8",
        )
        report = run_check(
            [root], baseline_path=str(baseline), base=str(tmp_path)
        )
        assert report["counts"]["new"] == 0
        assert report["counts"]["baselined"] == 1

    def test_select_limits_the_rules(self, tmp_path):
        root = write_tree(tmp_path, {"mux/racy.py": RACY})
        findings, _ = analyze_paths(
            [root], select=["atomic-write"], base=str(tmp_path)
        )
        assert findings == []


class TestCheckCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"fine.py": CLEAN})
        assert main(["check", root]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["new"] == 0

    def test_new_finding_exits_one(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"mux/racy.py": RACY})
        assert main(["check", root]) == 1
        captured = capsys.readouterr()
        assert "lock-discipline" in captured.err
        assert json.loads(captured.out)["counts"]["new"] == 1

    def test_json_format_emits_the_full_document(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"mux/racy.py": RACY})
        assert main(["check", root, "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        validate_report(report)
        assert report["counts"]["total"] == 1

    def test_report_flag_writes_the_document(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"fine.py": CLEAN})
        out = str(tmp_path / "STATICCHECK.json")
        assert main(["check", root, "--report", out]) == 0
        assert load_report(out)["counts"]["files"] == 1

    def test_update_baseline_then_gate_passes(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"mux/racy.py": RACY})
        baseline = str(tmp_path / "baseline.json")
        assert (
            main(["check", root, "--baseline", baseline, "--update-baseline"])
            == 0
        )
        capsys.readouterr()
        assert main(["check", root, "--baseline", baseline]) == 0
        assert json.loads(capsys.readouterr().out)["counts"]["baselined"] == 1

    def test_unknown_rule_is_a_usage_error(self, tmp_path):
        root = write_tree(tmp_path, {"fine.py": CLEAN})
        assert main(["check", root, "--select", "no-such-rule"]) == 2

    def test_missing_root_is_a_usage_error(self, tmp_path):
        assert main(["check", str(tmp_path / "nope")]) == 2

    def test_update_baseline_requires_baseline_path(self, tmp_path):
        root = write_tree(tmp_path, {"fine.py": CLEAN})
        assert main(["check", root, "--update-baseline"]) == 2

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in available_rules():
            assert rule in out
