"""Shared helpers: run one analyzer rule against inline source snippets."""

import textwrap

from repro.staticcheck import CHECKS, FileContext


def ctx_from(source, relpath="src/repro/mux/snippet.py"):
    """A FileContext for dedented inline ``source`` at ``relpath``."""
    src = textwrap.dedent(source)
    return FileContext.from_source("/" + relpath, relpath, src)


def run_rule(rule, *ctxs):
    """Findings from one registered rule over the given contexts."""
    check = CHECKS.resolve(rule)()
    if check.scope == "project":
        return list(check.run_project(list(ctxs)))
    findings = []
    for ctx in ctxs:
        findings.extend(check.run(ctx))
    return findings
