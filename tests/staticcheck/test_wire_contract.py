"""Unit tests for the wire-codes and wire-totality rules (AST half).

The runtime half of the same contract — the *imported* wire module's
mappings being total — lives in tests/api/test_wire_contract.py.
"""

from .util import ctx_from, run_rule

WIRE_OK = """
ERR_ALPHA = "alpha_failed"
ERR_BETA = "beta_failed"

HTTP_STATUS = {
    ERR_ALPHA: 400,
    ERR_BETA: 500,
}

MUX_FRAME_EVENT = {
    ERR_ALPHA: "error",
    ERR_BETA: "retry",
}
"""


def wire_ctx(source=WIRE_OK):
    return ctx_from(source, relpath="src/repro/api/wire.py")


def transport_ctx(source, relpath="src/repro/mux/client_snippet.py"):
    return ctx_from(source, relpath)


class TestWireTotality:
    def test_total_mappings_are_clean(self):
        assert run_rule("wire-totality", wire_ctx()) == []

    def test_missing_mux_entry(self):
        source = WIRE_OK.replace('    ERR_BETA: "retry",\n', "")
        found = run_rule("wire-totality", wire_ctx(source))
        assert [f.key for f in found] == ["MUX_FRAME_EVENT:ERR_BETA"]
        assert "total" in found[0].message

    def test_missing_http_entry(self):
        source = WIRE_OK.replace("    ERR_ALPHA: 400,\n", "")
        found = run_rule("wire-totality", wire_ctx(source))
        assert [f.key for f in found] == ["HTTP_STATUS:ERR_ALPHA"]

    def test_missing_mapping_entirely(self):
        source = WIRE_OK.split("MUX_FRAME_EVENT")[0]
        found = run_rule("wire-totality", wire_ctx(source))
        assert [f.key for f in found] == ["MUX_FRAME_EVENT:missing"]

    def test_duplicate_code_values(self):
        source = WIRE_OK.replace('"beta_failed"', '"alpha_failed"')
        found = run_rule("wire-totality", wire_ctx(source))
        assert any(f.key == "duplicate:alpha_failed" for f in found)

    def test_http_status_out_of_range(self):
        source = WIRE_OK.replace("ERR_ALPHA: 400,", "ERR_ALPHA: 42,")
        found = run_rule("wire-totality", wire_ctx(source))
        assert [f.key for f in found] == ["HTTP_STATUS:value:ERR_ALPHA"]

    def test_unknown_frame_event(self):
        source = WIRE_OK.replace('ERR_ALPHA: "error",', 'ERR_ALPHA: "explode",')
        found = run_rule("wire-totality", wire_ctx(source))
        assert [f.key for f in found] == ["MUX_FRAME_EVENT:value:ERR_ALPHA"]

    def test_foreign_mapping_key(self):
        source = WIRE_OK.replace(
            "HTTP_STATUS = {", "HTTP_STATUS = {\n    ERR_GAMMA: 400,"
        )
        found = run_rule("wire-totality", wire_ctx(source))
        assert any(f.key == "HTTP_STATUS:foreign:ERR_GAMMA" for f in found)

    def test_no_wire_module_no_findings(self):
        assert run_rule("wire-totality", transport_ctx("x = 1")) == []


class TestWireCodes:
    def test_invented_literal_code(self):
        found = run_rule(
            "wire-codes",
            wire_ctx(),
            transport_ctx(
                'def f():\n    raise EndpointError("made_up", "boom")\n'
            ),
        )
        assert [f.key for f in found] == ["EndpointError:made_up"]
        assert "closed set" in found[0].message

    def test_literal_spelling_of_a_known_code(self):
        found = run_rule(
            "wire-codes",
            wire_ctx(),
            transport_ctx(
                'def f():\n    raise EndpointError("alpha_failed", "boom")\n'
            ),
        )
        assert [f.key for f in found] == ["EndpointError:literal:alpha_failed"]
        assert "wire.ERR_ALPHA" in found[0].message

    def test_constant_construction_is_clean(self):
        found = run_rule(
            "wire-codes",
            wire_ctx(),
            transport_ctx(
                "def f():\n    raise EndpointError(ERR_ALPHA, 'boom')\n"
            ),
        )
        assert found == []

    def test_undefined_err_constant(self):
        found = run_rule(
            "wire-codes",
            wire_ctx(),
            transport_ctx(
                "def f():\n    raise EndpointError(ERR_GAMMA, 'boom')\n"
            ),
        )
        assert [f.key for f in found] == ["EndpointError:ERR_GAMMA"]

    def test_comparison_against_unknown_literal(self):
        found = run_rule(
            "wire-codes",
            wire_ctx(),
            transport_ctx(
                'def f(exc):\n    return exc.code == "gamma_failed"\n'
            ),
        )
        assert [f.key for f in found] == ["compare:gamma_failed"]
        assert "no transport can send" in found[0].message

    def test_comparison_against_known_literal_is_clean(self):
        found = run_rule(
            "wire-codes",
            wire_ctx(),
            transport_ctx(
                'def f(exc):\n    return exc.code in ("alpha_failed", "beta_failed")\n'
            ),
        )
        assert found == []

    def test_minted_code_outside_wire(self):
        found = run_rule(
            "wire-codes",
            wire_ctx(),
            transport_ctx('ERR_LOCAL = "local_failure"\n'),
        )
        assert [f.key for f in found] == ["minted:ERR_LOCAL"]
        assert "closed" in found[0].message

    def test_wire_module_may_define_codes(self):
        assert run_rule("wire-codes", wire_ctx()) == []

    def test_non_transport_packages_are_out_of_scope(self):
        found = run_rule(
            "wire-codes",
            wire_ctx(),
            ctx_from(
                'def f():\n    raise EndpointError("made_up", "boom")\n',
                relpath="src/repro/ir/snippet.py",
            ),
        )
        assert found == []
