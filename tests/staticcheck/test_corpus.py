"""The regression corpus: minimized pre-fix shapes of real shipped races.

Each corpus file under ``corpus/`` is a deliberately broken snippet
distilled from a bug this repo actually shipped and later fixed; the
analyzer must keep flagging them.  The final test closes the loop the
other way: the *current* source tree analyzes clean, so every new
finding anywhere is a regression of either the code or the analyzer.
"""

import os

from repro.staticcheck import analyze_paths, run_check

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def corpus_findings(filename):
    findings, scanned = analyze_paths(
        [os.path.join(CORPUS_DIR, filename)], base=CORPUS_DIR
    )
    assert scanned == 1
    return findings


class TestCoalescerCloseRace:
    """The PR 8 Coalescer.close() lost-wakeup, pre-fix."""

    def test_timed_window_wait_is_flagged(self):
        found = corpus_findings("coalescer_close_race.py")
        keys = {f.key for f in found if f.rule == "cond-wait-recheck"}
        assert "Coalescer._cond:timed-wait:take_batch" in keys

    def test_the_untimed_wait_is_not_the_problem(self):
        found = corpus_findings("coalescer_close_race.py")
        timed = [f for f in found if f.rule == "cond-wait-recheck"]
        assert len(timed) == 1  # exactly the window wait, nothing else


class TestMuxServerLifecycleRace:
    """The PR 8 MuxServer close()/start() flag race, pre-fix."""

    def test_shutdown_flag_multi_writer_is_flagged(self):
        found = corpus_findings("muxserver_lifecycle_race.py")
        keys = {f.key for f in found if f.rule == "lock-discipline"}
        assert "MuxServer._closed:multi-writer" in keys

    def test_listener_handle_multi_writer_is_flagged(self):
        found = corpus_findings("muxserver_lifecycle_race.py")
        keys = {f.key for f in found if f.rule == "lock-discipline"}
        assert "MuxServer._listener:multi-writer" in keys


class TestHierCacheTornStats:
    """The PR 10 HierarchicalCache torn tier_stats() snapshot, pre-fix."""

    def test_lock_free_shared_counter_read_is_flagged(self):
        found = corpus_findings("hiercache_torn_stats.py")
        keys = {f.key for f in found if f.rule == "lock-discipline"}
        assert "HierarchicalCache._shared_hits:tier_stats" in keys

    def test_the_locked_counters_are_not_the_problem(self):
        found = corpus_findings("hiercache_torn_stats.py")
        attrs = {
            f.key.split(":")[0]
            for f in found
            if f.rule == "lock-discipline"
        }
        assert "HierarchicalCache._memory_hits" not in attrs
        assert "HierarchicalCache._misses" not in attrs


class TestTreeIsClean:
    def test_src_repro_has_no_new_findings(self):
        report = run_check(
            [os.path.join(REPO_ROOT, "src", "repro")], base=REPO_ROOT
        )
        new = [
            f["rule"] + ":" + f["path"] + ":" + str(f["line"])
            for f in report["findings"]
            if not f["suppressed"] and not f["baselined"]
        ]
        assert new == [], (
            "the source tree must analyze clean; fix the finding or mark a "
            "deliberate pattern with '# staticcheck: ignore[rule]' plus a "
            "constraint comment"
        )
        # the two deliberate lock-free patterns stay visible as
        # suppressions, not silently absent
        assert report["counts"]["suppressed"] >= 2
