"""span-closed: opened spans must be with-managed or finally-closed."""

from .util import ctx_from, run_rule


def keys(findings):
    return {f.key for f in findings}


class TestCleanShapes:
    def test_with_span_is_clean(self):
        ctx = ctx_from(
            """
            from repro.obs.trace import get_tracer

            def handle(job):
                tracer = get_tracer()
                with tracer.span("optimize", "optimize"):
                    return run(job)
            """
        )
        assert run_rule("span-closed", ctx) == []

    def test_with_start_trace_chain_is_clean(self):
        ctx = ctx_from(
            """
            from repro.obs.trace import get_tracer

            def replay(request):
                with get_tracer().start_trace("request", "client") as root:
                    root.tag("model", request.model)
            """
        )
        assert run_rule("span-closed", ctx) == []

    def test_bound_then_finally_exit_is_clean(self):
        ctx = ctx_from(
            """
            def submit(self, manifest):
                span = self._tracer.span("rpc", "transport")
                span.__enter__()
                try:
                    return self._send(manifest)
                finally:
                    span.__exit__(None, None, None)
            """
        )
        assert run_rule("span-closed", ctx) == []

    def test_bound_then_finally_close_is_clean(self):
        ctx = ctx_from(
            """
            def submit(self, manifest):
                span = self._tracer.span("rpc", "transport")
                try:
                    return self._send(manifest)
                finally:
                    span.close()
            """
        )
        assert run_rule("span-closed", ctx) == []

    def test_returned_span_is_ownership_transfer(self):
        ctx = ctx_from(
            """
            def open_rpc_span(tracer):
                return tracer.span("rpc", "transport")
            """
        )
        assert run_rule("span-closed", ctx) == []

    def test_non_tracer_receiver_is_ignored(self):
        ctx = ctx_from(
            """
            def layout(self):
                self.column.span("two-wide", "header")
                cell = grid.span(2, 3)
                return cell
            """
        )
        assert run_rule("span-closed", ctx) == []


class TestFlaggedShapes:
    def test_discarded_span_expression_is_flagged(self):
        ctx = ctx_from(
            """
            def handle(tracer, job):
                tracer.span("optimize", "optimize")
                return run(job)
            """
        )
        found = run_rule("span-closed", ctx)
        assert keys(found) == {"handle:span:0"}
        assert "never entered" in found[0].message

    def test_bound_but_never_closed_is_flagged(self):
        ctx = ctx_from(
            """
            def handle(self, job):
                span = self._tracer.start_trace("request", "client")
                span.tag("model", job.model)
                return run(job)
            """
        )
        found = run_rule("span-closed", ctx)
        assert keys(found) == {"handle:start_trace:0"}
        assert "'span'" in found[0].message

    def test_name_bound_from_get_tracer_is_recognized(self):
        ctx = ctx_from(
            """
            from repro.obs.trace import get_tracer

            def handle(job):
                t = get_tracer()
                t.span("optimize", "optimize")
            """
        )
        found = run_rule("span-closed", ctx)
        assert keys(found) == {"handle:span:0"}

    def test_inline_argument_span_is_flagged(self):
        ctx = ctx_from(
            """
            def handle(tracer, job):
                schedule(tracer.span("queue_wait", "queue"), job)
            """
        )
        found = run_rule("span-closed", ctx)
        assert keys(found) == {"handle:span:0"}

    def test_closure_spans_check_their_own_scope(self):
        # the closure's span is not saved by the outer finally: the
        # closure runs on another thread, after the outer frame is gone
        ctx = ctx_from(
            """
            def handle(tracer, job):
                outer = tracer.span("outer", "queue")
                def worker():
                    tracer.span("inner", "optimize")
                try:
                    spawn(worker)
                finally:
                    outer.__exit__(None, None, None)
            """
        )
        found = run_rule("span-closed", ctx)
        assert keys(found) == {"worker:span:0"}


class TestSuppression:
    def test_module_scope_is_checked_too(self):
        ctx = ctx_from(
            """
            from repro.obs.trace import get_tracer

            get_tracer().span("import-time", "client")
            """
        )
        found = run_rule("span-closed", ctx)
        assert keys(found) == {"<module>:span:0"}
