"""Unit tests for the no-builtin-hash, no-wallclock and atomic-write rules."""

from .util import ctx_from, run_rule


class TestNoBuiltinHash:
    def test_hash_call_is_flagged_anywhere(self):
        found = run_rule(
            "no-builtin-hash",
            ctx_from(
                "def place(key):\n    return hash(key) % 8\n",
                relpath="src/repro/cluster/snippet.py",
            ),
        )
        assert [f.key for f in found] == ["hash:place"]
        assert "PYTHONHASHSEED" in found[0].message

    def test_dunder_hash_implementations_are_exempt(self):
        found = run_rule(
            "no-builtin-hash",
            ctx_from(
                """
                class Node:
                    def __hash__(self):
                        return hash((self.op, self.name))
                """,
                relpath="src/repro/ir/snippet.py",
            ),
        )
        assert found == []

    def test_module_level_hash_is_flagged(self):
        found = run_rule(
            "no-builtin-hash",
            ctx_from("SALT = hash('x')\n", relpath="src/repro/core/snippet.py"),
        )
        assert [f.key for f in found] == ["hash:<module>"]


class TestNoWallclock:
    def test_wallclock_in_deterministic_path(self):
        found = run_rule(
            "no-wallclock",
            ctx_from(
                "import time\n\ndef stamp():\n    return time.time()\n",
                relpath="src/repro/serving/canonical.py",
            ),
        )
        assert [f.key for f in found] == ["wallclock:time.time:stamp"]
        assert "monotonic" in found[0].message

    def test_unseeded_global_random_in_deterministic_path(self):
        found = run_rule(
            "no-wallclock",
            ctx_from(
                "import random\n\ndef jitter():\n    return random.random()\n",
                relpath="src/repro/loadgen/workload.py",
            ),
        )
        assert [f.key for f in found] == ["unseeded:random.random:jitter"]

    def test_seeded_random_instance_is_fine(self):
        found = run_rule(
            "no-wallclock",
            ctx_from(
                "import random\n\ndef gen(seed):\n    return random.Random(seed)\n",
                relpath="src/repro/loadgen/workload.py",
            ),
        )
        assert found == []

    def test_wallclock_outside_scoped_paths_is_fine(self):
        found = run_rule(
            "no-wallclock",
            ctx_from(
                "import time\n\ndef stamp():\n    return time.time()\n",
                relpath="src/repro/serving/server.py",
            ),
        )
        assert found == []


class TestAtomicWrite:
    def test_plain_write_in_cache_module_is_flagged(self):
        found = run_rule(
            "atomic-write",
            ctx_from(
                """
                def store(path, blob):
                    with open(path, "w") as fh:
                        fh.write(blob)
                """,
                relpath="src/repro/serving/cache.py",
            ),
        )
        assert [f.key for f in found] == ["open:store:w"]
        assert "os.replace" in found[0].message

    def test_replace_in_same_function_blesses_the_write(self):
        found = run_rule(
            "atomic-write",
            ctx_from(
                """
                import os

                def store(path, blob):
                    tmp = path + ".tmp"
                    with open(tmp, "w") as fh:
                        fh.write(blob)
                    os.replace(tmp, path)
                """,
                relpath="src/repro/serving/cache.py",
            ),
        )
        assert found == []

    def test_atomic_helper_call_blesses_the_write(self):
        found = run_rule(
            "atomic-write",
            ctx_from(
                """
                def store(path, payload, fd):
                    import os
                    with os.fdopen(fd, "w") as fh:
                        fh.write("x")
                    atomic_write_json(path, payload)
                """,
                relpath="src/repro/loadgen/journal.py",
            ),
        )
        assert found == []

    def test_replace_elsewhere_does_not_bless_this_function(self):
        found = run_rule(
            "atomic-write",
            ctx_from(
                """
                import os

                def careful(path, blob):
                    tmp = path + ".tmp"
                    with open(tmp, "w") as fh:
                        fh.write(blob)
                    os.replace(tmp, path)

                def sloppy(path, blob):
                    with open(path, "w") as fh:
                        fh.write(blob)
                """,
                relpath="src/repro/cluster/hiercache.py",
            ),
        )
        assert [f.key for f in found] == ["open:sloppy:w"]

    def test_reads_are_fine(self):
        found = run_rule(
            "atomic-write",
            ctx_from(
                """
                def load(path):
                    with open(path, "r") as fh:
                        return fh.read()
                """,
                relpath="src/repro/serving/spool.py",
            ),
        )
        assert found == []

    def test_writes_outside_scoped_modules_are_fine(self):
        found = run_rule(
            "atomic-write",
            ctx_from(
                """
                def dump(path, blob):
                    with open(path, "w") as fh:
                        fh.write(blob)
                """,
                relpath="src/repro/ir/serialization.py",
            ),
        )
        assert found == []
