"""Unit tests for the lock-discipline, cond-wait-recheck and lock-order rules."""

from .util import ctx_from, run_rule


def findings_for(rule, source, relpath="src/repro/mux/snippet.py"):
    return run_rule(rule, ctx_from(source, relpath))


class TestLockDisciplineMixedAccess:
    def test_read_outside_guard_is_flagged(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def peek(self):
                    return self._n
            """,
        )
        assert [f.key for f in found] == ["Counter._n:peek"]
        assert "read without it" in found[0].message

    def test_write_outside_guard_is_flagged(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def reset(self):
                    self._n = 0
            """,
        )
        assert [f.key for f in found] == ["Counter._n:reset"]
        assert "written without it" in found[0].message

    def test_all_access_under_lock_is_clean(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def peek(self):
                    with self._lock:
                        return self._n
            """,
        )
        assert found == []

    def test_locked_suffix_methods_satisfy_the_guard(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):
                    self._n += 1
            """,
        )
        assert found == []

    def test_init_writes_never_establish_or_violate_guards(self):
        # __init__ is single-threaded; its bare writes are not findings
        # even when another method guards the same attribute.
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1
            """,
        )
        assert found == []

    def test_mutator_call_counts_as_write(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def drain(self):
                    self._items.clear()
            """,
        )
        assert [f.key for f in found] == ["Box._items:drain"]
        assert "written without it" in found[0].message

    def test_internally_synchronized_attrs_are_exempt(self):
        found = findings_for(
            "lock-discipline",
            """
            import queue
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
                    self._stop = threading.Event()
                    self._closed = False

                def put(self, item):
                    with self._lock:
                        if self._closed:
                            raise RuntimeError("closed")
                        self._queue.put(item)

                def loop(self):
                    while not self._stop.wait(0.1):
                        self._queue.get()
            """,
        )
        assert found == []

    def test_nested_function_bodies_are_skipped(self):
        # the closure runs on another thread later: its lexical lock
        # context is meaningless either way, so it yields no findings.
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Spawner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def launch(self):
                    def worker():
                        self._n += 1
                    return worker
            """,
        )
        assert found == []

    def test_inherited_lock_via_bare_with_is_recognized(self):
        found = findings_for(
            "lock-discipline",
            """
            class Child(Base):
                def bump(self):
                    with self._lock:
                        self._n += 1

                def peek(self):
                    return self._n
            """,
        )
        assert [f.key for f in found] == ["Child._n:peek"]


class TestLockDisciplineMultiWriter:
    def test_two_unguarded_writers_in_lock_owning_class(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._handle = None

                def open(self):
                    self._handle = object()

                def close(self):
                    self._handle = None
            """,
        )
        assert [f.key for f in found] == ["Server._handle:multi-writer"]
        assert "close, open" in found[0].message

    def test_single_writer_is_clean(self):
        found = findings_for(
            "lock-discipline",
            """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._handle = None

                def open(self):
                    self._handle = object()
            """,
        )
        assert found == []

    def test_class_without_locks_is_out_of_scope(self):
        found = findings_for(
            "lock-discipline",
            """
            class Plain:
                def open(self):
                    self._handle = object()

                def close(self):
                    self._handle = None
            """,
        )
        assert found == []


class TestCondWaitRecheck:
    def test_timed_wait_without_flag_guard_is_flagged(self):
        found = findings_for(
            "cond-wait-recheck",
            """
            import threading

            class Pump:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._items = []
                    self._closed = False

                def loop(self):
                    with self._cond:
                        while True:
                            if self._items:
                                self._cond.wait(0.5)

                def close(self):
                    with self._cond:
                        self._closed = True
                        self._cond.notify_all()
            """,
        )
        assert [f.key for f in found] == ["Pump._cond:timed-wait:loop"]
        assert "lost-wakeup" in found[0].message

    def test_guard_rechecking_the_flag_is_clean(self):
        found = findings_for(
            "cond-wait-recheck",
            """
            import threading

            class Pump:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._items = []
                    self._closed = False

                def loop(self):
                    with self._cond:
                        while not self._closed and self._items:
                            self._cond.wait(0.5)

                def close(self):
                    with self._cond:
                        self._closed = True
                        self._cond.notify_all()
            """,
        )
        assert found == []

    def test_untimed_wait_is_out_of_scope(self):
        found = findings_for(
            "cond-wait-recheck",
            """
            import threading

            class Pump:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._closed = False

                def loop(self):
                    with self._cond:
                        while True:
                            self._cond.wait()

                def close(self):
                    with self._cond:
                        self._closed = True
                        self._cond.notify_all()
            """,
        )
        assert found == []

    def test_class_without_shutdown_flag_is_out_of_scope(self):
        found = findings_for(
            "cond-wait-recheck",
            """
            import threading

            class Pump:
                def __init__(self):
                    self._cond = threading.Condition()

                def loop(self):
                    with self._cond:
                        while True:
                            self._cond.wait(0.5)
            """,
        )
        assert found == []


class TestLockOrder:
    def test_opposite_nested_acquisitions_form_a_cycle(self):
        found = findings_for(
            "lock-order",
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        assert len(found) == 1
        assert found[0].key == "Pair._a|Pair._b"
        assert "inversion" in found[0].message

    def test_consistent_order_is_clean(self):
        found = findings_for(
            "lock-order",
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
            """,
        )
        assert found == []

    def test_cross_class_cycle_through_attribute_calls(self):
        found = findings_for(
            "lock-order",
            """
            import threading

            class Alpha:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._peer = Beta()

                def ping(self):
                    with self._lock:
                        self._peer.pong_inner()

                def ping_inner(self):
                    with self._lock:
                        pass

            class Beta:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._peer = Alpha()

                def pong(self):
                    with self._lock:
                        self._peer.ping_inner()

                def pong_inner(self):
                    with self._lock:
                        pass
            """,
        )
        # Alpha holds its lock while calling into Beta's lock-taking
        # method and vice versa: Alpha._lock <-> Beta._lock is a cycle.
        assert len(found) == 1
        assert found[0].key == "Alpha._lock|Beta._lock"
