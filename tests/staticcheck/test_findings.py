"""Findings, suppressions, baselines and the STATICCHECK.json schema."""

import dataclasses

import pytest

from repro.staticcheck import (
    SCHEMA_VERSION,
    Finding,
    Suppressions,
    baseline_fingerprints,
    build_report,
    load_baseline,
    load_report,
    save_baseline,
    save_report,
    validate_report,
)


def make_finding(**overrides):
    base = dict(
        rule="lock-discipline",
        path="src/repro/mux/server.py",
        line=42,
        col=8,
        message="field accessed outside lock",
        key="MuxServer._closed:stats",
    )
    base.update(overrides)
    return Finding(**base)


class TestFingerprint:
    def test_stable_across_line_drift(self):
        a = make_finding(line=42)
        b = make_finding(line=400, col=0)
        assert a.fingerprint == b.fingerprint

    def test_distinguishes_rule_path_and_key(self):
        a = make_finding()
        assert a.fingerprint != make_finding(rule="atomic-write").fingerprint
        assert a.fingerprint != make_finding(path="other.py").fingerprint
        assert a.fingerprint != make_finding(key="Other._x:read").fingerprint

    def test_roundtrips_through_dict(self):
        a = make_finding(suppressed=True)
        b = Finding.from_dict(a.to_dict())
        assert b == a
        assert b.suppressed and not b.baselined
        assert a.to_dict()["fingerprint"] == a.fingerprint


class TestSuppressions:
    def test_same_line(self):
        s = Suppressions("x = 1  # staticcheck: ignore[lock-discipline]\n")
        assert s.covers(1, "lock-discipline")
        assert not s.covers(1, "atomic-write")
        assert not s.covers(2, "lock-discipline")

    def test_standalone_comment_covers_next_code_line(self):
        s = Suppressions(
            "# staticcheck: ignore[atomic-write] — spool is single-writer\n"
            "fh = open(path, 'w')\n"
        )
        assert s.covers(2, "atomic-write")

    def test_comment_block_carries_the_tag_to_the_code_below(self):
        s = Suppressions(
            "# staticcheck: ignore[lock-discipline] — lifecycle calls are\n"
            "# never raced; the accept loop tolerates a concurrent close\n"
            "# (the accept call fails and the loop exits).\n"
            "self._listener = listener\n"
        )
        assert s.covers(4, "lock-discipline")

    def test_multiple_rules_and_wildcard(self):
        s = Suppressions(
            "a = 1  # staticcheck: ignore[rule-a, rule-b]\n"
            "b = 2  # staticcheck: ignore[*]\n"
        )
        assert s.covers(1, "rule-a") and s.covers(1, "rule-b")
        assert not s.covers(1, "rule-c")
        assert s.covers(2, "anything-at-all")

    def test_plain_comments_do_not_suppress(self):
        s = Suppressions("# just a note about locks\nx = 1\n")
        assert not s.covers(1, "lock-discipline")
        assert not s.covers(2, "lock-discipline")


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = [make_finding(), make_finding(rule="atomic-write")]
        save_baseline(baseline_fingerprints(findings), path)
        assert load_baseline(path) == {f.fingerprint for f in findings}

    def test_suppressed_findings_are_not_grandfathered(self):
        doc = baseline_fingerprints([make_finding(suppressed=True)])
        assert doc["fingerprints"] == {}

    def test_rejects_wrong_schema_version(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline(
            {"schema_version": SCHEMA_VERSION, "fingerprints": {}}, path
        )
        assert load_baseline(path) == set()
        save_baseline({"schema_version": 99, "fingerprints": {}}, path)
        with pytest.raises(ValueError, match="schema_version"):
            load_baseline(path)


class TestReport:
    def report(self):
        findings = [
            make_finding(),
            dataclasses.replace(make_finding(key="a"), suppressed=True),
            dataclasses.replace(make_finding(key="b"), baselined=True),
        ]
        return build_report(
            findings,
            roots=["src/repro"],
            files_scanned=10,
            selected_rules=["lock-discipline"],
            rule_descriptions={"lock-discipline": "locks"},
        )

    def test_counts(self):
        counts = self.report()["counts"]
        assert counts == {
            "files": 10,
            "total": 3,
            "suppressed": 1,
            "baselined": 1,
            "new": 1,
        }

    def test_schema_roundtrip(self, tmp_path):
        path = str(tmp_path / "STATICCHECK.json")
        report = self.report()
        validate_report(report)
        save_report(report, path)
        assert load_report(path)["counts"] == report["counts"]

    def test_validate_rejects_bad_documents(self):
        with pytest.raises(ValueError, match="schema_version"):
            validate_report({"schema_version": 99})
        report = self.report()
        del report["counts"]
        with pytest.raises(ValueError, match="counts"):
            validate_report(report)
