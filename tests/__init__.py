"""Test suite package (enables package-relative imports of conftest helpers)."""
