"""Unit tests for repro.control.signals: EWMAs, snapshots, aggregation."""

import json
import threading

import pytest

from repro.control import Ewma, ServiceSignals, SignalTracker, aggregate_signals


class TestEwma:
    def test_none_until_first_observation(self):
        ewma = Ewma()
        assert ewma.value is None
        assert ewma.update(2.0) == 2.0
        assert ewma.value == 2.0

    def test_tracks_toward_new_observations(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(0.0)
        ewma.update(1.0)
        assert ewma.value == pytest.approx(0.5)
        ewma.update(1.0)
        assert ewma.value == pytest.approx(0.75)

    def test_alpha_one_is_last_value(self):
        ewma = Ewma(alpha=1.0)
        ewma.update(3.0)
        ewma.update(7.0)
        assert ewma.value == 7.0

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            Ewma(alpha=alpha)


class TestServiceSignals:
    def test_round_trips_through_json(self):
        signals = ServiceSignals(
            queue_depth=3,
            workers=2,
            ewma_entry_latency_s=0.25,
            estimated_wait_s=0.375,
            slo_attainment=0.9,
            observed_entries=17,
        )
        wire = json.loads(json.dumps(signals.to_dict()))
        assert ServiceSignals.from_dict(wire) == signals

    def test_round_trips_cold_nones(self):
        signals = ServiceSignals(
            queue_depth=0, workers=1, ewma_entry_latency_s=None, estimated_wait_s=0.0
        )
        back = ServiceSignals.from_dict(signals.to_dict())
        assert back.ewma_entry_latency_s is None
        assert back.slo_attainment is None

    def test_from_metrics_reads_the_signals_block(self):
        metrics = {"counters": {}, "signals": {"queue_depth": 5, "workers": 2}}
        signals = ServiceSignals.from_metrics(metrics)
        assert signals is not None
        assert signals.queue_depth == 5
        assert signals.workers == 2

    @pytest.mark.parametrize(
        "metrics", [None, [], "nope", {}, {"signals": None}, {"signals": [1]}]
    )
    def test_from_metrics_tolerates_junk(self, metrics):
        assert ServiceSignals.from_metrics(metrics) is None


class TestSignalTracker:
    def test_estimated_wait_is_depth_times_ewma_over_workers(self):
        tracker = SignalTracker(alpha=1.0)
        tracker.observe_entry(0.2)
        snapshot = tracker.snapshot(queue_depth=6, workers=2)
        assert snapshot.estimated_wait_s == pytest.approx(6 * 0.2 / 2)
        assert snapshot.observed_entries == 1

    def test_cold_tracker_reports_zero_wait(self):
        snapshot = SignalTracker().snapshot(queue_depth=10, workers=1)
        assert snapshot.ewma_entry_latency_s is None
        assert snapshot.estimated_wait_s == 0.0

    def test_attainment_requires_a_budget(self):
        without = SignalTracker()
        without.observe_entry(0.1)
        assert without.snapshot(0, 1).slo_attainment is None

        with_budget = SignalTracker(alpha=1.0, slo_budget_s=0.5)
        with_budget.observe_entry(0.1)
        assert with_budget.snapshot(0, 1).slo_attainment == 1.0
        with_budget.observe_entry(2.0)
        assert with_budget.snapshot(0, 1).slo_attainment == 0.0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="slo_budget_s"):
            SignalTracker(slo_budget_s=0.0)

    def test_cache_hits_do_not_dilute_the_expected_cost(self):
        # regression: one EWMA over hits *and* misses let a warm stretch
        # drag the average to ~0, so admission read a queue of cold work
        # as free and stopped shedding mid-overload.  With a 50% hit
        # rate the expected cost must stay ~half the miss cost, however
        # many cheap hits arrive.
        tracker = SignalTracker(alpha=0.1)
        for _ in range(50):
            tracker.observe_entry(1.0, hit=False)
            tracker.observe_entry(0.001, hit=True)
        ewma = tracker.snapshot(queue_depth=10, workers=1).ewma_entry_latency_s
        assert ewma == pytest.approx(0.5, rel=0.2)

    def test_warm_only_history_prices_by_hits(self):
        tracker = SignalTracker(alpha=1.0)
        tracker.observe_entry(0.002, hit=True)
        snapshot = tracker.snapshot(queue_depth=100, workers=1)
        assert snapshot.ewma_entry_latency_s == pytest.approx(0.002)

    def test_prior_seeds_the_miss_cost(self):
        tracker = SignalTracker(alpha=1.0, prior_latency_s=0.25)
        snapshot = tracker.snapshot(queue_depth=4, workers=1)
        assert snapshot.ewma_entry_latency_s == pytest.approx(0.25)
        assert snapshot.estimated_wait_s == pytest.approx(1.0)
        assert snapshot.observed_entries == 0  # a prior is not a measurement

    def test_workers_clamped_to_one(self):
        tracker = SignalTracker(alpha=1.0)
        tracker.observe_entry(1.0)
        assert tracker.snapshot(queue_depth=4, workers=0).workers == 1

    def test_concurrent_observers_count_every_entry(self):
        tracker = SignalTracker()
        threads = [
            threading.Thread(
                target=lambda: [tracker.observe_entry(0.01) for _ in range(100)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracker.snapshot(0, 1).observed_entries == 800


class TestAggregateSignals:
    def _part(self, depth, wait, ewma=0.1, observed=10, attainment=None):
        return ServiceSignals(
            queue_depth=depth,
            workers=1,
            ewma_entry_latency_s=ewma,
            estimated_wait_s=wait,
            slo_attainment=attainment,
            observed_entries=observed,
        )

    def test_depth_and_workers_add_waits_average(self):
        agg = aggregate_signals([self._part(2, 0.4), self._part(4, 0.8)])
        assert agg.queue_depth == 6
        assert agg.workers == 2
        assert agg.estimated_wait_s == pytest.approx(0.6)
        assert agg.observed_entries == 20

    def test_ewma_is_observation_weighted(self):
        agg = aggregate_signals(
            [
                self._part(0, 0.0, ewma=1.0, observed=1),
                self._part(0, 0.0, ewma=0.0, observed=3),
            ]
        )
        assert agg.ewma_entry_latency_s == pytest.approx(0.25)

    def test_cold_members_do_not_poison_the_mean(self):
        agg = aggregate_signals(
            [
                self._part(0, 0.0, ewma=None, observed=0),
                self._part(0, 0.0, ewma=0.5, observed=4),
            ]
        )
        assert agg.ewma_entry_latency_s == pytest.approx(0.5)

    def test_empty_input_yields_idle_fleet(self):
        agg = aggregate_signals([])
        assert agg.queue_depth == 0
        assert agg.workers == 1
        assert agg.ewma_entry_latency_s is None
        assert agg.estimated_wait_s == 0.0

    def test_none_members_are_skipped(self):
        agg = aggregate_signals([None, self._part(3, 0.3)])
        assert agg.queue_depth == 3
