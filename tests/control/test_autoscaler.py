"""Unit tests for repro.control.autoscaler against a fake fleet + clock."""

import pytest

from repro.control import AutoscalerPolicy, FleetAutoscaler, ServiceSignals


class FakeFleet:
    """Duck-typed stand-in for ServingFleet: counts, never forks."""

    def __init__(self, workers=1):
        self.worker_count = workers
        self.dead = 0  # workers reap() will report as crashed
        self.log = []

    def add_worker(self):
        self.worker_count += 1
        self.log.append("add")
        return f"http://127.0.0.1:{9000 + self.worker_count}"

    def stop_worker(self):
        if self.worker_count <= 1:
            return None
        self.worker_count -= 1
        self.log.append("stop")
        return 0

    def reap(self):
        dead, self.dead = self.dead, 0
        self.worker_count -= dead
        if dead:
            self.log.append(f"reap:{dead}")
        return dead


def busy(wait, depth=50):
    return ServiceSignals(
        queue_depth=depth, workers=1, ewma_entry_latency_s=0.1,
        estimated_wait_s=wait, observed_entries=depth,
    )


def idle():
    return ServiceSignals(
        queue_depth=0, workers=1, ewma_entry_latency_s=0.05,
        estimated_wait_s=0.0, observed_entries=100,
    )


def make(fleet, signals_fn, **policy_kwargs):
    defaults = dict(
        min_workers=1, max_workers=3, scale_up_wait_s=1.0,
        scale_down_wait_s=0.1, hysteresis=2, cooldown_s=3.0,
        # most tests exercise the streak/cooldown logic; the wall-clock
        # stabilization window gets its own dedicated tests below.
        scale_down_stabilization_s=0.0,
    )
    defaults.update(policy_kwargs)
    return FleetAutoscaler(fleet, signals_fn, AutoscalerPolicy(**defaults))


class TestPolicyValidation:
    def test_dead_band_required(self):
        with pytest.raises(ValueError, match="dead band"):
            AutoscalerPolicy(scale_up_wait_s=0.5, scale_down_wait_s=0.5)

    def test_bounds_must_nest(self):
        with pytest.raises(ValueError, match="max_workers"):
            AutoscalerPolicy(min_workers=3, max_workers=2)


class TestScaleUp:
    def test_needs_hysteresis_consecutive_breaches(self):
        fleet = FakeFleet(1)
        scaler = make(fleet, lambda: busy(5.0))
        assert scaler.poll_once(now=0.0) is None  # streak 1 of 2
        assert scaler.poll_once(now=0.5) == "scale_up"
        assert fleet.worker_count == 2

    def test_one_noisy_sample_never_scales(self):
        fleet = FakeFleet(1)
        feed = iter([busy(5.0), idle(), busy(5.0), idle()])
        scaler = make(fleet, lambda: next(feed))
        for t in (0.0, 0.5, 1.0, 1.5):
            assert scaler.poll_once(now=t) is None
        assert fleet.worker_count == 1

    def test_respects_max_workers(self):
        fleet = FakeFleet(3)
        scaler = make(fleet, lambda: busy(5.0), cooldown_s=0.0)
        for t in range(10):
            scaler.poll_once(now=float(t))
        assert fleet.worker_count == 3  # already at the ceiling

    def test_cooldown_blocks_back_to_back_resizes(self):
        fleet = FakeFleet(1)
        scaler = make(fleet, lambda: busy(5.0), cooldown_s=3.0)
        scaler.poll_once(now=0.0)
        assert scaler.poll_once(now=0.5) == "scale_up"
        # breaches keep accruing, but the cooldown gate holds...
        assert scaler.poll_once(now=1.0) is None
        assert scaler.poll_once(now=2.0) is None
        # ...until 3s after the resize.
        assert scaler.poll_once(now=3.6) == "scale_up"
        assert fleet.worker_count == 3


class TestScaleDown:
    def test_idle_fleet_shrinks_to_min(self):
        fleet = FakeFleet(3)
        scaler = make(fleet, idle, cooldown_s=0.0)
        actions = [scaler.poll_once(now=float(t)) for t in range(8)]
        assert actions.count("scale_down") == 2
        assert fleet.worker_count == 1  # never below min_workers

    def test_burst_gap_shorter_than_stabilization_does_not_shrink(self):
        # a bursty source goes quiet for a couple of seconds between
        # bursts; those gaps must not retire workers (the regression:
        # hysteresis x poll_interval was ~1s, so every 2s gap killed a
        # worker whose keep-alive clients were about to burst again).
        fleet = FakeFleet(2)
        feed = iter([idle(), idle(), idle(), idle(), busy(5.0)])
        scaler = make(
            fleet, lambda: next(feed),
            cooldown_s=0.0, scale_down_stabilization_s=5.0,
        )
        for t in (0.0, 0.5, 1.0, 1.5, 2.0):  # 2s idle gap, then busy
            assert scaler.poll_once(now=t) != "scale_down"
        assert fleet.worker_count == 2

    def test_sustained_idle_beyond_stabilization_shrinks(self):
        fleet = FakeFleet(2)
        scaler = make(
            fleet, idle, cooldown_s=0.0, scale_down_stabilization_s=5.0,
        )
        actions = [scaler.poll_once(now=float(t)) for t in range(7)]
        # idle since t=0: the window closes at t=5, not at hysteresis.
        assert actions[:5] == [None] * 5
        assert actions[5] == "scale_down"
        assert fleet.worker_count == 1

    def test_low_wait_with_queued_work_does_not_shrink(self):
        fleet = FakeFleet(2)
        lowish = ServiceSignals(
            queue_depth=5, workers=2, ewma_entry_latency_s=0.001,
            estimated_wait_s=0.0025, observed_entries=5,
        )
        scaler = make(fleet, lambda: lowish, cooldown_s=0.0)
        for t in range(6):
            assert scaler.poll_once(now=float(t)) is None
        assert fleet.worker_count == 2


class TestRespawn:
    def test_dead_workers_replaced_to_min_ignoring_cooldown(self):
        fleet = FakeFleet(2)
        scaler = make(fleet, idle, min_workers=2, cooldown_s=1000.0)
        scaler._last_resize_at = 0.0  # deep in cooldown
        fleet.dead = 1
        assert scaler.poll_once(now=0.1) == "respawn"
        assert fleet.worker_count == 2
        assert fleet.log[-2:] == ["reap:1", "add"]

    def test_respawn_resets_streaks(self):
        fleet = FakeFleet(1)
        scaler = make(fleet, lambda: busy(5.0), cooldown_s=0.0)
        scaler.poll_once(now=0.0)  # up streak 1
        fleet.dead = 1
        fleet.worker_count = 2  # pretend one extra so reap leaves 1
        assert scaler.poll_once(now=0.5) == "respawn"
        # the breach streak restarted: next poll is streak 1 again.
        assert scaler.poll_once(now=10.0) is None

    def test_none_signals_is_a_noop(self):
        fleet = FakeFleet(1)
        scaler = make(fleet, lambda: None)
        assert scaler.poll_once(now=0.0) is None
        assert fleet.worker_count == 1


class TestEvents:
    def test_actions_are_recorded_with_reasons(self):
        fleet = FakeFleet(1)
        scaler = make(fleet, lambda: busy(5.0))
        scaler.poll_once(now=0.0)
        scaler.poll_once(now=0.5)
        assert len(scaler.events) == 1
        event = scaler.events[0]
        assert event["action"] == "scale_up"
        assert event["workers"] == 2
        assert "estimated wait" in event["reason"]

    def test_threaded_start_stop(self):
        fleet = FakeFleet(1)
        scaler = make(fleet, idle, poll_interval_s=0.01)
        with scaler:
            pass  # start + stop must not deadlock or leak
        assert scaler._thread is None

    def test_concurrent_starts_spawn_exactly_one_thread(self):
        # the start()/stop() thread handoff is serialized under the
        # scaler lock: hammering start() from many threads must create
        # one poll loop, never several racing ones
        import threading

        fleet = FakeFleet(1)
        scaler = make(fleet, idle, poll_interval_s=0.01)
        spawned = []
        original = threading.Thread

        class CountingThread(original):
            def __init__(self, *args, **kwargs):
                if kwargs.get("name") == "fleet-autoscaler":
                    spawned.append(kwargs.get("name"))
                super().__init__(*args, **kwargs)

        threading.Thread = CountingThread
        try:
            callers = [original(target=scaler.start) for _ in range(8)]
            for t in callers:
                t.start()
            for t in callers:
                t.join()
        finally:
            threading.Thread = original
        try:
            assert spawned == ["fleet-autoscaler"]
        finally:
            scaler.stop()
        assert scaler._thread is None

    def test_stop_is_idempotent_and_restartable(self):
        fleet = FakeFleet(1)
        scaler = make(fleet, idle, poll_interval_s=0.01)
        scaler.stop()  # before any start: a no-op, not a crash
        scaler.start()
        scaler.stop()
        scaler.stop()
        scaler.start()  # restart after a clean stop
        scaler.stop()
        assert scaler._thread is None
