"""Unit tests for repro.control.admission: the shed-or-admit gate."""

import pytest

from repro.api.wire import ERR_OVERLOADED, EndpointError
from repro.control import AdmissionController, AdmissionPolicy, ServiceSignals


def signals(depth, ewma, workers=1):
    wait = 0.0 if ewma is None else depth * ewma / workers
    return ServiceSignals(
        queue_depth=depth,
        workers=workers,
        ewma_entry_latency_s=ewma,
        estimated_wait_s=wait,
        observed_entries=0 if ewma is None else depth,
    )


class TestAdmissionPolicy:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="slo_budget_s"):
            AdmissionPolicy(slo_budget_s=0.0)

    def test_rejects_inverted_retry_bounds(self):
        with pytest.raises(ValueError, match="retry_after"):
            AdmissionPolicy(slo_budget_s=1.0, retry_after_floor_s=5.0, retry_after_cap_s=1.0)

    def test_controller_takes_policy_or_kwargs_not_both(self):
        policy = AdmissionPolicy(slo_budget_s=1.0)
        with pytest.raises(ValueError, match="not both"):
            AdmissionController(policy, slo_budget_s=2.0)


class TestEvaluate:
    def test_admits_within_budget(self):
        ctrl = AdmissionController(slo_budget_s=1.0, min_queue_depth=0)
        assert ctrl.evaluate(signals(depth=5, ewma=0.1)) is None  # wait 0.5s

    def test_sheds_past_budget(self):
        ctrl = AdmissionController(slo_budget_s=1.0, min_queue_depth=0)
        hint = ctrl.evaluate(signals(depth=30, ewma=0.1))  # wait 3.0s
        assert hint is not None and hint > 0

    def test_hint_is_excess_plus_one_service_time(self):
        ctrl = AdmissionController(slo_budget_s=1.0, min_queue_depth=0)
        hint = ctrl.evaluate(signals(depth=30, ewma=0.1))
        assert hint == pytest.approx((3.0 - 1.0) + 0.1)

    def test_hint_respects_floor_and_cap(self):
        ctrl = AdmissionController(
            slo_budget_s=1.0, min_queue_depth=0, retry_after_floor_s=0.5, retry_after_cap_s=2.0
        )
        # barely over budget -> floor
        barely = ServiceSignals(
            queue_depth=11, workers=1, ewma_entry_latency_s=0.0001, estimated_wait_s=1.0001
        )
        assert ctrl.evaluate(barely) == 0.5
        # wildly over budget -> cap
        assert ctrl.evaluate(signals(depth=10_000, ewma=0.1)) == 2.0

    def test_cold_ewma_always_admits(self):
        ctrl = AdmissionController(slo_budget_s=0.001, min_queue_depth=0)
        assert ctrl.evaluate(signals(depth=1000, ewma=None)) is None

    def test_shallow_queue_always_admits(self):
        ctrl = AdmissionController(slo_budget_s=0.001, min_queue_depth=4)
        # wait is 30s — way past budget — but only 3 entries deep.
        assert ctrl.evaluate(signals(depth=3, ewma=10.0)) is None
        assert ctrl.evaluate(signals(depth=4, ewma=10.0)) is not None


class TestAdmit:
    def test_shed_raises_typed_overloaded_with_hint(self):
        ctrl = AdmissionController(slo_budget_s=0.5, min_queue_depth=0)
        with pytest.raises(EndpointError) as excinfo:
            ctrl.admit(signals(depth=100, ewma=0.1))
        assert excinfo.value.code == ERR_OVERLOADED
        assert excinfo.value.retry_after_s is not None
        assert excinfo.value.retry_after_s > 0
        assert "admission control" in str(excinfo.value)

    def test_counters_track_both_outcomes(self):
        ctrl = AdmissionController(slo_budget_s=0.5, min_queue_depth=0)
        ctrl.admit(signals(depth=0, ewma=0.1))
        ctrl.admit(signals(depth=1, ewma=0.1))
        with pytest.raises(EndpointError):
            ctrl.admit(signals(depth=100, ewma=0.1))
        stats = ctrl.stats()
        assert stats["admitted_total"] == 2
        assert stats["shed_total"] == 1
        assert stats["slo_budget_s"] == 0.5

    def test_error_round_trips_the_wire(self):
        ctrl = AdmissionController(slo_budget_s=0.5, min_queue_depth=0)
        with pytest.raises(EndpointError) as excinfo:
            ctrl.admit(signals(depth=100, ewma=0.1))
        back = EndpointError.from_dict(excinfo.value.to_dict())
        assert back.code == ERR_OVERLOADED
        assert back.retry_after_s == pytest.approx(
            excinfo.value.retry_after_s, abs=1e-3
        )
