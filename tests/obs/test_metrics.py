"""MetricsRegistry unit tests: instruments, labels, atomic snapshots."""

import threading

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_value_total(self):
        c = Counter("events_total")
        c.inc()
        c.inc(2, event="hit")
        c.inc(event="miss")
        assert c.value() == 1
        assert c.value(event="hit") == 2
        assert c.value(event="unknown") == 0
        assert c.total() == 4

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="Gauge"):
            Counter("events_total").inc(-1)

    def test_values_snapshot_collapses_to_one_label(self):
        c = Counter("cache_events_total")
        c.inc(3, event="memory_hit")
        c.inc(1, event="miss")
        assert c.values(label="event") == {"memory_hit": 3, "miss": 1}
        assert c.values() == {
            (("event", "memory_hit"),): 3,
            (("event", "miss"),): 1,
        }

    def test_values_is_one_atomic_copy_under_concurrency(self):
        # related series on ONE counter must never tear: a reader
        # always sees hit+miss equal to the number of completed rounds.
        c = Counter("cache_events_total")
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                snap = c.values(label="event")
                if snap.get("hit", 0) != snap.get("miss", 0) and (
                    abs(snap.get("hit", 0) - snap.get("miss", 0)) > 1
                ):
                    torn.append(snap)

        t = threading.Thread(target=reader)
        t.start()
        for _ in range(2000):
            c.inc(event="hit")
            c.inc(event="miss")
        stop.set()
        t.join()
        assert torn == []


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5.0)
        g.inc(2.0)
        g.dec()
        assert g.value() == 6.0
        assert g.value(worker="w1") == 0.0  # default for absent series

    def test_set_max_keeps_the_high_water_mark(self):
        g = Gauge("batch_size_max")
        g.set_max(3)
        g.set_max(7)
        g.set_max(5)
        assert g.value() == 7


class TestHistogram:
    def test_observe_and_summary(self):
        h = Histogram("latency_s", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min_s"] == 0.005
        assert s["max_s"] == 5.0
        assert s["mean_s"] == pytest.approx(5.555 / 4)

    def test_empty_summary(self):
        assert Histogram("latency_s").summary()["count"] == 0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("latency_s", buckets=())
        with pytest.raises(ValueError):
            Histogram("latency_s", buckets=(-1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("events_total", "help")
        b = reg.counter("events_total")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("events_total")
        with pytest.raises(ValueError, match="counter"):
            reg.gauge("events_total")

    def test_names_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc(2, event="hit")
        reg.gauge("depth").set(3.0)
        reg.histogram("latency_s").observe(0.5)
        assert reg.names() == ["depth", "events_total", "latency_s"]
        snap = reg.snapshot()
        assert snap["events_total"]["type"] == "counter"
        assert snap["events_total"]["values"] == {"event=hit": 2}
        assert snap["depth"]["values"] == {"": 3.0}
        assert snap["latency_s"]["values"][""]["count"] == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")
