"""Tracer unit tests: context wire form, sampling, spans, export."""

import json
import random
import threading

import pytest

from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    TraceContext,
    Tracer,
    build_trace_document,
    configure_tracer,
    default_trace_path,
    get_tracer,
    load_trace,
    save_trace,
    validate_trace,
)


def sampled_tracer(**kwargs):
    kwargs.setdefault("sample_rate", 1.0)
    return Tracer("test", **kwargs)


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext("abc123", "def456", True)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        off = TraceContext("abc123", "def456", False)
        assert TraceContext.from_wire(off.to_wire()) == off

    @pytest.mark.parametrize(
        "bad",
        [None, 7, "", "justone", "a-b", "a-b-2", "-b-1", "a--1", "a-b-1-c"],
    )
    def test_malformed_wire_degrades_to_none(self, bad):
        assert TraceContext.from_wire(bad) is None


class TestSampling:
    def test_rate_zero_returns_the_noop(self):
        tracer = Tracer("test", sample_rate=0.0)
        root = tracer.start_trace("request")
        with root as span:
            span.tag("k", "v")  # the noop accepts the full span surface
            with tracer.span("child", "queue"):
                pass
        assert tracer.spans() == []
        assert tracer.stats()["traces_started"] == 1
        assert tracer.stats()["traces_sampled"] == 0

    def test_rate_one_records_every_trace(self):
        tracer = sampled_tracer()
        for _ in range(3):
            with tracer.start_trace("request"):
                pass
        assert len(tracer.spans()) == 3
        assert tracer.stats()["traces_sampled"] == 3

    def test_head_decision_is_deterministic_under_seeded_rng(self):
        tracer = Tracer("test", sample_rate=0.5, rng=random.Random(7))
        noop_type = type(tracer.span("x", "t"))
        decisions = [
            not isinstance(tracer.start_trace("r"), noop_type)
            for _ in range(20)
        ]
        reference = random.Random(7)
        want = [reference.random() < 0.5 for _ in range(20)]
        assert decisions == want

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer("test", sample_rate=1.5)

    def test_span_without_active_context_is_noop(self):
        tracer = sampled_tracer()
        with tracer.span("orphanless", "queue"):
            pass
        assert tracer.spans() == []


class TestSpanTree:
    def test_children_nest_under_the_root(self):
        tracer = sampled_tracer()
        with tracer.start_trace("request", "client") as root:
            with tracer.span("rpc", "transport"):
                with tracer.span("optimize", "optimize"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["request"].parent_id is None
        assert spans["rpc"].parent_id == spans["request"].span_id
        assert spans["optimize"].parent_id == spans["rpc"].span_id
        assert len({s.trace_id for s in spans.values()}) == 1
        assert root.context.trace_id == spans["request"].trace_id

    def test_exception_tags_the_span_and_still_records(self):
        tracer = sampled_tracer()
        with pytest.raises(RuntimeError):
            with tracer.start_trace("request"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.tags["error"] == "RuntimeError"

    def test_activate_joins_a_remote_context(self):
        tracer = sampled_tracer()
        remote = TraceContext("remotetrace", "remotespan", True)
        with tracer.activate(remote):
            with tracer.span("queue_wait", "queue"):
                pass
        (span,) = tracer.spans()
        assert span.trace_id == "remotetrace"
        assert span.parent_id == "remotespan"

    def test_activate_unsampled_context_is_noop(self):
        tracer = sampled_tracer()
        remote = TraceContext("t", "s", False)
        with tracer.activate(remote):
            with tracer.span("queue_wait", "queue"):
                pass
        assert tracer.spans() == []

    def test_record_attaches_a_measured_span(self):
        tracer = sampled_tracer()
        remote = TraceContext("t1", "s1", True)
        tracer.record("queue_wait", "queue", 0.25, ctx=remote, tags={"n": 3})
        (span,) = tracer.spans()
        assert span.duration_s == 0.25
        assert span.parent_id == "s1"
        assert span.tags == {"n": 3}

    def test_link_records_the_winners_identity(self):
        tracer = sampled_tracer()
        waiter = TraceContext("loser", "ls", True)
        winner = TraceContext("winner", "ws", True)
        tracer.link(waiter, winner)
        (span,) = tracer.spans()
        assert span.tier == "link"
        assert span.duration_s == 0.0
        assert span.tags["target_trace_id"] == "winner"
        assert span.tags["target_span_id"] == "ws"

    def test_context_is_thread_local(self):
        tracer = sampled_tracer()
        seen = {}

        def other_thread():
            seen["ctx"] = tracer.current()

        with tracer.start_trace("request"):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
            assert tracer.current() is not None
        assert seen["ctx"] is None


class TestRingBuffer:
    def test_bounded_with_dropped_accounting(self):
        tracer = sampled_tracer(max_spans=4)
        for _ in range(10):
            with tracer.start_trace("request"):
                pass
        assert len(tracer.spans()) == 4
        assert tracer.stats()["spans_dropped"] == 6

    def test_clear_empties_the_buffer(self):
        tracer = sampled_tracer()
        with tracer.start_trace("request"):
            pass
        tracer.clear()
        assert tracer.spans() == []


class TestExport:
    def test_export_load_round_trip(self, tmp_path):
        tracer = sampled_tracer()
        with tracer.start_trace("request", "client"):
            with tracer.span("rpc", "transport"):
                pass
        path = str(tmp_path / default_trace_path("unit"))
        doc = tracer.export(path)
        assert doc["schema_version"] == TRACE_SCHEMA_VERSION
        assert load_trace(path) == doc
        assert len(doc["spans"]) == 2

    def test_validate_rejects_malformation(self, tmp_path):
        tracer = sampled_tracer()
        with tracer.start_trace("request"):
            pass
        doc = build_trace_document(tracer)
        for corrupt, match in [
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d.update(kind="bench"), "trace"),
            (lambda d: d.pop("service"), "service"),
            (lambda d: d.update(spans={}), "list"),
        ]:
            bad = json.loads(json.dumps(doc))
            corrupt(bad)
            with pytest.raises(ValueError, match=match):
                validate_trace(bad)

    def test_negative_duration_rejected(self, tmp_path):
        tracer = sampled_tracer()
        with tracer.start_trace("request"):
            pass
        doc = build_trace_document(tracer)
        doc["spans"][0]["duration_s"] = -1.0
        with pytest.raises(ValueError, match="negative"):
            save_trace(doc, str(tmp_path / "bad.json"))

    def test_span_dict_round_trip(self):
        span = Span("t", "s", "p", "n", "queue", "svc", 42, 1.5, 0.25, {"k": 1})
        assert Span.from_dict(span.to_dict()) == span


class TestGlobalTracer:
    def test_configure_replaces_and_get_returns_it(self):
        before = get_tracer()
        try:
            tracer = configure_tracer(sample_rate=1.0, service="cfg-test")
            assert get_tracer() is tracer
            assert tracer.sample_rate == 1.0
            assert tracer.service == "cfg-test"
        finally:
            configure_tracer(sample_rate=0.0, service=before.service)

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0.25")
        try:
            assert configure_tracer().sample_rate == 0.25
            monkeypatch.setenv("REPRO_TRACE", "not-a-number")
            assert configure_tracer().sample_rate == 0.0
            monkeypatch.delenv("REPRO_TRACE")
            assert configure_tracer().sample_rate == 0.0
        finally:
            configure_tracer(sample_rate=0.0)
