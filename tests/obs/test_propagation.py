"""End-to-end trace propagation: driver -> wire -> serving tiers.

The acceptance shape of the tracing tentpole, in-process: at sampling
1.0 every replayed request must stitch into ONE complete tree whose
serving-tier spans hang under the client's rpc span (the wire carried
the context), and whose per-tier exclusive times sum to ~the
client-measured wall latency.
"""

import pytest

from repro.loadgen.driver import run_loadtest
from repro.loadgen.workload import WorkloadSpec, generate_workload
from repro.obs.stitch import stitch_spans, tier_attribution
from repro.obs.trace import configure_tracer


@pytest.fixture()
def tracer():
    tracer = configure_tracer(sample_rate=1.0, service="propagation-test")
    yield tracer
    configure_tracer(sample_rate=0.0)


def small_workload(requests=4, clients=2):
    return generate_workload(
        WorkloadSpec(
            name="prop",
            seed=11,
            arrival="closed",
            requests=requests,
            clients=clients,
            mix={"squeezenet": 1.0},
            k=0,
            variants=requests,  # distinct buckets: no dedup joins here
        )
    )


def assert_complete_trees(trees, result):
    assert len(trees) == len(result.outcomes)
    for tree in trees:
        assert tree.root is not None, "request trace lost its root"
        assert tree.orphans() == [], "a span failed to join its parent"
        assert tree.root.name == "request"
        links = [s for s in tree.spans if s.tier == "link"]
        if not links:
            assert len(tree.tiers()) >= 4, tree.tiers()


def assert_attribution_covers_wall(trees, result, tolerance=0.15):
    """Per-tier exclusive time leaves no tracing gap in the wall latency.

    Only a lower bound: the server pipelines canonicalization against
    the worker pool and entries queue behind each other, so concurrent
    sibling spans can legitimately attribute MORE than the wall clock
    (work time, not a wall decomposition).
    """
    walls = sum(t.wall_s() for t in trees)
    measured = sum(o.latency_s for o in result.outcomes)
    assert walls == pytest.approx(measured, rel=tolerance)
    attributed = sum(
        t["total_s"] for t in tier_attribution(trees).values()
    )
    assert attributed >= (1 - tolerance) * walls


def assert_attribution_matches_wall(trees, result, tolerance=0.15):
    """Two-sided: tier exclusive times sum to ~the client wall latency.

    Holds when the transport span dominates its server-side children
    (remote endpoints): overlap between server spans is absorbed by the
    rpc span's exclusive remainder instead of inflating the total.
    """
    assert_attribution_covers_wall(trees, result, tolerance)
    walls = sum(t.wall_s() for t in trees)
    attributed = sum(
        t["total_s"] for t in tier_attribution(trees).values()
    )
    assert attributed == pytest.approx(walls, rel=tolerance)


class TestLocalPropagation:
    def test_every_request_is_one_complete_tree(self, tracer):
        result = run_loadtest(
            small_workload(), "local:", sample_interval=0.0
        )
        assert result.failed == 0, result.error_codes
        trees = stitch_spans(tracer.spans())
        assert_complete_trees(trees, result)
        # full visibility in-process: client, transport, queue and the
        # serving tiers all in one tracer
        tiers = {tier for t in trees for tier in t.tiers()}
        assert {"client", "transport", "queue", "optimize"} <= tiers

    def test_attribution_covers_wall_latency(self, tracer):
        result = run_loadtest(
            small_workload(), "local:", sample_interval=0.0
        )
        assert result.failed == 0
        trees = stitch_spans(tracer.spans())
        assert_attribution_covers_wall(trees, result)

    def test_dedup_joins_link_to_the_winner(self, tracer):
        # every request is the same bucket: concurrent duplicates must
        # join the in-flight job and link to the winning trace
        workload = generate_workload(
            WorkloadSpec(
                name="dup",
                seed=3,
                arrival="closed",
                requests=6,
                clients=6,
                mix={"squeezenet": 1.0},
                k=0,
                variants=1,
            )
        )
        result = run_loadtest(workload, "local:", sample_interval=0.0)
        assert result.failed == 0
        trees = stitch_spans(tracer.spans())
        assert_complete_trees(trees, result)
        by_id = {t.trace_id for t in trees}
        links = [
            s for t in trees for s in t.spans if s.tier == "link"
        ]
        for link in links:
            assert link.tags["target_trace_id"] in by_id

    def test_unsampled_run_records_nothing(self):
        tracer = configure_tracer(sample_rate=0.0)
        result = run_loadtest(
            small_workload(requests=2, clients=1), "local:",
            sample_interval=0.0,
        )
        assert result.failed == 0
        assert tracer.spans() == []


class TestHttpPropagation:
    def test_header_carries_the_context_across_the_wire(self, tracer):
        from repro.serving import OptimizationCache
        from repro.serving.http import OptimizationHTTPServer

        app = OptimizationHTTPServer(
            "ortlike", cache=OptimizationCache(), workers=2, port=0
        )
        host, port = app.start()
        try:
            result = run_loadtest(
                small_workload(), f"http://{host}:{port}",
                sample_interval=0.0,
            )
            assert result.failed == 0, result.error_codes
            trees = stitch_spans(tracer.spans())
            assert_complete_trees(trees, result)
            assert_attribution_matches_wall(trees, result)
        finally:
            app.close()


class TestMuxPropagation:
    def test_frame_field_carries_the_context(self, tracer):
        from repro.api.endpoint import open_endpoint
        from repro.mux.server import MuxServer
        from repro.serving import OptimizationCache
        from repro.serving.http import OptimizationHTTPServer

        app = OptimizationHTTPServer(
            "ortlike", cache=OptimizationCache(), workers=2, port=0
        )
        server = MuxServer(app)
        host, port = server.start()
        endpoint = open_endpoint(f"mux://{host}:{port}")
        try:
            result = run_loadtest(
                small_workload(requests=2, clients=2), endpoint,
                sample_interval=0.0,
            )
            assert result.failed == 0, result.error_codes
            trees = stitch_spans(tracer.spans())
            assert_complete_trees(trees, result)
        finally:
            endpoint.close()
            server.close()
            app.close()
