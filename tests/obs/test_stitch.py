"""Stitching unit tests: trees, attribution, critical path, compare."""

import pytest

from repro.obs.stitch import (
    TraceTree,
    build_trace_summary,
    compare_attributions,
    critical_path,
    merge_trace_files,
    stitch_spans,
    tier_attribution,
)
from repro.obs.trace import Span, Tracer, default_trace_path


def mk_span(trace, span, parent, name, tier, start, dur, pid=1, **tags):
    return Span(trace, span, parent, name, tier, "test", pid, start, dur,
                dict(tags))


def one_request_spans(trace="t1", start=100.0):
    """A realistic two-process request: client root + rpc, serving tiers."""
    return [
        mk_span(trace, "root", None, "request", "client", start, 1.0, pid=1),
        mk_span(trace, "rpc", "root", "rpc", "transport", start + 0.05, 0.9,
                pid=1),
        mk_span(trace, "qw", "rpc", "queue_wait", "queue", start + 0.1, 0.2,
                pid=2),
        mk_span(trace, "opt", "rpc", "optimize", "optimize", start + 0.3, 0.6,
                pid=2),
    ]


class TestTraceTree:
    def test_root_children_tiers_processes(self):
        tree = TraceTree("t1", one_request_spans())
        assert tree.root.span_id == "root"
        assert [c.span_id for c in tree.children(tree.root)] == ["rpc"]
        assert tree.tiers() == ["client", "optimize", "queue", "transport"]
        assert tree.processes() == [1, 2]
        assert tree.orphans() == []
        assert tree.wall_s() == 1.0

    def test_exclusive_subtracts_direct_children(self):
        tree = TraceTree("t1", one_request_spans())
        rpc = tree._by_id["rpc"]
        # rpc 0.9s minus queue_wait 0.2s and optimize 0.6s
        assert tree.exclusive_s(rpc) == pytest.approx(0.1)
        root = tree.root
        assert tree.exclusive_s(root) == pytest.approx(0.1)

    def test_exclusive_clamps_at_zero(self):
        spans = [
            mk_span("t", "a", None, "request", "client", 0.0, 0.1),
            mk_span("t", "b", "a", "rpc", "transport", 0.0, 0.5),
        ]
        tree = TraceTree("t", spans)
        assert tree.exclusive_s(tree.root) == 0.0

    def test_orphans_missing_parent(self):
        spans = one_request_spans() + [
            mk_span("t1", "lost", "no-such-span", "x", "queue", 101.0, 0.1)
        ]
        tree = TraceTree("t1", spans)
        assert [s.span_id for s in tree.orphans()] == ["lost"]

    def test_two_parentless_spans_means_no_root(self):
        spans = [
            mk_span("t", "a", None, "request", "client", 0.0, 1.0),
            mk_span("t", "b", None, "request", "client", 0.5, 1.0),
        ]
        tree = TraceTree("t", spans)
        assert tree.root is None
        assert len(tree.orphans()) == 2
        assert tree.wall_s() is None


class TestStitching:
    def test_groups_by_trace_id_oldest_first(self):
        spans = one_request_spans("t-new", start=200.0) + one_request_spans(
            "t-old", start=100.0
        )
        trees = stitch_spans(spans)
        assert [t.trace_id for t in trees] == ["t-old", "t-new"]
        assert all(len(t.spans) == 4 for t in trees)

    def test_merge_trace_files_joins_processes(self, tmp_path):
        spans = one_request_spans()
        client, worker = Tracer("client", 1.0), Tracer("worker", 1.0)
        for span in spans:
            (client if span.pid == 1 else worker)._spans.append(span)
        p1 = str(tmp_path / default_trace_path("client"))
        p2 = str(tmp_path / default_trace_path("worker"))
        client.export(p1)
        worker.export(p2)
        merged = merge_trace_files([p1, p2])
        assert len(merged) == 4
        (tree,) = stitch_spans(merged)
        assert tree.orphans() == []
        assert tree.processes() == [1, 2]


class TestAttribution:
    def test_shares_sum_to_one_and_links_excluded(self):
        spans = one_request_spans() + [
            mk_span("t1", "lnk", "rpc", "dedup_join", "link", 100.5, 0.0,
                    target_trace_id="w")
        ]
        attribution = tier_attribution(stitch_spans(spans))
        assert "link" not in attribution
        assert sum(t["share"] for t in attribution.values()) == pytest.approx(1.0)
        # exclusive totals: client 0.1, transport 0.1, queue 0.2, optimize 0.6
        assert attribution["optimize"]["total_s"] == pytest.approx(0.6)
        assert attribution["queue"]["total_s"] == pytest.approx(0.2)
        assert attribution["transport"]["total_s"] == pytest.approx(0.1)

    def test_tiers_sum_to_root_wall(self):
        trees = stitch_spans(one_request_spans())
        attribution = tier_attribution(trees)
        total = sum(t["total_s"] for t in attribution.values())
        assert total == pytest.approx(trees[0].wall_s())

    def test_critical_path_follows_longest_child(self):
        (tree,) = stitch_spans(one_request_spans())
        path = [s.span_id for s in critical_path(tree)]
        assert path == ["root", "rpc", "opt"]

    def test_critical_path_empty_without_root(self):
        tree = TraceTree("t", [
            mk_span("t", "a", "gone", "x", "queue", 0.0, 0.1)
        ])
        assert critical_path(tree) == []


class TestSummaryAndCompare:
    def test_summary_counts(self):
        spans = one_request_spans("t1") + one_request_spans("t2", start=200.0)
        spans.append(
            mk_span("t3", "frag", "missing", "x", "queue", 300.0, 0.1, pid=3)
        )
        summary = build_trace_summary(stitch_spans(spans))
        assert summary["traces"] == 3
        assert summary["complete"] == 2
        assert summary["orphan_spans"] == 1
        assert summary["spans"] == 9
        assert summary["processes"] == [1, 2, 3]
        assert summary["wall"]["mean_s"] == pytest.approx(1.0)
        assert summary["critical_path"][0]["name"] == "request"

    def test_empty_summary(self):
        summary = build_trace_summary([])
        assert summary["traces"] == 0
        assert summary["wall"]["mean_s"] is None
        assert summary["critical_path"] == []

    def test_compare_attributions_rows(self):
        current = build_trace_summary(stitch_spans(one_request_spans()))
        slower = {
            "tiers": {
                tier: {**stats, "mean_s": stats["mean_s"] / 2}
                for tier, stats in current["tiers"].items()
            }
        }
        rows = compare_attributions(current, slower)
        by_tier = {r["tier"]: r for r in rows}
        assert by_tier["optimize"]["ratio"] == pytest.approx(2.0)

    def test_compare_handles_missing_sides(self):
        current = {"tiers": {"queue": {"mean_s": 0.2}}}
        baseline = {"tiers": {"optimize": {"mean_s": 0.5}}}
        rows = compare_attributions(current, baseline)
        by_tier = {r["tier"]: r for r in rows}
        assert by_tier["queue"]["ratio"] is None
        assert by_tier["optimize"]["current_mean_s"] is None
