"""Shared test harnesses (imported as ``tests.helpers``)."""

import threading
from contextlib import contextmanager


@contextmanager
def spool_endpoint_harness(spool_dir, optimizer="ortlike", workers=2):
    """A live SpoolEndpoint: a pump thread drains ``spool_dir`` through
    an OptimizationServer for as long as the context is open."""
    from repro.api.endpoint import SpoolEndpoint
    from repro.serving import OptimizationServer
    from repro.serving.spool import SpoolServer

    with OptimizationServer(optimizer, workers=workers) as srv:
        watcher = SpoolServer(str(spool_dir), srv, log=lambda msg: None)
        stop = threading.Event()

        def pump():
            while not stop.is_set():
                watcher.run_once()
                stop.wait(0.02)

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        try:
            yield SpoolEndpoint(str(spool_dir))
        finally:
            stop.set()
            thread.join(timeout=10)
