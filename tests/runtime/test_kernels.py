"""Tests for the numpy kernel library (semantics per operator)."""

import math

import numpy as np
import pytest
from scipy import special

from repro.ir.node import Node
from repro.runtime.kernels import KernelError, kernel_for


def run(op, ins, attrs=None):
    node = Node("t", op, [f"i{k}" for k in range(len(ins))], ["o"], attrs)
    return kernel_for(op)(node, [np.asarray(x) for x in ins])[0]


class TestConvKernels:
    def test_conv_identity_kernel(self):
        x = np.random.default_rng(0).standard_normal((1, 2, 5, 5)).astype(np.float32)
        w = np.zeros((2, 2, 1, 1), dtype=np.float32)
        w[0, 0, 0, 0] = 1.0
        w[1, 1, 0, 0] = 1.0
        out = run("Conv", [x, w], {"kernel_shape": (1, 1), "strides": (1, 1), "pads": 0, "group": 1})
        np.testing.assert_allclose(out, x, rtol=1e-6)

    def test_conv_matches_manual_3x3(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        out = run("Conv", [x, w], {"kernel_shape": (3, 3), "strides": (1, 1), "pads": 1, "group": 1})
        # manual computation at one location
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = (xp[0, :, 2:5, 3:6] * w[1]).sum()
        np.testing.assert_allclose(out[0, 1, 2, 3], expected, rtol=1e-4)

    def test_conv_stride_and_bias(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = run("Conv", [x, w, b], {"kernel_shape": (3, 3), "strides": (2, 2), "pads": 1, "group": 1})
        assert out.shape == (1, 3, 4, 4)
        out_nb = run("Conv", [x, w], {"kernel_shape": (3, 3), "strides": (2, 2), "pads": 1, "group": 1})
        np.testing.assert_allclose(out - out_nb, np.broadcast_to(b[None, :, None, None], out.shape), rtol=1e-5)

    def test_depthwise_group_conv(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((4, 1, 3, 3)).astype(np.float32)
        out = run("Conv", [x, w], {"kernel_shape": (3, 3), "strides": (1, 1), "pads": 1, "group": 4})
        # channel c depends only on input channel c
        x2 = x.copy()
        x2[0, 0] = 0.0
        out2 = run("Conv", [x2, w], {"kernel_shape": (3, 3), "strides": (1, 1), "pads": 1, "group": 4})
        np.testing.assert_allclose(out[0, 1:], out2[0, 1:], rtol=1e-6)
        assert not np.allclose(out[0, 0], out2[0, 0])

    def test_fused_conv_applies_activation(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = rng.standard_normal((2, 2, 1, 1)).astype(np.float32)
        attrs = {"kernel_shape": (1, 1), "strides": (1, 1), "pads": 0, "group": 1}
        plain = run("Conv", [x, w], attrs)
        fused = run("FusedConv", [x, w], dict(attrs, activation="Relu"))
        np.testing.assert_allclose(fused, np.maximum(plain, 0), rtol=1e-6)

    def test_fused_conv_add(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = rng.standard_normal((2, 2, 1, 1)).astype(np.float32)
        res = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        attrs = {"kernel_shape": (1, 1), "strides": (1, 1), "pads": 0, "group": 1}
        plain = run("Conv", [x, w], attrs)
        fused = run("FusedConvAdd", [x, w, res], dict(attrs, activation="Relu"))
        np.testing.assert_allclose(fused, np.maximum(plain + res, 0), rtol=1e-5)


class TestPoolKernels:
    def test_maxpool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = run("MaxPool", [x], {"kernel_shape": (2, 2), "strides": (2, 2), "pads": 0})
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_padding_uses_neg_inf(self):
        x = -np.ones((1, 1, 2, 2), dtype=np.float32)
        out = run("MaxPool", [x], {"kernel_shape": (3, 3), "strides": (1, 1), "pads": 1})
        assert out.max() == -1.0  # padding must not contribute zeros

    def test_avgpool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = run("AveragePool", [x], {"kernel_shape": (2, 2), "strides": (2, 2), "pads": 0})
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avgpool(self):
        x = np.ones((1, 3, 5, 7), dtype=np.float32) * np.array([1, 2, 3], dtype=np.float32)[None, :, None, None]
        out = run("GlobalAveragePool", [x])
        np.testing.assert_allclose(out.ravel(), [1, 2, 3])


class TestNormKernels:
    def test_batchnorm_matches_formula(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((1, 3, 4, 4)).astype(np.float32)
        scale = np.array([1.0, 2.0, 0.5], dtype=np.float32)
        bias = np.array([0.0, 1.0, -1.0], dtype=np.float32)
        mean = np.array([0.1, -0.2, 0.3], dtype=np.float32)
        var = np.array([1.0, 0.5, 2.0], dtype=np.float32)
        out = run("BatchNormalization", [x, scale, bias, mean, var], {"epsilon": 1e-5})
        bc = lambda a: a[None, :, None, None]
        expected = (x - bc(mean)) / np.sqrt(bc(var) + 1e-5) * bc(scale) + bc(bias)
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_layernorm_zero_mean_unit_var(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((2, 5, 16)).astype(np.float32)
        out = run("LayerNormalization", [x, np.ones(16, np.float32), np.zeros(16, np.float32)],
                  {"axis": -1, "epsilon": 1e-5})
        np.testing.assert_allclose(out.mean(-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(-1), 1.0, atol=1e-2)

    def test_skip_layernorm_equals_add_then_ln(self):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        skip = rng.standard_normal((1, 4, 8)).astype(np.float32)
        scale = rng.standard_normal(8).astype(np.float32)
        bias = rng.standard_normal(8).astype(np.float32)
        fused = run("SkipLayerNormalization", [x, skip, scale, bias], {"epsilon": 1e-5})
        plain = run("LayerNormalization", [x + skip, scale, bias], {"axis": -1, "epsilon": 1e-5})
        np.testing.assert_allclose(fused, plain, rtol=1e-5, atol=1e-6)


class TestActivationKernels:
    X = np.linspace(-3, 3, 13).astype(np.float32)

    def test_relu(self):
        np.testing.assert_array_equal(run("Relu", [self.X]), np.maximum(self.X, 0))

    def test_leaky_relu(self):
        out = run("LeakyRelu", [self.X], {"alpha": 0.1})
        np.testing.assert_allclose(out, np.where(self.X >= 0, self.X, 0.1 * self.X), rtol=1e-6)

    def test_sigmoid(self):
        np.testing.assert_allclose(run("Sigmoid", [self.X]), special.expit(self.X), rtol=1e-6)

    def test_hardsigmoid_saturates(self):
        out = run("HardSigmoid", [np.array([-10.0, 0.0, 10.0], dtype=np.float32)],
                  {"alpha": 0.2, "beta": 0.5})
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_hardswish(self):
        x = np.array([-4.0, 0.0, 4.0], dtype=np.float32)
        np.testing.assert_allclose(run("HardSwish", [x]), [0.0, 0.0, 4.0])

    def test_gelu_matches_erf_form(self):
        expected = 0.5 * self.X * (1 + special.erf(self.X / math.sqrt(2)))
        np.testing.assert_allclose(run("Gelu", [self.X]), expected, rtol=1e-5)

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(9).standard_normal((3, 7)).astype(np.float32)
        out = run("Softmax", [x], {"axis": -1})
        np.testing.assert_allclose(out.sum(-1), 1.0, rtol=1e-5)

    def test_softmax_stability_large_values(self):
        out = run("Softmax", [np.array([1000.0, 1000.0], dtype=np.float32)], {"axis": -1})
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_clip(self):
        out = run("Clip", [self.X], {"min": 0.0, "max": 1.0})
        assert out.min() >= 0 and out.max() <= 1


class TestMatKernels:
    def test_gemm_alpha_beta_trans(self):
        rng = np.random.default_rng(10)
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((5, 4)).astype(np.float32)
        c = rng.standard_normal((3, 5)).astype(np.float32)
        out = run("Gemm", [a, b, c], {"alpha": 2.0, "beta": 0.5, "transA": 0, "transB": 1})
        np.testing.assert_allclose(out, 2.0 * (a @ b.T) + 0.5 * c, rtol=1e-5)

    def test_fused_matmul_bias_activation(self):
        rng = np.random.default_rng(11)
        a = rng.standard_normal((1, 3, 4)).astype(np.float32)
        w = rng.standard_normal((4, 6)).astype(np.float32)
        b = rng.standard_normal(6).astype(np.float32)
        out = run("FusedMatMul", [a, w, b], {"activation": "Relu"})
        np.testing.assert_allclose(out, np.maximum(a @ w + b, 0), rtol=1e-5)

    def test_batched_matmul(self):
        rng = np.random.default_rng(12)
        a = rng.standard_normal((2, 3, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4, 5)).astype(np.float32)
        np.testing.assert_allclose(run("MatMul", [a, b]), a @ b, rtol=1e-6)


class TestShapeKernels:
    def test_reshape_with_zero(self):
        x = np.arange(24).reshape(2, 3, 4)
        out = run("Reshape", [x], {"shape": (0, -1)})
        assert out.shape == (2, 12)

    def test_transpose_default_reverses(self):
        x = np.zeros((2, 3, 4))
        assert run("Transpose", [x], {}).shape == (4, 3, 2)

    def test_concat(self):
        a, b = np.ones((1, 2)), np.zeros((1, 3))
        out = run("Concat", [a, b], {"axis": 1})
        assert out.shape == (1, 5)

    def test_slice(self):
        x = np.arange(10).reshape(1, 10)
        out = run("Slice", [x], {"starts": (2,), "ends": (5,), "axes": (1,)})
        np.testing.assert_array_equal(out, [[2, 3, 4]])

    def test_gather_rows(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        idx = np.array([2, 0], dtype=np.int64)
        out = run("Gather", [table, idx], {"axis": 0})
        np.testing.assert_array_equal(out, table[[2, 0]])

    def test_identity_dropout_cast_passthrough(self):
        x = np.arange(4.0)
        for op in ("Identity", "Dropout", "Cast"):
            np.testing.assert_array_equal(run(op, [x]), x)


class TestReduceKernels:
    def test_reduce_mean(self):
        x = np.arange(8, dtype=np.float32).reshape(2, 4)
        out = run("ReduceMean", [x], {"axes": (-1,), "keepdims": 1})
        np.testing.assert_allclose(out, [[1.5], [5.5]])

    def test_reduce_sum_no_keepdims(self):
        x = np.ones((2, 3), dtype=np.float32)
        out = run("ReduceSum", [x], {"axes": (0,), "keepdims": 0})
        np.testing.assert_allclose(out, [2, 2, 2])


class TestErrors:
    def test_unknown_kernel(self):
        with pytest.raises(KernelError, match="no kernel"):
            kernel_for("Quux")
