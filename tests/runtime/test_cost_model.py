"""Tests for the analytic cost model."""

import pytest

from repro.ir import GraphBuilder
from repro.ir.dtypes import f32
from repro.ir.node import Node
from repro.runtime.cost_model import CostModel, node_bytes, node_flops


def flops(op, in_types, out_types, attrs=None):
    n = Node("t", op, [f"i{k}" for k in range(len(in_types))], ["o"], attrs)
    return node_flops(n, in_types, out_types)


class TestFlops:
    def test_conv_flops(self):
        # [1,8,16,16] -> [1,16,16,16] with 3x3: 2 * out_elems * cg * kh * kw
        got = flops("Conv", [f32(1, 8, 16, 16), f32(16, 8, 3, 3)], [f32(1, 16, 16, 16)],
                    {"kernel_shape": (3, 3)})
        assert got == 2.0 * (16 * 16 * 16) * 8 * 9

    def test_matmul_flops(self):
        got = flops("MatMul", [f32(4, 8), f32(8, 3)], [f32(4, 3)])
        assert got == 2.0 * 12 * 8

    def test_elementwise_scales_with_elems(self):
        assert flops("Relu", [f32(10)], [f32(10)]) == 10
        assert flops("Sigmoid", [f32(10)], [f32(10)]) > flops("Relu", [f32(10)], [f32(10)])

    def test_view_ops_free(self):
        assert flops("Reshape", [f32(2, 8)], [f32(16)], {"shape": (16,)}) == 0.0
        assert node_bytes(Node("t", "Reshape", ["i"], ["o"], {"shape": (16,)}),
                          [f32(2, 8)], [f32(16)]) == 0.0

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="no flop rule"):
            flops("Quux", [f32(2)], [f32(2)])

    def test_fused_conv_costs_more_than_plain(self):
        plain = flops("Conv", [f32(1, 8, 8, 8), f32(8, 8, 3, 3)], [f32(1, 8, 8, 8)],
                      {"kernel_shape": (3, 3)})
        fused = flops("FusedConv", [f32(1, 8, 8, 8), f32(8, 8, 3, 3)], [f32(1, 8, 8, 8)],
                      {"kernel_shape": (3, 3), "activation": "Relu"})
        assert fused > plain

    def test_fused_conv_add_includes_residual(self):
        base = flops("Conv", [f32(1, 8, 8, 8), f32(8, 8, 3, 3)], [f32(1, 8, 8, 8)],
                     {"kernel_shape": (3, 3)})
        fused = flops("FusedConvAdd",
                      [f32(1, 8, 8, 8), f32(8, 8, 3, 3), f32(1, 8, 8, 8)],
                      [f32(1, 8, 8, 8)], {"kernel_shape": (3, 3)})
        assert fused == base + 8 * 8 * 8  # + one add per output element

    def test_gemm_flops_respect_transpose(self):
        # A [8,4] transA -> K=8; C = [4,3]
        got = flops("Gemm", [f32(8, 4), f32(8, 3)], [f32(4, 3)], {"transA": 1})
        assert got == 2.0 * (4 * 3) * 8

    def test_gemm_bias_adds_output_elems(self):
        without = flops("Gemm", [f32(4, 8), f32(8, 3)], [f32(4, 3)])
        with_bias = flops("Gemm", [f32(4, 8), f32(8, 3), f32(3)], [f32(4, 3)])
        assert with_bias == without + 12

    def test_pool_flops_scale_with_kernel(self):
        small = flops("MaxPool", [f32(1, 4, 8, 8)], [f32(1, 4, 4, 4)],
                      {"kernel_shape": (2, 2)})
        large = flops("MaxPool", [f32(1, 4, 8, 8)], [f32(1, 4, 4, 4)],
                      {"kernel_shape": (3, 3)})
        assert small == 4 * 4 * 4 * 4 and large > small

    def test_data_movement_ops_costed_by_bytes_only(self):
        n = Node("t", "Concat", ["a", "b"], ["o"], {"axis": 0})
        ins, outs = [f32(2, 4), f32(2, 4)], [f32(4, 4)]
        assert node_flops(n, ins, outs) == 0.0
        assert node_bytes(n, ins, outs) == (8 + 8 + 16) * 4

    def test_batchnorm_models_folded_scale_shift(self):
        params = [f32(8)] * 4
        got = flops("BatchNormalization", [f32(1, 8, 4, 4), *params], [f32(1, 8, 4, 4)])
        assert got == 2.0 * (8 * 4 * 4)


class TestCostModel:
    def test_latency_positive_and_additive(self, conv_chain):
        cm = CostModel()
        costs = cm.graph_costs(conv_chain)
        assert all(c.latency > 0 for c in costs)
        assert cm.graph_latency(conv_chain) == pytest.approx(sum(c.latency for c in costs))

    def test_fusion_reduces_latency(self, conv_chain):
        from repro.optimizer import OrtLikeOptimizer
        cm = CostModel()
        opt = OrtLikeOptimizer().optimize(conv_chain)
        assert cm.graph_latency(opt) < cm.graph_latency(conv_chain)

    def test_launch_overhead_floor(self):
        b = GraphBuilder("tiny", seed=0)
        x = b.input("x", (1,))
        g = b.build([b.relu(x)])
        cm = CostModel(launch_overhead=5e-6)
        assert cm.graph_latency(g) >= 5e-6

    def test_flop_efficiency_scales(self, conv_chain):
        slow = CostModel(flop_efficiency={"Conv": 0.5})
        fast = CostModel()
        assert slow.graph_latency(conv_chain) > fast.graph_latency(conv_chain)

    def test_bandwidth_bound_elementwise(self):
        b = GraphBuilder("ew", seed=0)
        x = b.input("x", (1, 64, 64, 64))
        g = b.build([b.relu(x)])
        cm = CostModel()
        (cost,) = cm.graph_costs(g)
        mem_time = cost.bytes_moved / cm.memory_bandwidth
        assert cost.latency == pytest.approx(cm.launch_overhead + mem_time)

    def test_view_ops_pay_reduced_overhead(self):
        b = GraphBuilder("view", seed=0)
        x = b.input("x", (2, 8))
        g = b.build([b.reshape(x, (16,))])
        cm = CostModel()
        (cost,) = cm.graph_costs(g)
        assert cost.latency == pytest.approx(cm.zero_cost_overhead)

    def test_unknown_op_rejected_before_costing(self, conv_chain):
        cm = CostModel()
        bogus = Node("b", "NoSuchOp", ["x"], ["y"])
        with pytest.raises(KeyError):
            cm.node_cost(bogus, [f32(2)], [f32(2)])

    def test_graph_costs_deterministic(self, conv_chain):
        cm = CostModel()
        first = cm.graph_costs(conv_chain)
        second = cm.graph_costs(conv_chain)
        assert [c.node_name for c in first] == [c.node_name for c in second]
        assert [c.latency for c in first] == [c.latency for c in second]

    def test_graph_costs_cover_every_node(self, conv_chain):
        costs = CostModel().graph_costs(conv_chain)
        assert {c.node_name for c in costs} == {n.name for n in conv_chain.nodes}
