"""Tests for the graph executor."""

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.runtime import ExecutionError, Executor, graphs_equivalent, random_inputs, run_graph


class TestExecutor:
    def test_runs_conv_chain(self, conv_chain):
        out = run_graph(conv_chain)
        assert list(out.values())[0].shape == (1, 10)

    def test_missing_feed(self, conv_chain):
        with pytest.raises(ExecutionError, match="missing feed"):
            Executor(conv_chain).run({})

    def test_wrong_feed_shape(self, conv_chain):
        with pytest.raises(ExecutionError, match="shape"):
            Executor(conv_chain).run({"x": np.zeros((1, 3, 4, 4), dtype=np.float32)})

    def test_fetch_intermediate(self, conv_chain):
        feeds = random_inputs(conv_chain)
        some_value = conv_chain.nodes[0].outputs[0]
        out = Executor(conv_chain).run(feeds, fetch=[some_value])
        assert some_value in out

    def test_fetch_unknown(self, conv_chain):
        with pytest.raises(ExecutionError, match="never produced"):
            Executor(conv_chain).run(random_inputs(conv_chain), fetch=["ghost"])

    def test_deterministic(self, conv_chain):
        feeds = random_inputs(conv_chain, seed=5)
        a = Executor(conv_chain).run(feeds)
        b = Executor(conv_chain).run(feeds)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_shape_check_catches_drift(self, conv_chain):
        # corrupt the recorded type of one intermediate value
        from repro.ir.dtypes import TensorType
        name = conv_chain.nodes[0].outputs[0]
        old = conv_chain.value_types[name]
        conv_chain.value_types[name] = TensorType(old.dtype, (9, 9, 9, 9))
        try:
            with pytest.raises(ExecutionError, match="produced shape"):
                Executor(conv_chain).run(random_inputs(conv_chain))
        finally:
            conv_chain.value_types[name] = old


class TestRandomInputs:
    def test_int_inputs_bounded(self, bert_model):
        feeds = random_inputs(bert_model)
        ids = feeds["input_ids"]
        assert ids.dtype == np.int64
        assert ids.min() >= 0

    def test_seeded(self, conv_chain):
        a = random_inputs(conv_chain, seed=1)
        b = random_inputs(conv_chain, seed=1)
        np.testing.assert_array_equal(a["x"], b["x"])


class TestEquivalence:
    def test_identical_graphs_equivalent(self, conv_chain):
        assert graphs_equivalent(conv_chain, conv_chain.clone())

    def test_different_weights_not_equivalent(self):
        from ..conftest import make_conv_chain
        assert not graphs_equivalent(make_conv_chain(seed=0), make_conv_chain(seed=1))

    def test_different_outputs_not_equivalent(self, conv_chain, mlp):
        assert not graphs_equivalent(conv_chain, mlp)


class TestModelExecution:
    def test_bert_runs(self, bert_model):
        out = run_graph(bert_model)
        (arr,) = out.values()
        assert np.isfinite(arr).all()

    def test_resnet_runs(self, resnet_model):
        out = run_graph(resnet_model)
        (arr,) = out.values()
        assert arr.shape == (1, 100)
        assert np.isfinite(arr).all()
