"""Zoo-wide functional-equivalence sweep: both optimizers, all models.

This is the load-bearing guarantee of §4.3 (reassembly correctness
follows from per-subgraph optimizer correctness), certified model by
model through the executor.
"""

import pytest

from repro.models import build_model, list_models
from repro.optimizer import HidetLikeOptimizer, OrtLikeOptimizer
from repro.runtime import graphs_equivalent

ALL_MODELS = list_models()


@pytest.mark.parametrize("name", ALL_MODELS)
def test_ort_equivalence(name):
    g = build_model(name)
    assert graphs_equivalent(g, OrtLikeOptimizer().optimize(g), n_trials=1)


@pytest.mark.parametrize("name", ALL_MODELS)
def test_hidet_equivalence(name):
    g = build_model(name)
    assert graphs_equivalent(g, HidetLikeOptimizer().optimize(g), n_trials=1)


@pytest.mark.parametrize("name", ["seresnet", "xlm", "inception", "mnasnet", "resnext", "alexnet"])
def test_proteus_roundtrip_remaining_models(name):
    """Complements tests/core/test_proteus.py's roundtrip set so every
    zoo family has an end-to-end partition-optimize-reassemble check."""
    from repro.core import Proteus, ProteusConfig
    g = build_model(name)
    p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=2))
    rec = p.run_pipeline(g, OrtLikeOptimizer())
    assert graphs_equivalent(g, rec, n_trials=1)
