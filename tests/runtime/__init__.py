"""runtime tests."""
