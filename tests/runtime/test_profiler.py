"""Tests for the latency profiler."""

import pytest

from repro.optimizer import OrtLikeOptimizer
from repro.runtime import profile_graph, speedup
from repro.runtime.cost_model import CostModel


class TestProfile:
    def test_report_totals_consistent(self, conv_chain):
        rep = profile_graph(conv_chain)
        assert rep.total_latency == pytest.approx(sum(c.latency for c in rep.per_op))
        assert rep.total_ns == pytest.approx(rep.total_latency * 1e9)
        assert rep.total_us == pytest.approx(rep.total_latency * 1e6)

    def test_by_op_type_sums_to_total(self, conv_chain):
        rep = profile_graph(conv_chain)
        assert sum(rep.by_op_type().values()) == pytest.approx(rep.total_latency)

    def test_hotspots_sorted(self, conv_chain):
        hs = profile_graph(conv_chain).hotspots(3)
        assert len(hs) == 3
        assert hs[0].latency >= hs[1].latency >= hs[2].latency

    def test_summary_mentions_graph(self, conv_chain):
        assert conv_chain.name in profile_graph(conv_chain).summary()


class TestSpeedup:
    def test_optimizer_speedup_gt_one(self, conv_chain):
        opt = OrtLikeOptimizer().optimize(conv_chain)
        assert speedup(conv_chain, opt) > 1.0

    def test_self_speedup_is_one(self, conv_chain):
        assert speedup(conv_chain, conv_chain) == pytest.approx(1.0)

    def test_custom_cost_model(self, conv_chain):
        opt = OrtLikeOptimizer().optimize(conv_chain)
        cm = CostModel(launch_overhead=10e-6)
        # huge launch overhead exaggerates fusion benefit
        assert speedup(conv_chain, opt, cm) > speedup(conv_chain, opt)
