"""Tests for the latency profiler and the wall-clock timing primitive."""

import pytest

from repro.optimizer import OrtLikeOptimizer
from repro.runtime import (
    WallClockStats,
    percentile,
    profile_graph,
    speedup,
    time_callable,
)
from repro.runtime.cost_model import CostModel


class TestProfile:
    def test_report_totals_consistent(self, conv_chain):
        rep = profile_graph(conv_chain)
        assert rep.total_latency == pytest.approx(sum(c.latency for c in rep.per_op))
        assert rep.total_ns == pytest.approx(rep.total_latency * 1e9)
        assert rep.total_us == pytest.approx(rep.total_latency * 1e6)

    def test_by_op_type_sums_to_total(self, conv_chain):
        rep = profile_graph(conv_chain)
        assert sum(rep.by_op_type().values()) == pytest.approx(rep.total_latency)

    def test_hotspots_sorted(self, conv_chain):
        hs = profile_graph(conv_chain).hotspots(3)
        assert len(hs) == 3
        assert hs[0].latency >= hs[1].latency >= hs[2].latency

    def test_summary_mentions_graph(self, conv_chain):
        assert conv_chain.name in profile_graph(conv_chain).summary()


class TestSpeedup:
    def test_optimizer_speedup_gt_one(self, conv_chain):
        opt = OrtLikeOptimizer().optimize(conv_chain)
        assert speedup(conv_chain, opt) > 1.0

    def test_self_speedup_is_one(self, conv_chain):
        assert speedup(conv_chain, conv_chain) == pytest.approx(1.0)

    def test_custom_cost_model(self, conv_chain):
        opt = OrtLikeOptimizer().optimize(conv_chain)
        cm = CostModel(launch_overhead=10e-6)
        # huge launch overhead exaggerates fusion benefit
        assert speedup(conv_chain, opt, cm) > speedup(conv_chain, opt)


class TestTimeCallable:
    def test_warmup_runs_before_and_outside_measurement(self):
        calls = []
        stats = time_callable(lambda: calls.append(len(calls)), rounds=3, warmup=2)
        assert len(calls) == 5  # 2 warmup + 3 measured
        assert stats.rounds == 3
        assert stats.warmup == 2
        assert len(stats.times_ns) == 3

    def test_zero_warmup_allowed(self):
        stats = time_callable(lambda: None, rounds=2, warmup=0)
        assert stats.warmup == 0 and stats.rounds == 2

    def test_rejects_bad_round_counts(self):
        with pytest.raises(ValueError, match="rounds"):
            time_callable(lambda: None, rounds=0)
        with pytest.raises(ValueError, match="warmup"):
            time_callable(lambda: None, warmup=-1)

    def test_uses_injected_monotonic_timer(self):
        # deterministic fake perf_counter_ns: each call advances 1000 ns,
        # so every measured round is exactly 1000 ns regardless of host.
        ticks = iter(range(0, 100_000, 1000))
        stats = time_callable(lambda: None, rounds=4, warmup=1, timer=lambda: next(ticks))
        assert stats.times_ns == (1000, 1000, 1000, 1000)
        assert stats.median_ns == 1000
        assert stats.median_s == pytest.approx(1e-6)

    def test_timings_are_positive_with_real_timer(self):
        stats = time_callable(lambda: sum(range(1000)), rounds=3, warmup=1)
        assert all(t > 0 for t in stats.times_ns)
        assert stats.min_ns <= stats.median_ns <= stats.p95_ns


class TestWallClockStats:
    def test_derived_statistics(self):
        stats = WallClockStats(times_ns=(100, 300, 200, 500, 400), warmup=0)
        assert stats.median_ns == 300
        assert stats.min_ns == 100
        assert stats.mean_ns == 300
        assert stats.p95_ns == 500
        assert stats.p95_s == pytest.approx(5e-7)

    def test_even_count_median_interpolates(self):
        stats = WallClockStats(times_ns=(100, 200, 300, 400), warmup=0)
        assert stats.median_ns == 250


class TestPercentile:
    def test_nearest_rank(self):
        vals = [10, 20, 30, 40, 50]
        assert percentile(vals, 0) == 10
        assert percentile(vals, 50) == 30
        assert percentile(vals, 95) == 50
        assert percentile(vals, 100) == 50

    def test_unsorted_input(self):
        assert percentile([50, 10, 30], 50) == 30

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
