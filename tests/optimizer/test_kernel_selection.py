"""Tests for the Winograd kernel-selection pass (§6.1 mechanism)."""

import pytest

from repro.ir import GraphBuilder
from repro.models import build_model
from repro.optimizer import OrtLikeOptimizer
from repro.optimizer.passes import WinogradConvSelection
from repro.runtime import CostModel, graphs_equivalent


def conv_graph(channels, kernel=3, stride=1, group=1):
    b = GraphBuilder("t", seed=0)
    x = b.input("x", (1, channels, 16, 16))
    h = b.conv(x, channels, kernel=kernel, stride=stride, group=group)
    return b.build([h])


class TestSelection:
    def test_tags_eligible_convs(self):
        g = conv_graph(64)
        assert WinogradConvSelection().run(g)
        assert g.nodes[-1].attr("algo") == "winograd"

    def test_skips_1x1(self):
        g = conv_graph(64, kernel=1)
        assert not WinogradConvSelection().run(g)

    def test_skips_strided(self):
        g = conv_graph(64, stride=2)
        assert not WinogradConvSelection().run(g)

    def test_skips_grouped(self):
        g = conv_graph(64, group=64)
        assert not WinogradConvSelection().run(g)

    def test_idempotent(self):
        g = conv_graph(64)
        p = WinogradConvSelection()
        assert p.run(g)
        assert not p.run(g)


class TestCostEffect:
    def test_wide_conv_speeds_up(self):
        g = conv_graph(64)
        tagged = g.clone()
        WinogradConvSelection().run(tagged)
        cm = CostModel()
        assert cm.graph_latency(tagged) < cm.graph_latency(g)

    def test_narrow_conv_slows_down(self):
        g = conv_graph(8)
        tagged = g.clone()
        WinogradConvSelection().run(tagged)
        cm = CostModel()
        assert cm.graph_latency(tagged) > cm.graph_latency(g)

    def test_semantics_unchanged(self):
        g = conv_graph(16)
        tagged = g.clone()
        WinogradConvSelection().run(tagged)
        assert graphs_equivalent(g, tagged)


class TestCaseStudyShape:
    def test_nats_slowdown_preserved_by_proteus(self):
        """The §6.1 result: direct and Proteus slowdowns within a few %."""
        from repro.core import Proteus, ProteusConfig
        model = build_model("nats", widths=(16, 16, 16), seed=7)
        optimizer = OrtLikeOptimizer(kernel_selection=True)
        cm = CostModel()
        base = cm.graph_latency(model)
        direct = cm.graph_latency(optimizer.optimize(model)) / base
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        prot = cm.graph_latency(p.run_pipeline(model, optimizer)) / base
        assert direct > 1.5  # the optimizer hurts the exotic model
        assert abs(prot / direct - 1) < 0.05

    def test_zoo_models_still_benefit(self):
        """Kernel selection must remain net-beneficial for wide CNNs."""
        cm = CostModel()
        g = build_model("resnext")
        opt = OrtLikeOptimizer(kernel_selection=True).optimize(g)
        assert cm.graph_latency(opt) < cm.graph_latency(g)
