"""Tests for the optimizer products (ORT-like, Hidet-like) end to end."""

import pytest

from repro.models import build_model, list_models
from repro.optimizer import (
    HidetLikeOptimizer,
    OrtLikeOptimizer,
    PassManager,
    hidet_cost_model,
)
from repro.optimizer.passes import IdentityElimination
from repro.runtime import CostModel, graphs_equivalent


class TestOrtLike:
    def test_levels_validated(self):
        with pytest.raises(ValueError, match="level"):
            OrtLikeOptimizer(level="turbo")

    def test_none_level_is_clone(self, conv_chain):
        out = OrtLikeOptimizer(level="none").optimize(conv_chain)
        assert out is not conv_chain
        assert out.num_nodes == conv_chain.num_nodes

    def test_basic_weaker_than_extended(self, resnet_model):
        basic = OrtLikeOptimizer(level="basic").optimize(resnet_model)
        extended = OrtLikeOptimizer(level="extended").optimize(resnet_model)
        assert extended.num_nodes < basic.num_nodes <= resnet_model.num_nodes

    def test_preserves_interface(self, resnet_model):
        out = OrtLikeOptimizer().optimize(resnet_model)
        assert out.input_names == resnet_model.input_names
        assert out.output_names == resnet_model.output_names

    def test_does_not_mutate_input(self, conv_chain):
        n = conv_chain.num_nodes
        OrtLikeOptimizer().optimize(conv_chain)
        assert conv_chain.num_nodes == n

    @pytest.mark.parametrize("name", ["resnet", "mobilenet", "bert", "alexnet", "nats"])
    def test_equivalence_across_zoo(self, name):
        g = build_model(name)
        opt = OrtLikeOptimizer().optimize(g)
        assert graphs_equivalent(g, opt, n_trials=1)

    def test_speedup_positive_everywhere(self):
        cm = CostModel()
        for name in ["resnet", "mobilenet", "densenet", "bert"]:
            g = build_model(name)
            opt = OrtLikeOptimizer().optimize(g)
            assert cm.graph_latency(opt) < cm.graph_latency(g)


class TestHidetLike:
    def test_equivalence(self, resnet_model):
        opt = HidetLikeOptimizer().optimize(resnet_model)
        assert graphs_equivalent(resnet_model, opt, n_trials=1)

    def test_no_skip_layernorm(self, bert_model):
        # Hidet's pass set lacks the ORT transformer contrib fusions
        out = HidetLikeOptimizer().optimize(bert_model)
        assert "SkipLayerNormalization" not in out.opcode_histogram()
        ort_out = OrtLikeOptimizer().optimize(bert_model)
        assert "SkipLayerNormalization" in ort_out.opcode_histogram()

    def test_hidet_cost_model_leaner(self):
        assert hidet_cost_model().launch_overhead < CostModel().launch_overhead


class TestPassManager:
    def test_reaches_fixpoint(self, conv_chain):
        pm = PassManager([IdentityElimination()], max_rounds=4)
        pm.optimize(conv_chain)
        assert pm.last_report.rounds <= 2  # no identities: 1 round, no change

    def test_max_rounds_validated(self):
        with pytest.raises(ValueError, match="max_rounds"):
            PassManager([], max_rounds=0)

    def test_report_summary(self, resnet_model):
        opt = OrtLikeOptimizer()
        opt.optimize(resnet_model)
        summary = opt._manager.last_report.summary()
        assert "rounds" in summary
