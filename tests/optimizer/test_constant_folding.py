"""Tests for constant folding."""

import numpy as np

from repro.ir import GraphBuilder
from repro.optimizer.passes import ConstantFolding, DeadCodeElimination
from repro.runtime import graphs_equivalent


class TestConstantFolding:
    def test_folds_constant_subexpression(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        c1 = b.constant(np.ones(4, dtype=np.float32))
        c2 = b.constant(np.full(4, 2.0, dtype=np.float32))
        s = b.add(c1, c2)  # constant: should fold
        out = b.add(x, s)
        g = b.build([out])
        before = g.clone()
        assert ConstantFolding().run(g)
        assert g.num_nodes == 1
        assert graphs_equivalent(before, g)

    def test_does_not_fold_runtime_values(self, conv_chain):
        # conv chain consumes the graph input everywhere: nothing to fold
        assert not ConstantFolding().run(conv_chain)

    def test_respects_size_guard(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        c = b.constant(np.ones((64, 64), dtype=np.float32))
        big = b.add(c, c)
        flat = b.op("Reshape", [big], attrs={"shape": (4096,)})
        b._record_type(flat)
        red = b.op("ReduceSum", [flat], attrs={"axes": (0,), "keepdims": 0})
        b._record_type(red)
        out = b.add(x, red)
        g = b.build([out])
        assert not ConstantFolding(max_elements=10).run(g)
        assert ConstantFolding(max_elements=10**6).run(g)

    def test_never_folds_graph_outputs(self):
        b = GraphBuilder("t", seed=0)
        b.input("x", (1, 4))
        c = b.constant(np.ones(4, dtype=np.float32))
        out = b.relu(c)
        g = b.build([out])
        assert not ConstantFolding().run(g)

    def test_chain_folds_fully(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        c = b.constant(np.full(4, -2.0, dtype=np.float32))
        h = b.relu(c)
        h = b.add(h, b.scalar(1.0))
        out = b.mul(x, h)
        g = b.build([out])
        before = g.clone()
        p = ConstantFolding()
        while p.run(g):
            pass
        DeadCodeElimination().run(g)
        assert g.num_nodes == 1
        assert graphs_equivalent(before, g)
