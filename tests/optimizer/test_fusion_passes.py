"""Tests for fusion passes: conv, matmul, transformer, shape fusions.

Every fusion test checks both the structural rewrite AND functional
equivalence through the executor — the property Proteus reassembly
depends on.
"""

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.ir.shape_inference import infer_shapes
from repro.models.common import decomposed_gelu
from repro.optimizer.passes import (
    ConvActivationFusion,
    ConvAddFusion,
    ConvBatchNormFusion,
    DeadCodeElimination,
    GeluFusion,
    GemmActivationFusion,
    MatMulAddFusion,
    ReshapeFusion,
    SkipLayerNormFusion,
    TransposeFusion,
    UnusedInitializerPruning,
)
from repro.runtime import graphs_equivalent


def run_pass(graph, *passes):
    infer_shapes(graph)
    changed = False
    for p in passes:
        changed |= p.run(graph)
        infer_shapes(graph)
    return changed


class TestConvBNFusion:
    def build(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.conv(x, 8, bias=False)
        h = b.batchnorm(h)
        return b.build([h])

    def test_fuses_and_equivalent(self):
        g = self.build()
        before = g.clone()
        assert run_pass(g, ConvBatchNormFusion())
        assert [n.op_type for n in g.nodes] == ["Conv"]
        assert graphs_equivalent(before, g)

    def test_fused_conv_gains_bias(self):
        g = self.build()
        run_pass(g, ConvBatchNormFusion())
        assert len(g.nodes[0].inputs) == 3

    def test_requires_single_consumer(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        conv = b.conv(x, 4, bias=False)
        bn = b.batchnorm(conv)
        other = b.relu(conv)  # second consumer of the conv output
        g = b.build([bn, other])
        assert not run_pass(g, ConvBatchNormFusion())

    def test_with_existing_bias(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.conv(x, 8, bias=True)
        h = b.batchnorm(h)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, ConvBatchNormFusion())
        assert graphs_equivalent(before, g)


class TestConvActivationFusion:
    @pytest.mark.parametrize("act", ["relu", "sigmoid", "tanh", "hardswish"])
    def test_fuses_activations(self, act):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.conv(x, 8)
        h = getattr(b, act)(h)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, ConvActivationFusion())
        assert [n.op_type for n in g.nodes] == ["FusedConv"]
        assert graphs_equivalent(before, g)

    def test_fuses_relu6_clip(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.clip(b.conv(x, 8), 0.0, 6.0)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, ConvActivationFusion())
        assert g.nodes[0].attr("activation") == "Clip"
        assert graphs_equivalent(before, g)

    def test_skips_general_clip(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.clip(b.conv(x, 8), -1.0, 1.0)
        g = b.build([h])
        assert not run_pass(g, ConvActivationFusion())

    def test_skips_softmax(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.softmax(b.conv(x, 8))
        g = b.build([h])
        assert not run_pass(g, ConvActivationFusion())


class TestConvAddFusion:
    def build_residual(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        skip = b.relu(x)
        h = b.conv(skip, 4)
        h = b.add(h, skip)
        h = b.relu(h)
        return b.build([h])

    def test_fuses_residual_and_activation(self):
        g = self.build_residual()
        before = g.clone()
        assert run_pass(g, ConvAddFusion(), ConvActivationFusion())
        ops = [n.op_type for n in g.topological_order()]
        assert "FusedConvAdd" in ops
        fused = next(n for n in g.nodes if n.op_type == "FusedConvAdd")
        assert fused.attr("activation") == "Relu"
        assert graphs_equivalent(before, g)

    def test_skips_constant_add(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        h = b.conv(x, 4)
        h = b.add(h, b.constant(np.ones((1, 4, 8, 8), dtype=np.float32)))
        g = b.build([h])
        assert not run_pass(g, ConvAddFusion())

    def test_skips_broadcast_add(self):
        # Add broadcasts, FusedConvAdd does not: a residual of a
        # different (broadcastable) shape must not fuse.  Obfuscated
        # subgraphs hit this pairing (regression: the fused graph failed
        # shape inference with "residual shape != conv output").
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8, 8))
        s = b.input("s", (1, 4, 1, 1))
        h = b.conv(x, 4)
        h = b.add(h, s)
        g = b.build([h])
        assert not run_pass(g, ConvAddFusion())
        assert all(n.op_type != "FusedConvAdd" for n in g.nodes)


class TestMatMulFusion:
    def test_2d_becomes_gemm(self, mlp):
        before = mlp.clone()
        assert run_pass(mlp, MatMulAddFusion())
        ops = [n.op_type for n in mlp.nodes]
        assert ops.count("Gemm") == 2
        assert "MatMul" not in ops
        assert graphs_equivalent(before, mlp)

    def test_3d_becomes_fused_matmul(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 6, 8))
        h = b.linear(x, 8, 16)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, MatMulAddFusion())
        assert [n.op_type for n in g.nodes] == ["FusedMatMul"]
        assert graphs_equivalent(before, g)

    def test_activation_epilogue(self, mlp):
        before = mlp.clone()
        run_pass(mlp, MatMulAddFusion(), GemmActivationFusion())
        ops = [n.op_type for n in mlp.topological_order()]
        assert "FusedGemm" in ops
        assert "Relu" not in ops
        assert graphs_equivalent(before, mlp)

    def test_skips_nonconstant_bias(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8))
        y = b.input("y", (1, 4))
        w = b.weight((8, 4))
        h = b.matmul(x, w)
        h = b.add(h, y)  # runtime bias: not fusable
        g = b.build([h])
        assert not run_pass(g, MatMulAddFusion())


class TestGeluFusion:
    def test_fuses_decomposed_gelu(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8))
        h = decomposed_gelu(b, x)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, GeluFusion(), DeadCodeElimination(), UnusedInitializerPruning())
        assert [n.op_type for n in g.nodes] == ["Gelu"]
        assert graphs_equivalent(before, g)

    def test_requires_correct_constants(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 8))
        inner = b.div(x, b.scalar(3.0))  # wrong: not sqrt(2)
        inner = b.erf(inner)
        inner = b.add(inner, b.scalar(1.0))
        out = b.mul(x, inner)
        out = b.mul(out, b.scalar(0.5))
        g = b.build([out])
        assert not run_pass(g, GeluFusion())


class TestSkipLayerNormFusion:
    def test_fuses_residual_ln(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8))
        y = b.tanh(x)
        h = b.add(x, y)
        h = b.layernorm(h, 8)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, SkipLayerNormFusion())
        assert "SkipLayerNormalization" in [n.op_type for n in g.nodes]
        assert graphs_equivalent(before, g)

    def test_skips_bias_add(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4, 8))
        h = b.add(x, b.weight((8,)))  # constant add = bias, not a skip
        h = b.layernorm(h, 8)
        g = b.build([h])
        assert not run_pass(g, SkipLayerNormFusion())


class TestShapeFusion:
    def test_reshape_chain_collapses(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 3, 4))
        h = b.reshape(x, (1, 6, 4))
        h = b.reshape(h, (1, 24))
        h = b.relu(h)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, ReshapeFusion())
        reshapes = [n for n in g.nodes if n.op_type == "Reshape"]
        assert len(reshapes) == 1
        assert graphs_equivalent(before, g)

    def test_flatten_after_reshape(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 2, 3, 4))
        h = b.reshape(x, (1, 6, 4))
        h = b.flatten(h)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, ReshapeFusion())
        assert [n.op_type for n in g.nodes] == ["Reshape"]
        assert graphs_equivalent(before, g)

    def test_transpose_composition(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 4))
        h = b.transpose(x, (1, 0, 2))
        h = b.transpose(h, (0, 2, 1))
        h = b.relu(h)
        g = b.build([h])
        before = g.clone()
        assert run_pass(g, TransposeFusion())
        transposes = [n for n in g.nodes if n.op_type == "Transpose"]
        assert len(transposes) == 1
        assert graphs_equivalent(before, g)

    def test_transpose_cancellation(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (2, 3, 4))
        h = b.transpose(x, (1, 0, 2))
        h = b.transpose(h, (1, 0, 2))  # cancels
        h = b.relu(h)
        g = b.build([h])
        before = g.clone()
        run_pass(g, TransposeFusion(), TransposeFusion(), DeadCodeElimination())
        assert [n.op_type for n in g.topological_order() if n.op_type == "Transpose"] == []
        assert graphs_equivalent(before, g)
