"""Tests for cleanup passes (identity, DCE, CSE, initializer pruning)."""

import numpy as np

from repro.ir import GraphBuilder
from repro.optimizer.passes import (
    CommonSubexpressionElimination,
    DeadCodeElimination,
    IdentityElimination,
    UnusedInitializerPruning,
)
from repro.runtime import graphs_equivalent


class TestIdentityElimination:
    def test_removes_dropout_identity(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        h = b.identity(x)
        h = b.dropout(h)
        h = b.relu(h)
        g = b.build([h])
        before = g.clone()
        assert IdentityElimination().run(g)
        assert g.num_nodes == 1
        assert graphs_equivalent(before, g)

    def test_keeps_identity_producing_graph_output(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        h = b.identity(x)
        g = b.build([h])
        assert not IdentityElimination().run(g)
        assert g.num_nodes == 1

    def test_idempotent(self, conv_chain):
        p = IdentityElimination()
        p.run(conv_chain)
        assert not p.run(conv_chain)


class TestDCE:
    def test_removes_dead_chain(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        live = b.relu(x)
        dead = b.tanh(x)
        b.sigmoid(dead)  # dead consumer of dead value
        g = b.build([live])
        assert DeadCodeElimination().run(g)
        assert g.num_nodes == 1
        assert g.nodes[0].op_type == "Relu"

    def test_keeps_live_nodes(self, conv_chain):
        n = conv_chain.num_nodes
        DeadCodeElimination().run(conv_chain)
        assert conv_chain.num_nodes == n


class TestCSE:
    def test_merges_duplicates(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        a = b.relu(x)
        c = b.relu(x)  # duplicate of a
        out = b.add(a, c)
        g = b.build([out])
        before = g.clone()
        assert CommonSubexpressionElimination().run(g)
        relus = [n for n in g.nodes if n.op_type == "Relu"]
        assert len(relus) == 1
        DeadCodeElimination().run(g)
        assert graphs_equivalent(before, g)

    def test_respects_attrs(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        a = b.softmax(x, axis=-1)
        c = b.softmax(x, axis=0)  # different axis: NOT a duplicate
        out = b.add(a, c)
        g = b.build([out])
        assert not CommonSubexpressionElimination().run(g)

    def test_keeps_graph_output_duplicate(self):
        b = GraphBuilder("t", seed=0)
        x = b.input("x", (1, 4))
        a = b.relu(x)
        c = b.relu(x)
        g = b.build([a, c])
        # the duplicate produces a graph output, must not be removed
        CommonSubexpressionElimination().run(g)
        assert {v.name for v in g.outputs} <= g.all_value_names()
        assert g.num_nodes == 2


class TestInitializerPruning:
    def test_prunes_unused(self, conv_chain):
        conv_chain.add_initializer("orphan", np.zeros(3, dtype=np.float32))
        assert UnusedInitializerPruning().run(conv_chain)
        assert "orphan" not in conv_chain.initializers

    def test_keeps_used(self, conv_chain):
        used_before = set(conv_chain.initializers)
        UnusedInitializerPruning().run(conv_chain)
        assert set(conv_chain.initializers) == used_before
