"""optimizer tests."""
