"""Smoke tests: every example script must run to completion."""

import os
import pathlib
import subprocess
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    # the examples import repro from src/ — make that work even when the
    # suite itself found it via pytest's pythonpath setting rather than
    # an exported PYTHONPATH.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [str(_ROOT / "src"), env.get("PYTHONPATH")] if p
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script.name} produced no output"
