"""RouterEndpoint: ring placement, fleet-wide dedup, failover, and the
dead-worker-tolerant metrics scrape.

Fake workers (the `tests/loadgen/test_fleet.py` idiom) drive the router
logic without subprocesses; one test runs real `LocalEndpoint` workers
to prove the dedup guarantee end to end.  Byte-identity of a routed
multi-worker fleet against a single worker is proven with real
processes in ``tests/loadgen/test_fleet.py`` and CI's cluster-smoke.
"""

import threading

import pytest

from repro.api.wire import ERR_UNKNOWN_JOB, EndpointError
from repro.cluster.router import RouterEndpoint
from repro.loadgen.fleet import FleetEndpoint, open_fleet_endpoint


class _Manifest:
    """Just enough sealed manifest for the router: a digest that is
    already verified in this process (`_seal` then only re-checks
    consistency, which is a no-op here)."""

    def __init__(self, digest):
        self.bucket_digest = digest
        self._verified = True

    def check_consistency(self):
        return None


class _FakeWorker:
    """In-process stand-in for an HTTP worker endpoint."""

    transport = "fake"
    _seq = 0

    def __init__(self, url, fail=False):
        self.url = url
        self.fail = fail
        self.metrics_fail = False
        self.stall = False
        self.block_on = None  # optional Event the fetch waits for
        self.submits = []  # digests, in arrival order
        self.await_calls = 0
        self.closed = False

    def submit(self, manifest):
        if self.fail:
            raise ConnectionError(f"{self.url} is down")
        self.submits.append(manifest.bucket_digest)
        _FakeWorker._seq += 1
        return f"job-{_FakeWorker._seq}"

    def status(self, job_id):
        raise AssertionError("not used")

    def await_receipt(self, job_id, timeout=None):
        self.await_calls += 1
        if self.stall:
            raise TimeoutError("still working")
        if self.block_on is not None:
            assert self.block_on.wait(timeout=30)
        return {"job": job_id, "worker": self.url}

    def metrics(self):
        if self.metrics_fail:
            raise ConnectionError(f"{self.url} died mid-scrape")
        return {
            "counters": {"completed_total": len(self.submits)},
            "cache_tiers": {
                "memory_hits": 3,
                "local_hits": 1,
                "shared_hits": 0,
                "misses": 1,
                "promotions": 1,
                "memory_entries": 2,
            },
        }

    def client_stats(self):
        if self.metrics_fail:
            raise ConnectionError(f"{self.url} died mid-scrape")
        return {"shed_total": 1, "retried_total": 0, "gave_up_total": 0}

    def close(self):
        self.closed = True


def _router(urls, vnodes=64):
    made = {}

    def factory(url):
        made[url] = _FakeWorker(url)
        return made[url]

    router = RouterEndpoint(
        [factory(u) for u in urls],
        urls=list(urls),
        endpoint_factory=factory,
        vnodes=vnodes,
    )
    return router, made


URLS = ["http://w1:1", "http://w2:1", "http://w3:1"]


class TestRingPlacement:
    def test_same_digest_always_lands_on_one_worker(self):
        router, made = _router(URLS)
        for _ in range(5):
            job = router.submit(_Manifest("sha256:repeat"))
            router.await_receipt(job, timeout=5)
        hit = [w for w in made.values() if w.submits]
        assert len(hit) == 1
        assert hit[0].submits == ["sha256:repeat"] * 5

    def test_placement_matches_the_ring(self):
        router, made = _router(URLS)
        for i in range(30):
            digest = f"sha256:{i:03d}"
            job = router.submit(_Manifest(digest))
            router.await_receipt(job, timeout=5)
            owner = router._ring.primary(digest)
            assert made[owner].submits[-1] == digest

    def test_distinct_digests_spread_over_workers(self):
        router, made = _router(URLS)
        for i in range(40):
            job = router.submit(_Manifest(f"sha256:{i:03d}"))
            router.await_receipt(job, timeout=5)
        assert sum(1 for w in made.values() if w.submits) >= 2
        assert router.metrics()["routing"]["routed_total"] == 40


class TestFleetWideDedup:
    def test_identical_inflight_submits_share_one_job(self):
        router, made = _router(URLS)
        j1 = router.submit(_Manifest("sha256:dup"))
        j2 = router.submit(_Manifest("sha256:dup"))
        assert j1 == j2
        assert sum(len(w.submits) for w in made.values()) == 1
        routing = router.metrics()["routing"]
        assert routing["dedup_hits"] == 1
        assert routing["in_flight_table"] == 1
        # both attached waiters share the single physical receipt fetch
        r1 = router.await_receipt(j1, timeout=5)
        r2 = router.await_receipt(j2, timeout=5)
        assert r1 is r2
        assert sum(w.await_calls for w in made.values()) == 1
        routing = router.metrics()["routing"]
        assert routing["in_flight_table"] == 0
        # fully claimed: the job id is forgotten, structurally
        with pytest.raises(EndpointError) as exc_info:
            router.await_receipt(j1, timeout=5)
        assert exc_info.value.code == ERR_UNKNOWN_JOB

    def test_concurrent_waiters_share_one_fetch(self):
        router, made = _router(URLS)
        release = threading.Event()
        for worker in made.values():
            worker.block_on = release
        j1 = router.submit(_Manifest("sha256:dup"))
        j2 = router.submit(_Manifest("sha256:dup"))
        receipts = []

        def wait(job):
            receipts.append(router.await_receipt(job, timeout=30))

        threads = [threading.Thread(target=wait, args=(j,)) for j in (j1, j2)]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join(timeout=30)
        assert len(receipts) == 2 and receipts[0] is receipts[1]
        assert sum(w.await_calls for w in made.values()) == 1

    def test_terminal_error_reaches_every_waiter(self):
        class _Exploding(_FakeWorker):
            def await_receipt(self, job_id, timeout=None):
                raise RuntimeError("optimizer crashed")

        worker = _Exploding("http://w1:1")
        router = RouterEndpoint([worker], urls=["http://w1:1"])
        j1 = router.submit(_Manifest("sha256:dup"))
        j2 = router.submit(_Manifest("sha256:dup"))
        assert j1 == j2
        with pytest.raises(RuntimeError, match="optimizer crashed"):
            router.await_receipt(j1, timeout=5)
        with pytest.raises(RuntimeError, match="optimizer crashed"):
            router.await_receipt(j2, timeout=5)
        assert router.metrics()["routing"]["in_flight_table"] == 0

    def test_sequential_resubmit_is_not_deduped(self):
        # dedup is for *in-flight* duplicates; a resubmit after the
        # receipt was claimed is a new job (served from cache, but its
        # own job).
        router, made = _router(URLS)
        j1 = router.submit(_Manifest("sha256:x"))
        router.await_receipt(j1, timeout=5)
        j2 = router.submit(_Manifest("sha256:x"))
        assert j2 != j1
        assert router.metrics()["routing"]["dedup_hits"] == 0


class TestFailover:
    def test_down_primary_fails_over_to_next_on_ring(self):
        router, made = _router(URLS)
        digest = "sha256:findme"
        order = router._ring.preference(digest)
        made[order[0]].fail = True
        job = router.submit(_Manifest(digest))
        assert made[order[1]].submits == [digest]
        router.await_receipt(job, timeout=5)
        routing = router.metrics()["routing"]
        assert routing["failover_total"] == 1
        # the dead primary is out of the submit rotation
        assert order[0] not in router.member_urls()

    def test_all_workers_down_raises_connection_error(self):
        router, made = _router(URLS)
        for worker in made.values():
            worker.fail = True
        with pytest.raises(ConnectionError):
            router.submit(_Manifest("sha256:x"))

    def test_timeout_releases_slot_but_keeps_routing(self):
        router, made = _router(["http://w1:1"])
        worker = made["http://w1:1"]
        worker.stall = True
        job = router.submit(_Manifest("sha256:x"))
        with pytest.raises(TimeoutError):
            router.await_receipt(job, timeout=0.01)
        assert router.metrics()["in_flight_per_worker"] == [0]
        worker.stall = False
        receipt = router.await_receipt(job, timeout=5)  # routing survived
        assert receipt["job"] == job


class TestLiveResharding:
    def test_set_members_reshards_the_ring(self):
        router, made = _router(URLS)
        assert sorted(router.metrics()["routing"]["ring_members"]) == sorted(URLS)
        retired = URLS[0]
        router.set_members(URLS[1:])
        assert sorted(router.metrics()["routing"]["ring_members"]) == sorted(
            URLS[1:]
        )
        # every digest the retired worker owned re-homes to a survivor
        for i in range(20):
            digest = f"sha256:{i:03d}"
            job = router.submit(_Manifest(digest))
            router.await_receipt(job, timeout=5)
        assert made[retired].submits == []

    def test_new_member_joins_the_ring(self):
        router, made = _router(URLS[:2])
        router.set_members(URLS)  # w3 joins via the factory
        assert sorted(router.metrics()["routing"]["ring_members"]) == sorted(URLS)
        for i in range(60):
            job = router.submit(_Manifest(f"sha256:{i:03d}"))
            router.await_receipt(job, timeout=5)
        assert made[URLS[2]].submits  # the joiner owns its arc


class TestDeadWorkerScrapes:
    """Satellite (f): a worker dying mid-scrape degrades to a per-worker
    status entry instead of poisoning the whole aggregation."""

    def test_metrics_tolerate_a_dead_worker(self):
        router, made = _router(URLS)
        made[URLS[1]].metrics_fail = True
        metrics = router.metrics()
        status = {s["url"]: s for s in metrics["worker_status"]}
        assert status[URLS[0]]["ok"] and status[URLS[2]]["ok"]
        assert not status[URLS[1]]["ok"]
        assert "died mid-scrape" in status[URLS[1]]["error"]
        # live workers still aggregate: 2 of 3 tier blocks summed
        assert metrics["cache_tiers"]["memory_hits"] == 6
        assert metrics["cache_tiers"]["memory_hit_rate"] == pytest.approx(0.6)

    def test_client_stats_skip_a_dead_worker(self):
        router, made = _router(URLS)
        made[URLS[0]].metrics_fail = True
        assert router.client_stats()["shed_total"] == 2


class TestWiring:
    def test_ring_is_the_default_fleet_routing(self):
        endpoint = open_fleet_endpoint("http://h:1,http://h:2")
        assert isinstance(endpoint, RouterEndpoint)
        endpoint.close()

    def test_round_robin_base_remains_available(self):
        endpoint = open_fleet_endpoint(
            "http://h:1,http://h:2", routing="round_robin"
        )
        assert type(endpoint) is FleetEndpoint
        endpoint.close()

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="routing"):
            open_fleet_endpoint("http://h:1", routing="random")


class TestRealWorkers:
    def test_dedup_over_local_workers_optimizes_once(self):
        """Two identical in-flight submissions against real LocalEndpoint
        workers: one optimization, one shared receipt."""
        from repro.api.clients import ModelOwner
        from repro.api.endpoint import LocalEndpoint
        from repro.api.manifest import BucketManifest
        from repro.core import ProteusConfig
        from repro.models import build_model

        bucket = ModelOwner(
            ProteusConfig(k=0, target_subgraph_size=8, seed=0)
        ).obfuscate(build_model("squeezenet")).bucket
        manifest = BucketManifest.from_bucket(bucket)
        workers = [LocalEndpoint("ortlike", workers=1) for _ in range(2)]
        with RouterEndpoint(workers) as router:
            j1 = router.submit(manifest)
            j2 = router.submit(manifest)
            assert j1 == j2
            r1 = router.await_receipt(j1, timeout=120)
            r2 = router.await_receipt(j2, timeout=120)
            assert r1 is r2
            metrics = router.metrics()
            assert metrics["routing"]["dedup_hits"] == 1
            assert metrics["counters"]["submitted_total"] == 1
