"""Consistent-hash ring: the remap math the router's locality rests on.

The satellite proof ISSUE.md asks for lives here: growing or shrinking
an N-worker ring remaps ~1/N (resp. ~1/(N+1)) of the key space — and
*only* the keys the joining (leaving) member gains (owned) — while
placement stays deterministic for a fixed membership regardless of
insertion order.  Everything is sha256-backed, so these tests are fully
deterministic: a tolerance band that passes once passes forever.
"""

import random

import pytest

from repro.cluster.ring import DEFAULT_VNODES, ConsistentHashRing

#: a deterministic key population large enough for the 1/N statistics.
KEYS = [f"sha256:{i:05d}" for i in range(1500)]


def _members(n, seed=0):
    return [f"http://10.0.{seed}.{i}:8080" for i in range(n)]


class TestRemapFraction:
    """Resizes remap ~1/N of keys, and only the right ones."""

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_grow_remaps_about_one_over_n_plus_one(self, n, seed):
        ring = ConsistentHashRing(_members(n, seed))
        before = {key: ring.primary(key) for key in KEYS}
        joiner = f"http://10.0.{seed}.new:8080"
        ring.add(joiner)
        moved = 0
        for key in KEYS:
            after = ring.primary(key)
            if after != before[key]:
                # a join may only *steal* keys, never shuffle the rest
                assert after == joiner
                moved += 1
        ideal = 1.0 / (n + 1)
        fraction = moved / len(KEYS)
        assert 0.3 * ideal <= fraction <= 2.0 * ideal, (
            f"grow {n}->{n + 1} moved {fraction:.3f} of keys "
            f"(ideal ~{ideal:.3f})"
        )

    @pytest.mark.parametrize("n", [3, 5, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shrink_remaps_only_the_leavers_keys(self, n, seed):
        members = _members(n, seed)
        ring = ConsistentHashRing(members)
        before = {key: ring.primary(key) for key in KEYS}
        leaver = members[n // 2]
        ring.remove(leaver)
        moved = 0
        for key in KEYS:
            after = ring.primary(key)
            if before[key] == leaver:
                # orphaned keys must re-home somewhere live
                assert after != leaver
                moved += 1
            else:
                # keys the leaver never owned must not move at all
                assert after == before[key]
        ideal = 1.0 / n
        fraction = moved / len(KEYS)
        assert 0.3 * ideal <= fraction <= 2.0 * ideal, (
            f"shrink {n}->{n - 1} moved {fraction:.3f} of keys "
            f"(ideal ~{ideal:.3f})"
        )

    def test_grow_then_shrink_is_identity(self):
        ring = ConsistentHashRing(_members(4))
        before = {key: ring.primary(key) for key in KEYS}
        ring.add("http://10.0.0.new:8080")
        ring.remove("http://10.0.0.new:8080")
        assert {key: ring.primary(key) for key in KEYS} == before


class TestDeterminism:
    """Fixed membership -> identical placement, everywhere, always."""

    @pytest.mark.parametrize("shuffle_seed", [1, 2, 3])
    def test_placement_ignores_insertion_order(self, shuffle_seed):
        members = _members(6)
        shuffled = list(members)
        random.Random(shuffle_seed).shuffle(shuffled)
        a = ConsistentHashRing(members)
        b = ConsistentHashRing(shuffled)
        for key in KEYS[:300]:
            assert a.primary(key) == b.primary(key)
            assert a.preference(key) == b.preference(key)

    def test_fresh_instance_agrees(self):
        # two independently built rings (e.g. two router processes)
        # must agree — placement may not depend on process state.
        a = ConsistentHashRing(_members(5))
        b = ConsistentHashRing(_members(5))
        assert [a.primary(k) for k in KEYS[:200]] == [
            b.primary(k) for k in KEYS[:200]
        ]

    def test_preference_head_is_primary_and_covers_all(self):
        ring = ConsistentHashRing(_members(4))
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert order[0] == ring.primary(key)
            assert sorted(order) == sorted(ring.members)
            assert len(set(order)) == len(order)
            assert ring.preference(key, 2) == order[:2]

    def test_every_member_owns_some_keys(self):
        ring = ConsistentHashRing(_members(4))
        owned = {ring.primary(key) for key in KEYS}
        assert owned == set(ring.members)


class TestMembership:
    def test_add_and_remove_are_idempotent(self):
        ring = ConsistentHashRing(["a", "b"])
        ring.add("a")
        assert len(ring) == 2
        ring.remove("zzz")
        assert len(ring) == 2
        ring.remove("a")
        ring.remove("a")
        assert ring.members == ["b"]

    def test_set_members_reshapes_and_dedups(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        ring.set_members(["b", "d", "b"])
        assert sorted(ring.members) == ["b", "d"]
        assert "a" not in ring and "b" in ring

    def test_set_members_is_order_insensitive(self):
        a = ConsistentHashRing(["x", "y"])
        a.set_members(["p", "q", "r"])
        b = ConsistentHashRing(["p", "q", "r"])
        for key in KEYS[:100]:
            assert a.primary(key) == b.primary(key)

    def test_empty_ring(self):
        ring = ConsistentHashRing()
        assert ring.preference("sha256:x") == []
        with pytest.raises(LookupError):
            ring.primary("sha256:x")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(vnodes=0)
        assert ConsistentHashRing(["a"], vnodes=1).primary("k") == "a"
        assert ConsistentHashRing().vnodes == DEFAULT_VNODES
