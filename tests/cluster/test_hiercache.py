"""Hierarchical cache: memory LRU over a private shard over the shared
store — promote on hit, write through, count every tier."""

import os

import pytest

from repro.cluster.hiercache import HierarchicalCache
from repro.serving.cache import OptimizationCache

KEY = "sha256-deadbeef_ortlike_default"
# the on-disk tiers only readmit schema-versioned payloads
PAYLOAD = {"payload_version": 1, "graph": {"name": "g"}, "backend": "ortlike"}


def _cache(tmp_path, worker="w1", **kwargs):
    return HierarchicalCache(
        str(tmp_path / "shards" / worker), str(tmp_path / "shared"), **kwargs
    )


class TestLayout:
    def test_shard_equal_to_shared_is_rejected(self, tmp_path):
        shared = str(tmp_path / "store")
        with pytest.raises(ValueError, match="must differ"):
            HierarchicalCache(shared, shared)

    def test_put_writes_through_every_tier(self, tmp_path):
        cache = _cache(tmp_path)
        cache.put(KEY, PAYLOAD)
        # memory tier holds it hot
        assert cache.get(KEY) == PAYLOAD
        assert cache.tier_stats()["memory_hits"] == 1
        # local shard and shared store both hold the object on disk
        shard_obj = OptimizationCache.object_path_in(cache.cache_dir, KEY)
        shared_obj = OptimizationCache.object_path_in(cache.shared_dir, KEY)
        assert os.path.isfile(shard_obj)
        assert os.path.isfile(shared_obj)


class TestDescentAndPromotion:
    def test_sibling_worker_hits_shared_and_promotes(self, tmp_path):
        _cache(tmp_path, "w1").put(KEY, PAYLOAD)
        sibling = _cache(tmp_path, "w2")
        assert sibling.get(KEY) == PAYLOAD  # only the shared tier has it
        tiers = sibling.tier_stats()
        assert tiers["shared_hits"] == 1
        assert tiers["promotions"] == 1
        assert tiers["misses"] == 0
        # the hit was promoted into w2's own shard...
        assert os.path.isfile(
            OptimizationCache.object_path_in(sibling.cache_dir, KEY)
        )
        # ...so a restarted w2 (cold memory) refills from its private
        # tier without touching the shared store again.
        restarted = _cache(tmp_path, "w2")
        assert restarted.get(KEY) == PAYLOAD
        tiers = restarted.tier_stats()
        assert tiers["local_hits"] == 1 and tiers["shared_hits"] == 0
        # and the promoted payload is now a memory hit
        assert restarted.get(KEY) == PAYLOAD
        assert restarted.tier_stats()["memory_hits"] == 1

    def test_miss_counts_once_across_all_tiers(self, tmp_path):
        cache = _cache(tmp_path)
        assert cache.get("absent") is None
        tiers = cache.tier_stats()
        assert tiers["misses"] == 1
        assert tiers["memory_hits"] == tiers["local_hits"] == 0
        assert tiers["shared_hits"] == 0

    def test_hit_rates_are_shares_of_all_lookups(self, tmp_path):
        cache = _cache(tmp_path)
        cache.put(KEY, PAYLOAD)
        cache.get(KEY)  # memory hit
        cache.get("absent")  # miss
        tiers = cache.tier_stats()
        assert tiers["memory_hit_rate"] == pytest.approx(0.5)
        assert tiers["local_hit_rate"] == 0.0
        assert tiers["shared_hit_rate"] == 0.0


class TestStatsViews:
    def test_flat_stats_fold_shared_hits_into_disk_hits(self, tmp_path):
        _cache(tmp_path, "w1").put(KEY, PAYLOAD)
        sibling = _cache(tmp_path, "w2")
        sibling.get(KEY)  # shared-tier hit
        stats = sibling.stats()
        # a shared hit is a hit: the flat view must not read it as a miss
        assert stats.disk_hits == 1
        assert stats.misses == 0

    def test_flat_cache_reports_no_tiers(self, tmp_path):
        assert OptimizationCache(str(tmp_path / "flat")).tier_stats() is None
