"""Property-based tests over transformer-style (MatMul/LN/Gelu) graphs.

Complements ``test_properties.py``'s CNN strategy: the optimizer's
transformer fusions (GeluFusion, SkipLayerNorm, MatMulAdd) must preserve
semantics on arbitrary stacked encoder-ish graphs, not just the zoo's.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir import GraphBuilder
from repro.models.common import decomposed_gelu
from repro.optimizer import HidetLikeOptimizer, OrtLikeOptimizer
from repro.runtime import graphs_equivalent

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def transformer_graphs(draw):
    seed = draw(st.integers(0, 10_000))
    hidden = draw(st.sampled_from([8, 16, 32]))
    seq = draw(st.sampled_from([4, 8]))
    depth = draw(st.integers(1, 3))
    rng = np.random.default_rng(seed)
    b = GraphBuilder(f"tprop_{seed}", seed=seed)
    x = b.input("x", (1, seq, hidden))
    h = x
    for _ in range(depth):
        kind = rng.integers(0, 4)
        if kind == 0:  # dense + gelu
            h = b.linear(h, hidden, hidden)
            h = decomposed_gelu(b, h)
        elif kind == 1:  # residual + layernorm (SkipLayerNorm fodder)
            inner = b.linear(h, hidden, hidden)
            h = b.layernorm(b.add(inner, h), hidden)
        elif kind == 2:  # softmax attention-ish scaling
            h = b.div(h, b.scalar(float(np.sqrt(hidden))))
            h = b.softmax(h, axis=-1)
        else:  # reshape/transpose round trip
            h = b.transpose(h, (0, 2, 1))
            h = b.transpose(h, (0, 2, 1))
    h = b.reshape(h, (1, seq * hidden))
    h = b.gemm(h, seq * hidden, 4)
    return b.build([h])


class TestTransformerProperties:
    @_settings
    @given(transformer_graphs())
    def test_ort_preserves_function(self, graph):
        opt = OrtLikeOptimizer().optimize(graph)
        assert graphs_equivalent(graph, opt, n_trials=1)
        assert opt.num_nodes <= graph.num_nodes

    @_settings
    @given(transformer_graphs())
    def test_hidet_preserves_function(self, graph):
        opt = HidetLikeOptimizer().optimize(graph)
        assert graphs_equivalent(graph, opt, n_trials=1)

    @_settings
    @given(transformer_graphs())
    def test_proteus_roundtrip(self, graph):
        from repro.core import Proteus, ProteusConfig
        p = Proteus(ProteusConfig(target_subgraph_size=6, k=0, seed=0))
        rec = p.run_pipeline(graph, OrtLikeOptimizer())
        assert graphs_equivalent(graph, rec, n_trials=1)
