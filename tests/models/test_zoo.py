"""Tests for the model registry and structural sanity of every model."""

import pytest

from repro.ir.serialization import graph_to_dict
from repro.ir.validate import validate_graph
from repro.models import (
    CNN_MODELS,
    TRANSFORMER_MODELS,
    build_model,
    list_models,
)
from repro.models.zoo import MODEL_REGISTRY


class TestRegistry:
    def test_list_models_sorted_and_complete(self):
        names = list_models()
        assert names == sorted(names)
        assert set(CNN_MODELS) <= set(names)
        assert set(TRANSFORMER_MODELS) <= set(names)
        assert "nats" in names

    def test_listing_matches_registry_exactly(self):
        """list_models() is the enumeration loadgen samples mixes from:
        every registered family must appear, nothing extra."""
        assert list_models() == sorted(MODEL_REGISTRY)
        assert set(CNN_MODELS) | set(TRANSFORMER_MODELS) | {"nats"} == (
            set(MODEL_REGISTRY)
        )

    def test_listing_is_stable(self):
        assert list_models() == list_models()
        assert list_models() is not list_models()  # a copy, not the registry

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="available"):
            build_model("vgg99")

    def test_unknown_model_lists_alternatives(self):
        with pytest.raises(KeyError) as exc_info:
            build_model("vgg99")
        for name in list_models():
            assert name in str(exc_info.value)

    def test_kwargs_forwarded(self):
        small = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        big = build_model("resnet")
        assert small.num_nodes < big.num_nodes


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
class TestEveryModel:
    """Every *registered* family, not a hand-maintained list: a family
    added to the zoo gets this coverage (and loadgen mixability) free."""

    def test_validates(self, name):
        g = build_model(name)
        validate_graph(g)

    def test_single_input_single_output(self, name):
        g = build_model(name)
        assert len(g.inputs) == 1
        assert len(g.outputs) == 1

    def test_node_count_realistic(self, name):
        # Proteus partitions at size ~8; models must have enough nodes for
        # the paper's n values to make sense.
        g = build_model(name)
        assert 20 <= g.num_nodes <= 400

    def test_deterministic_build(self, name):
        a = build_model(name)
        b = build_model(name)
        assert [n.op_type for n in a.nodes] == [n.op_type for n in b.nodes]

    def test_deterministic_to_the_byte(self, name):
        """Two builds serialize identically — weights included.  Loadgen
        replays depend on this: the manifests a workload materializes
        must be the same bytes on every machine that generates them."""
        a = graph_to_dict(build_model(name))
        b = graph_to_dict(build_model(name))
        assert a == b

    def test_graph_carries_family_name(self, name):
        assert build_model(name).name  # non-empty; used in receipts/reports


class TestArchitectureSignatures:
    """Spot-check each family's architectural fingerprint."""

    def test_resnet_has_residual_adds(self):
        assert build_model("resnet").opcode_histogram()["Add"] >= 8

    def test_densenet_concat_heavy(self):
        hist = build_model("densenet").opcode_histogram()
        assert hist["Concat"] >= 10

    def test_googlenet_branches(self):
        hist = build_model("googlenet").opcode_histogram()
        assert hist["Concat"] >= 5
        assert hist["MaxPool"] >= 5

    def test_mobilenet_depthwise(self):
        g = build_model("mobilenet")
        depthwise = [n for n in g.nodes if n.op_type == "Conv" and n.attr("group", 1) > 1]
        assert len(depthwise) >= 10

    def test_mnasnet_has_se_blocks(self):
        hist = build_model("mnasnet").opcode_histogram()
        assert hist.get("HardSigmoid", 0) >= 3
        assert hist.get("Mul", 0) >= 3

    def test_seresnet_has_sigmoid_gates(self):
        hist = build_model("seresnet").opcode_histogram()
        assert hist.get("Sigmoid", 0) == 8  # one per block
        assert hist.get("GlobalAveragePool", 0) >= 8

    def test_alexnet_no_batchnorm(self):
        assert "BatchNormalization" not in build_model("alexnet").opcode_histogram()

    def test_resnext_grouped_convs(self):
        g = build_model("resnext")
        grouped = [n for n in g.nodes if n.op_type == "Conv" and n.attr("group", 1) == 8]
        assert len(grouped) >= 6


class TestTransformers:
    def test_bert_components(self):
        hist = build_model("bert").opcode_histogram()
        assert hist["Softmax"] == 4  # one per layer
        assert hist["LayerNormalization"] == 9  # embeddings + 2/layer
        assert hist["Erf"] == 4  # decomposed gelu per layer
        assert hist["Gather"] == 1

    def test_distilbert_shallower_than_bert(self):
        assert build_model("distilbert").num_nodes < build_model("bert").num_nodes

    def test_xlm_deepest(self):
        assert build_model("xlm").num_nodes > build_model("bert").num_nodes

    def test_roberta_no_token_type(self):
        # roberta drops the token-type embedding add: one fewer Add than bert
        bert_adds = build_model("bert").opcode_histogram()["Add"]
        roberta_adds = build_model("roberta").opcode_histogram()["Add"]
        assert roberta_adds == bert_adds - 1
