"""Tests for the NATS-Bench cell sampler."""

import pytest

from repro.ir.validate import validate_graph
from repro.models.nats import NATS_OPS, build_nats_model, parse_arch, sample_nats_arch
from repro.runtime import run_graph


class TestArchStrings:
    def test_sample_parses(self):
        for seed in range(10):
            arch = sample_nats_arch(seed)
            nodes = parse_arch(arch)
            assert len(nodes) == 3
            assert [len(g) for g in nodes] == [1, 2, 3]

    def test_sample_deterministic(self):
        assert sample_nats_arch(3) == sample_nats_arch(3)

    def test_samples_differ(self):
        archs = {sample_nats_arch(s) for s in range(20)}
        assert len(archs) > 10

    def test_parse_rejects_bad_op(self):
        with pytest.raises(ValueError, match="unknown NATS op"):
            parse_arch("|bogus~0|+|none~0|none~1|+|none~0|none~1|none~2|")

    def test_parse_rejects_wrong_nodes(self):
        with pytest.raises(ValueError, match="3 computed nodes"):
            parse_arch("|none~0|")

    def test_all_ops_reachable(self):
        seen = set()
        for seed in range(60):
            for group in parse_arch(sample_nats_arch(seed)):
                seen.update(op for op, _ in group)
        assert seen == set(NATS_OPS)


class TestNATSModel:
    def test_builds_and_validates(self):
        g = build_nats_model(seed=0)
        validate_graph(g)

    def test_executes(self):
        out = run_graph(build_nats_model(seed=1))
        (arr,) = out.values()
        assert arr.shape == (1, 10)

    def test_all_none_cell_still_connected(self):
        arch = "|none~0|+|none~0|none~1|+|none~0|none~1|none~2|"
        g = build_nats_model(arch=arch, seed=0)
        validate_graph(g)
        run_graph(g)

    def test_skip_only_cell(self):
        arch = "|skip_connect~0|+|skip_connect~0|none~1|+|skip_connect~0|none~1|skip_connect~2|"
        g = build_nats_model(arch=arch, seed=0)
        validate_graph(g)

    def test_arch_changes_graph(self):
        a = build_nats_model(arch="|nor_conv_3x3~0|+|none~0|none~1|+|none~0|none~1|skip_connect~2|")
        b = build_nats_model(arch="|avg_pool_3x3~0|+|none~0|none~1|+|none~0|none~1|skip_connect~2|")
        assert [n.op_type for n in a.nodes] != [n.op_type for n in b.nodes]
