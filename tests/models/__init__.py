"""models tests."""
