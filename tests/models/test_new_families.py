"""Tests for the VGG and SqueezeNet families."""

import pytest

from repro.ir.validate import validate_graph
from repro.models import build_model
from repro.optimizer import OrtLikeOptimizer
from repro.runtime import graphs_equivalent, run_graph


class TestVGG:
    def test_builds_and_runs(self):
        g = build_model("vgg")
        validate_graph(g)
        (out,) = run_graph(g).values()
        assert out.shape == (1, 100)

    def test_pure_chain_topology(self):
        """VGG has no fan-out: every value feeds at most one node."""
        g = build_model("vgg")
        for node in g.nodes:
            for out in node.outputs:
                assert len(g.consumers_of(out)) <= 1

    def test_no_batchnorm_no_add(self):
        hist = build_model("vgg").opcode_histogram()
        assert "BatchNormalization" not in hist
        assert hist["Conv"] >= 8

    def test_optimizer_equivalence(self):
        g = build_model("vgg")
        assert graphs_equivalent(g, OrtLikeOptimizer().optimize(g), n_trials=1)


class TestSqueezeNet:
    def test_builds_and_runs(self):
        g = build_model("squeezenet")
        validate_graph(g)
        (out,) = run_graph(g).values()
        assert out.shape == (1, 100)

    def test_fire_module_concats(self):
        hist = build_model("squeezenet").opcode_histogram()
        assert hist["Concat"] == 6  # one per fire module

    def test_squeeze_fanout(self):
        """Each fire's squeeze output feeds both expand branches."""
        g = build_model("squeezenet")
        fanout2 = sum(
            1 for node in g.nodes for out in node.outputs
            if len(g.consumers_of(out)) == 2
        )
        assert fanout2 >= 6

    def test_optimizer_equivalence(self):
        g = build_model("squeezenet")
        assert graphs_equivalent(g, OrtLikeOptimizer().optimize(g), n_trials=1)

    def test_proteus_roundtrip(self):
        from repro.core import Proteus, ProteusConfig
        g = build_model("squeezenet")
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        rec = p.run_pipeline(g, OrtLikeOptimizer())
        assert graphs_equivalent(g, rec, n_trials=1)
