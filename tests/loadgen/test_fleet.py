"""Fleet endpoint + multi-process serving fleet.

The acceptance property lives here: a 2-worker fleet completes the same
workload with byte-identical optimized buckets and strictly more
observed worker concurrency than a single worker.
"""

import json

import pytest

from repro.api.endpoint import LocalEndpoint, open_endpoint
from repro.api.manifest import BucketManifest
from repro.api.wire import ERR_UNKNOWN_JOB, EndpointError
from repro.loadgen.driver import run_loadtest
from repro.loadgen.fleet import FleetEndpoint, ServingFleet, open_fleet_endpoint
from repro.loadgen.workload import WorkloadSpec, generate_workload
from repro.serving import OptimizationCache


def _workload(requests=6, clients=4):
    return generate_workload(
        WorkloadSpec(
            name="fleet",
            seed=11,
            arrival="closed",
            requests=requests,
            clients=clients,
            mix={"squeezenet": 1.0},
            k=0,
            variants=1,
        )
    )


def _local_fleet(n):
    return FleetEndpoint(
        [LocalEndpoint("ortlike", cache=OptimizationCache(), workers=2) for _ in range(n)]
    )


class TestFleetEndpoint:
    """Round-robin routing over in-process members (no subprocesses)."""

    def test_round_robin_spreads_submissions(self):
        workload = _workload()
        with _local_fleet(2) as fleet:
            result = run_loadtest(workload, fleet, sample_interval=0.0)
            metrics = fleet.metrics()
        assert result.failed == 0
        assert metrics["submitted_per_worker"] == [3, 3]
        assert metrics["workers"] == 2
        assert metrics["counters"]["completed_total"] == 6

    def test_jobs_route_back_to_their_worker(self):
        workload = _workload(requests=4, clients=1)
        with _local_fleet(2) as fleet:
            result = run_loadtest(
                workload, fleet, sample_interval=0.0, keep_receipts=True
            )
        assert result.failed == 0
        assert len(result.receipts) == 4

    def test_unknown_job_is_structured(self):
        with _local_fleet(2) as fleet:
            with pytest.raises(EndpointError) as exc_info:
                fleet.status("job-not-ours")
            assert exc_info.value.code == ERR_UNKNOWN_JOB

    def test_single_worker_never_counts_two_busy(self):
        workload = _workload()
        with _local_fleet(1) as fleet:
            run_loadtest(workload, fleet, sample_interval=0.0)
            assert fleet.max_busy_workers == 1

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            FleetEndpoint([])

    def test_timeout_releases_slot_but_keeps_routing(self):
        """An abandoned timeout must not inflate the busy-worker gauge
        forever, and a retried await must still reach its worker."""

        class _Stalling(LocalEndpoint):
            def __init__(self):
                super().__init__("ortlike", workers=1)
                self.stall = True

            def await_receipt(self, job_id, timeout=None):
                if self.stall:
                    raise TimeoutError("still working")
                return super().await_receipt(job_id, timeout=timeout)

        from repro.api.clients import ModelOwner
        from repro.core import ProteusConfig
        from repro.models import build_model

        bucket = ModelOwner(
            ProteusConfig(k=0, target_subgraph_size=8, seed=0)
        ).obfuscate(build_model("squeezenet")).bucket
        worker = _Stalling()
        with FleetEndpoint([worker]) as fleet:
            job_id = fleet.submit(BucketManifest.from_bucket(bucket))
            with pytest.raises(TimeoutError):
                fleet.await_receipt(job_id, timeout=0.01)
            assert fleet.metrics()["in_flight_per_worker"] == [0]
            worker.stall = False
            fleet.await_receipt(job_id, timeout=60)  # routing survived
            assert fleet.metrics()["in_flight_per_worker"] == [0]

    def test_open_fleet_endpoint_validates_urls(self):
        with pytest.raises(ValueError):
            open_fleet_endpoint("spool:/x,http://h:1")
        with pytest.raises(ValueError):
            open_fleet_endpoint("")
        endpoint = open_fleet_endpoint("http://h:1, http://h:2")
        assert len(endpoint) == 2
        endpoint.close()

    def test_open_endpoint_grammar_accepts_comma_list(self):
        endpoint = open_endpoint("http://127.0.0.1:1,http://127.0.0.1:2")
        assert isinstance(endpoint, FleetEndpoint)
        endpoint.close()

    def test_single_url_with_comma_in_query_is_not_a_fleet(self):
        from repro.api.endpoint import HttpEndpoint

        endpoint = open_endpoint("http://127.0.0.1:1/opt?tags=a,b")
        assert isinstance(endpoint, HttpEndpoint)
        endpoint.close()


class TestServingFleetProcesses:
    """Real `repro serve --http 0` worker processes (the acceptance run)."""

    @pytest.fixture(scope="class")
    def workload(self):
        return _workload()

    @staticmethod
    def _replay(fleet, workload, routing="ring"):
        endpoint = fleet.endpoint(timeout=60.0, routing=routing)
        try:
            result = run_loadtest(
                workload,
                endpoint,
                request_timeout=120.0,
                sample_interval=0.0,
                keep_receipts=True,
            )
            busy = endpoint.max_busy_workers
        finally:
            endpoint.close()
        assert result.failed == 0, result.error_codes
        buckets = {
            index: json.dumps(
                BucketManifest.from_bucket(receipt.bucket).to_dict(), sort_keys=True
            )
            for index, receipt in result.receipts.items()
        }
        return buckets, busy

    def test_two_workers_same_bytes_more_concurrency(self, workload, tmp_path):
        cache_dir = str(tmp_path / "shared-cache")
        with ServingFleet(1, cache_dir=cache_dir, jobs=2) as single:
            single_buckets, single_busy = self._replay(single, workload)
        with ServingFleet(2, cache_dir=cache_dir, jobs=2) as pair:
            assert len(pair.urls) == 2
            # the default ring-routed proxy: identical manifests collapse
            # onto one worker (and one in-flight job), so this replay
            # proves byte-identity under routing, not concurrency.
            pair_buckets, _ = self._replay(pair, workload)
            # the round-robin base spreads the same workload over both
            # workers, which is what exhibits the concurrency gain.
            rr_buckets, rr_busy = self._replay(
                pair, workload, routing="round_robin"
            )
        # byte-identical optimized buckets, request for request,
        # whichever worker (or routing policy) served them
        assert single_buckets == pair_buckets == rr_buckets
        # strictly more observed concurrency than the single worker
        assert rr_busy > single_busy
        assert single_busy == 1 and rr_busy == 2

    def test_fleet_close_terminates_workers(self, workload, tmp_path):
        fleet = ServingFleet(1, cache_dir=str(tmp_path / "c"), jobs=1)
        fleet.start()
        assert fleet.poll() == [None]
        fleet.close()
        assert fleet.urls == []
        assert fleet.poll() == []


class _FakeWorker:
    """In-process stand-in for an HTTP worker endpoint."""

    transport = "fake"
    _seq = 0

    def __init__(self, url, fail=False):
        self.url = url
        self.fail = fail
        self.submits = 0
        self.closed = False

    def submit(self, manifest):
        if self.fail:
            raise ConnectionError(f"{self.url} is down")
        self.submits += 1
        _FakeWorker._seq += 1
        return f"job-{_FakeWorker._seq}"

    def status(self, job_id):
        raise AssertionError("not used")

    def await_receipt(self, job_id, timeout=None):
        return object()

    def metrics(self):
        return {"counters": {}}

    def client_stats(self):
        return {"shed_total": 1, "retried_total": 0, "gave_up_total": 0}

    def close(self):
        self.closed = True


def _fake_fleet(urls):
    made = {}

    def factory(url):
        made[url] = _FakeWorker(url)
        return made[url]

    fleet = FleetEndpoint(
        [factory(u) for u in urls], urls=list(urls), endpoint_factory=factory
    )
    return fleet, made


class TestDynamicMembership:
    def test_set_members_adds_retires_and_revives(self):
        fleet, made = _fake_fleet(["u1", "u2"])
        fleet.set_members(["u2", "u3"])  # u1 retired, u3 joins
        assert len(fleet) == 2
        assert fleet.member_urls() == ["u2", "u3"]
        for _ in range(4):
            fleet.submit(None)
        assert made["u1"].submits == 0  # retired: no new submits
        assert made["u2"].submits == 2 and made["u3"].submits == 2

        fleet.set_members(["u1", "u2", "u3"])  # scale-down reverted
        assert len(fleet) == 3
        assert "u1" in fleet.member_urls()
        fleet.close()
        assert all(w.closed for w in made.values())

    def test_connection_failure_fails_over_and_marks_down(self):
        fleet, made = _fake_fleet(["u1", "u2"])
        made["u1"].fail = True
        for _ in range(4):
            fleet.submit(None)  # never raises: u2 absorbs everything
        assert made["u2"].submits == 4
        assert fleet.member_urls() == ["u2"]  # u1 out of rotation

        # a state refresh vouching for u1 puts it back.
        made["u1"].fail = False
        fleet.set_members(["u1", "u2"])
        assert fleet.member_urls() == ["u1", "u2"]
        fleet.submit(None)
        fleet.submit(None)  # two submits round-robin over both again
        assert made["u1"].submits == 1

    def test_all_workers_down_raises_connection_error(self):
        fleet, made = _fake_fleet(["u1"])
        made["u1"].fail = True
        with pytest.raises(ConnectionError):
            fleet.submit(None)

    def test_client_stats_include_retired_members(self):
        fleet, made = _fake_fleet(["u1", "u2"])
        fleet.set_members(["u2"])
        assert fleet.client_stats()["shed_total"] == 2  # u1 still counted

    def test_fixed_membership_rejects_set_members(self):
        fleet = FleetEndpoint([_FakeWorker("u1")])
        with pytest.raises(RuntimeError, match="factory"):
            fleet.set_members(["u1", "u2"])
        fleet.close()


class TestFleetStateEndpoint:
    def test_follows_state_file_rewrites(self, tmp_path):
        import time as _time

        from repro.loadgen.fleet import open_fleet_state_endpoint
        from repro.serving.spool import atomic_write_json

        state = str(tmp_path / "fleet.json")
        atomic_write_json(state, {"version": 1, "workers": ["http://127.0.0.1:1"]})
        fleet = open_fleet_state_endpoint(state, poll_interval=0.05)
        try:
            assert fleet.member_urls() == ["http://127.0.0.1:1"]
            atomic_write_json(
                state,
                {"version": 1,
                 "workers": ["http://127.0.0.1:1", "http://127.0.0.1:2"]},
            )
            deadline = _time.monotonic() + 5.0
            while _time.monotonic() < deadline:
                if len(fleet.member_urls()) == 2:
                    break
                _time.sleep(0.02)
            assert fleet.member_urls() == [
                "http://127.0.0.1:1", "http://127.0.0.1:2"
            ]
            # an empty/bad rewrite must never shrink the fleet to zero.
            (tmp_path / "fleet.json").write_text("{broken json")
            _time.sleep(0.15)
            assert len(fleet.member_urls()) == 2
        finally:
            fleet.close()

    def test_missing_state_file_times_out(self, tmp_path):
        from repro.loadgen.fleet import open_fleet_state_endpoint

        with pytest.raises(ConnectionError, match="no live workers"):
            open_fleet_state_endpoint(
                str(tmp_path / "nope.json"), startup_timeout=0.2
            )

    def test_open_endpoint_fleet_scheme(self, tmp_path):
        from repro.serving.spool import atomic_write_json

        state = str(tmp_path / "fleet.json")
        atomic_write_json(state, {"version": 1, "workers": ["http://127.0.0.1:1"]})
        endpoint = open_endpoint(f"fleet:{state}")
        assert isinstance(endpoint, FleetEndpoint)
        endpoint.close()


class TestFleetResizeAndReap:
    """Real processes: the autoscaler's levers against ServingFleet."""

    def test_add_stop_reap_and_state_file(self, tmp_path):
        state = str(tmp_path / "fleet.json")

        def state_workers():
            with open(state) as fh:
                return json.load(fh)["workers"]

        fleet = ServingFleet(
            1, cache_dir=str(tmp_path / "c"), jobs=1, state_path=state
        )
        try:
            fleet.start()
            assert fleet.worker_count == 1
            assert state_workers() == fleet.urls

            url2 = fleet.add_worker()
            assert fleet.worker_count == 2
            assert state_workers() == fleet.urls and url2 in fleet.urls

            # kill the newest worker behind the fleet's back: reap
            # notices, removes it, and republishes the state file.
            fleet._procs[-1].kill()
            fleet._procs[-1].wait(timeout=10)
            assert fleet.reap() == 1
            assert fleet.worker_count == 1
            assert state_workers() == fleet.urls and url2 not in fleet.urls

            assert fleet.stop_worker() is None  # never below one worker
        finally:
            fleet.close()
        assert state_workers() == []  # the empty fleet was published


class TestStartLifecycleRace:
    """start()'s check-and-set of the started flag is one locked step."""

    def _stub_fleet(self, tmp_path, workers, spawned):
        fleet = ServingFleet(workers, cache_dir=str(tmp_path / "c"), jobs=1)

        def fake_spawn():
            spawned.append(1)
            url = f"http://127.0.0.1:{9000 + len(spawned)}"
            with fleet._fleet_lock:
                fleet.urls.append(url)
            return url

        fleet._spawn_one = fake_spawn
        return fleet

    def test_concurrent_starts_spawn_the_fleet_once(self, tmp_path):
        import threading

        spawned = []
        fleet = self._stub_fleet(tmp_path, workers=3, spawned=spawned)
        callers = [threading.Thread(target=fleet.start) for _ in range(6)]
        for t in callers:
            t.start()
        for t in callers:
            t.join()
        assert len(spawned) == 3  # one fleet, not six

    def test_start_returns_a_snapshot_not_the_live_list(self, tmp_path):
        fleet = self._stub_fleet(tmp_path, workers=2, spawned=[])
        urls = fleet.start()
        urls.append("http://bogus")
        with fleet._fleet_lock:
            assert len(fleet.urls) == 2

    def test_close_rearms_start(self, tmp_path):
        spawned = []
        fleet = self._stub_fleet(tmp_path, workers=1, spawned=spawned)
        fleet.start()
        fleet.close()
        fleet.start()
        assert len(spawned) == 2


class TestBannerParsing:
    """The one-JSON-line-on-stdout contract, under multi-transport
    workers: `endpoint` names whichever transport is *primary*, so the
    fleet must select by `endpoints[<transport>]` rather than trust key
    order or primacy."""

    def _fleet(self, transport):
        return ServingFleet(1, transport=transport)

    def test_legacy_http_only_banner(self):
        fleet = self._fleet("http")
        url = fleet._banner_url({"endpoint": "http://127.0.0.1:8080"})
        assert url == "http://127.0.0.1:8080"

    def test_combined_banner_http_primary_mux_fleet(self):
        """A --http P --mux P2 worker announces http as primary; a mux
        fleet must still find its transport under `endpoints`."""
        banner = {
            "endpoint": "http://127.0.0.1:8080",
            "endpoints": {
                "http": "http://127.0.0.1:8080",
                "mux": "mux://127.0.0.1:9090",
            },
            "protocol_version": 1,
        }
        assert self._fleet("mux")._banner_url(banner) == "mux://127.0.0.1:9090"
        assert self._fleet("http")._banner_url(banner) == "http://127.0.0.1:8080"

    def test_combined_banner_mux_primary_http_fleet(self):
        """...and symmetrically when mux is primary (mux-only ordering)."""
        banner = {
            "endpoint": "mux://127.0.0.1:9090",
            "endpoints": {
                "mux": "mux://127.0.0.1:9090",
                "http": "http://127.0.0.1:8080",
            },
        }
        assert self._fleet("http")._banner_url(banner) == "http://127.0.0.1:8080"
        assert self._fleet("mux")._banner_url(banner) == "mux://127.0.0.1:9090"

    def test_wrong_transport_without_endpoints_map_rejected(self):
        with pytest.raises(ValueError, match="no mux endpoint"):
            self._fleet("mux")._banner_url({"endpoint": "http://127.0.0.1:8080"})
        with pytest.raises(ValueError, match="no http endpoint"):
            self._fleet("http")._banner_url({"endpoint": "mux://127.0.0.1:9090"})

    def test_degenerate_banners_rejected(self):
        fleet = self._fleet("http")
        with pytest.raises(TypeError):
            fleet._banner_url(["not", "an", "object"])
        with pytest.raises(KeyError):
            fleet._banner_url({"protocol_version": 1})

    def test_mux_fleet_workers_announce_mux(self, tmp_path):
        """End-to-end: a 1-worker mux fleet spawns `repro serve --mux 0`
        and parses a mux:// URL out of the combined banner."""
        fleet = ServingFleet(
            1, cache_dir=str(tmp_path / "cache"), jobs=1, transport="mux"
        )
        try:
            urls = fleet.start()
            assert len(urls) == 1 and urls[0].startswith("mux://")
        finally:
            fleet.close()
