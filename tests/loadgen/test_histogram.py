"""LatencyHistogram: recording, quantiles, merging, serialization."""

import json
import random

import pytest

from repro.loadgen.histogram import LatencyHistogram


class TestRecording:
    def test_counts_and_moments(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.5):
            hist.record(value)
        assert hist.count == 4
        assert hist.min_s == 0.001
        assert hist.max_s == 0.5
        assert hist.mean_s == pytest.approx(0.507 / 4)
        assert sum(hist.counts) == 4

    def test_overflow_bucket(self):
        hist = LatencyHistogram(bounds=[0.1, 0.2])
        hist.record(5.0)
        assert hist.counts[-1] == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.1)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=[])
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=[0.2, 0.1])
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=[-1.0, 1.0])


class TestQuantiles:
    def test_empty_is_none(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) is None
        assert hist.mean_s is None

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_single_sample_is_exact(self):
        hist = LatencyHistogram()
        hist.record(0.0123)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(0.0123)

    def test_estimates_within_bucket_error(self):
        """Against exact percentiles of a known sample: the estimate must
        land within one 2x bucket of the truth."""
        rng = random.Random(0)
        samples = [rng.uniform(0.001, 0.5) for _ in range(5000)]
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        ordered = sorted(samples)
        for q in (0.5, 0.95, 0.99):
            exact = ordered[int(q * len(ordered)) - 1]
            estimate = hist.quantile(q)
            assert exact / 2.05 <= estimate <= exact * 2.05

    def test_estimates_clamped_to_observed_range(self):
        hist = LatencyHistogram()
        hist.record(0.0101)
        hist.record(0.0102)
        assert hist.min_s <= hist.quantile(0.01) <= hist.max_s
        assert hist.min_s <= hist.quantile(0.99) <= hist.max_s


class TestMerge:
    def test_merge_equals_combined_recording(self):
        a, b, combined = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for i, value in enumerate(0.001 * (j + 1) for j in range(40)):
            (a if i % 2 else b).record(value)
            combined.record(value)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.min_s == combined.min_s
        assert a.max_s == combined.max_s
        assert a.sum_s == pytest.approx(combined.sum_s)

    def test_merge_into_empty(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        b.record(0.5)
        a.merge(b)
        assert (a.count, a.min_s, a.max_s) == (1, 0.5, 0.5)

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(bounds=[1.0]))


class TestSerialization:
    def test_json_round_trip(self):
        hist = LatencyHistogram()
        for value in (0.003, 0.004, 1.7):
            hist.record(value)
        rebuilt = LatencyHistogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert rebuilt.counts == hist.counts
        assert rebuilt.count == hist.count
        assert rebuilt.quantile(0.5) == hist.quantile(0.5)

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda d: d.update(count=99),
            lambda d: d["counts"].append(1),
            lambda d: d["counts"].__setitem__(0, -1),
        ],
    )
    def test_corrupt_documents_rejected(self, corrupt):
        hist = LatencyHistogram()
        hist.record(0.01)
        doc = hist.to_dict()
        corrupt(doc)
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(doc)
