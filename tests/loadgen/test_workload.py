"""Workload synthesis: determinism, arrival shapes, artifact round-trips."""

from dataclasses import replace

import pytest

from repro.loadgen.workload import (
    ARRIVAL_PROCESSES,
    WorkloadSpec,
    generate_workload,
    list_presets,
    load_workload,
    save_workload,
    workload_preset,
)


def _poisson_spec(**overrides) -> WorkloadSpec:
    base = WorkloadSpec(
        name="t",
        seed=7,
        arrival="poisson",
        duration_s=30.0,
        rate_rps=3.0,
        mix={"squeezenet": 2.0, "mobilenet": 1.0},
        variants=3,
    )
    return replace(base, **overrides)


class TestDeterminism:
    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_same_seed_same_workload(self, arrival):
        spec = _poisson_spec(arrival=arrival)
        if arrival == "closed":
            spec = replace(spec, requests=40)
        assert generate_workload(spec) == generate_workload(spec)

    def test_same_seed_byte_identical_artifact(self, tmp_path):
        """The acceptance property: workload.json is byte-reproducible."""
        spec = _poisson_spec()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_workload(generate_workload(spec), str(a))
        save_workload(generate_workload(spec), str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_different_seed_different_schedule(self):
        w1 = generate_workload(_poisson_spec(seed=1))
        w2 = generate_workload(_poisson_spec(seed=2))
        assert w1.requests != w2.requests
        assert w1.digest() != w2.digest()

    def test_mix_insertion_order_irrelevant(self):
        """Sampling sorts model names: dict order cannot change draws."""
        forward = _poisson_spec(mix={"squeezenet": 2.0, "mobilenet": 1.0})
        backward = _poisson_spec(mix={"mobilenet": 1.0, "squeezenet": 2.0})
        assert generate_workload(forward).requests == (
            generate_workload(backward).requests
        )

    def test_digest_covers_schedule(self):
        w = generate_workload(_poisson_spec())
        assert w.digest().startswith("sha256:")
        trimmed = type(w)(spec=w.spec, requests=w.requests[:-1])
        assert trimmed.digest() != w.digest()


class TestArrivalProcesses:
    def test_closed_loop_offsets_are_zero(self):
        w = generate_workload(
            WorkloadSpec(name="c", arrival="closed", requests=12, clients=3)
        )
        assert len(w) == 12
        assert all(r.offset_s == 0.0 for r in w.requests)

    def test_poisson_offsets_sorted_within_duration(self):
        w = generate_workload(_poisson_spec())
        offsets = [r.offset_s for r in w.requests]
        assert offsets == sorted(offsets)
        assert all(0 < t < 30.0 for t in offsets)
        # ~rate * duration arrivals, with generous slack for variance
        assert 40 <= len(offsets) <= 150

    def test_poisson_request_cap(self):
        w = generate_workload(_poisson_spec(requests=10, duration_s=1e9))
        assert len(w) == 10

    def test_bursty_is_denser_in_bursts(self):
        spec = _poisson_spec(
            arrival="bursty",
            duration_s=40.0,
            rate_rps=5.0,
            burst_on_s=2.0,
            burst_off_s=2.0,
            burst_idle_fraction=0.05,
        )
        w = generate_workload(spec)
        period = spec.burst_on_s + spec.burst_off_s
        on = sum(1 for r in w.requests if (r.offset_s % period) < spec.burst_on_s)
        off = len(w) - on
        assert on > 3 * off  # bursts carry the overwhelming majority

    def test_models_and_variants_come_from_spec(self):
        w = generate_workload(_poisson_spec())
        assert {r.model for r in w.requests} <= {"squeezenet", "mobilenet"}
        assert {r.variant for r in w.requests} <= {0, 1, 2}
        assert len(w.distinct_buckets) <= 6


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"arrival": "warp"},
            {"mix": {}},
            {"mix": {"squeezenet": -1.0}},
            {"clients": 0},
            {"variants": 0},
            {"k": -1},
            {"duration_s": 0.0},
            {"rate_rps": 0.0},
        ],
    )
    def test_bad_specs_rejected(self, overrides):
        with pytest.raises(ValueError):
            generate_workload(_poisson_spec(**overrides))

    def test_closed_needs_request_count(self):
        with pytest.raises(ValueError, match="requests"):
            generate_workload(WorkloadSpec(name="c", arrival="closed", requests=0))

    def test_bursty_needs_valid_phases(self):
        with pytest.raises(ValueError, match="bursty"):
            generate_workload(
                _poisson_spec(arrival="bursty", burst_on_s=0.0)
            )


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        w = generate_workload(_poisson_spec())
        path = str(tmp_path / "w.json")
        save_workload(w, path)
        assert load_workload(path) == w

    def test_schema_version_enforced(self, tmp_path):
        import json

        w = generate_workload(_poisson_spec())
        doc = w.to_dict()
        doc["schema_version"] = 999
        path = tmp_path / "w.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema_version"):
            load_workload(str(path))

    def test_not_a_workload_rejected(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text('{"kind": "bench"}')
        with pytest.raises(ValueError, match="workload"):
            load_workload(str(path))

    @pytest.mark.parametrize(
        "mangle,match",
        [
            (lambda reqs: reqs[1:], "0..n-1"),  # trimmed, indices keep gaps
            (lambda reqs: [dict(r, index=0) for r in reqs], "0..n-1"),
            (lambda reqs: [dict(r, offset_s=-1.0) for r in reqs], ">= 0"),
            (lambda reqs: list(reversed(reqs)), "0..n-1"),
        ],
    )
    def test_hand_edited_schedules_rejected(self, tmp_path, mangle, match):
        """The driver indexes state by request.index: a trimmed or
        re-indexed workload.json must fail at load, not mid-replay."""
        import json

        doc = generate_workload(_poisson_spec()).to_dict()
        doc["requests"] = mangle(doc["requests"])
        path = tmp_path / "w.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match=match):
            load_workload(str(path))

    def test_unknown_spec_fields_rejected(self, tmp_path):
        import json

        w = generate_workload(_poisson_spec())
        doc = w.to_dict()
        doc["spec"]["surprise"] = 1
        path = tmp_path / "w.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="surprise"):
            load_workload(str(path))


class TestPresets:
    def test_presets_listed_and_generate(self):
        names = list_presets()
        assert names == sorted(names)
        assert {"micro", "smoke", "burst"} <= set(names)
        for name in names:
            workload = generate_workload(workload_preset(name))
            assert len(workload) >= 1

    def test_preset_reseed(self):
        a = generate_workload(workload_preset("smoke"))
        b = generate_workload(workload_preset("smoke", seed=99))
        assert a.spec.seed != b.spec.seed
        assert a.requests != b.requests

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="available"):
            workload_preset("nope")

    def test_preset_models_are_registered(self):
        from repro.models import list_models

        for name in list_presets():
            assert set(workload_preset(name).mix) <= set(list_models())
