"""The loadgen driver: replay correctness, concurrency, error tallies."""

import threading
import time

import pytest

from repro.api.endpoint import LocalEndpoint, OptimizerEndpoint
from repro.api.wire import ERR_JOB_FAILED, EndpointError
from repro.loadgen.driver import build_workload_manifests, run_loadtest
from repro.loadgen.workload import WorkloadSpec, generate_workload
from repro.serving import OptimizationCache


@pytest.fixture(scope="module")
def closed_workload():
    return generate_workload(
        WorkloadSpec(
            name="drv",
            seed=3,
            arrival="closed",
            requests=8,
            clients=4,
            mix={"squeezenet": 1.0},
            k=0,
            variants=2,
        )
    )


class _StubEndpoint(OptimizerEndpoint):
    """Instant in-memory endpoint with a programmable failure mode."""

    transport = "stub"

    def __init__(self, fail_with=None, delay_s=0.0):
        self.fail_with = fail_with
        self.delay_s = delay_s
        self.submitted = 0
        self._lock = threading.Lock()
        self.in_flight = 0
        self.peak_in_flight = 0

    def submit(self, manifest) -> str:
        with self._lock:
            self.submitted += 1
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        return f"job-{self.submitted}"

    def status(self, job_id):  # pragma: no cover - driver never calls it
        raise NotImplementedError

    def await_receipt(self, job_id, timeout=None):
        if self.delay_s:
            time.sleep(self.delay_s)
        with self._lock:
            self.in_flight -= 1
        if self.fail_with is not None:
            raise self.fail_with
        return object()

    def metrics(self):
        return {"transport": self.transport, "counters": {}}

    def close(self):
        pass


class TestReplay:
    def test_local_uri_end_to_end(self, closed_workload):
        result = run_loadtest(closed_workload, "local:", sample_interval=0.1)
        assert result.transport == "local"
        assert result.failed == 0
        assert result.succeeded == len(closed_workload)
        assert result.histogram.count == len(closed_workload)
        assert 1 <= result.max_in_flight <= closed_workload.spec.clients
        assert [o.index for o in result.outcomes] == list(range(len(closed_workload)))
        # the post-run sample must reflect the whole replay via the
        # monotonic counters (no sampling race with queue depth).
        assert result.timeline, "sampler produced no timeline"
        final = result.timeline[-1]["counters"]
        assert final["submitted_total"] == len(closed_workload)
        assert final["completed_total"] == len(closed_workload)
        assert final["failed_total"] == 0

    def test_endpoint_object_is_borrowed_not_owned(self, closed_workload):
        endpoint = LocalEndpoint("ortlike", cache=OptimizationCache(), workers=2)
        try:
            first = run_loadtest(closed_workload, endpoint, sample_interval=0.0)
            hits_after_first = endpoint.metrics()["counters"]["entry_cache_hits"]
            second = run_loadtest(closed_workload, endpoint, sample_interval=0.0)
            hits_after_second = endpoint.metrics()["counters"]["entry_cache_hits"]
        finally:
            endpoint.close()
        assert first.failed == 0 and second.failed == 0
        # the driver borrowed the endpoint: same server, same cache —
        # the second replay runs warm (every entry a hit)
        assert hits_after_second > hits_after_first

    def test_keep_receipts(self, closed_workload):
        result = run_loadtest(
            closed_workload, "local:", sample_interval=0.0, keep_receipts=True
        )
        assert sorted(result.receipts) == list(range(len(closed_workload)))
        bucket = result.receipts[0].bucket
        assert len(bucket) > 0

    def test_progress_callback_sees_every_request(self, closed_workload):
        seen = []
        run_loadtest(
            closed_workload,
            "local:",
            sample_interval=0.0,
            progress=lambda done, total, outcome: seen.append((done, total)),
        )
        assert len(seen) == len(closed_workload)
        assert max(d for d, _ in seen) == len(closed_workload)


class TestOpenLoopPacing:
    def test_arrivals_respect_offsets(self):
        workload = generate_workload(
            WorkloadSpec(
                name="paced",
                seed=1,
                arrival="poisson",
                duration_s=0.8,
                rate_rps=20.0,
                clients=8,
                mix={"squeezenet": 1.0},
                k=0,
                variants=1,
            )
        )
        stub = _StubEndpoint()
        result = run_loadtest(workload, stub, sample_interval=0.0)
        last_offset = workload.requests[-1].offset_s
        assert result.duration_s >= last_offset
        # submits happen at (or after) their scheduled offsets
        for outcome, request in zip(result.outcomes, workload.requests):
            assert outcome.submitted_s >= request.offset_s - 1e-3


class TestErrorTally:
    def test_structured_endpoint_errors_tally_by_code(self, closed_workload):
        stub = _StubEndpoint(fail_with=EndpointError(ERR_JOB_FAILED, "boom"))
        result = run_loadtest(closed_workload, stub, sample_interval=0.0)
        assert result.failed == len(closed_workload)
        assert result.error_codes == {ERR_JOB_FAILED: len(closed_workload)}
        assert result.histogram.count == 0
        assert all(o.latency_s is None for o in result.outcomes)

    @pytest.mark.parametrize(
        "exc,tag",
        [
            (TimeoutError("slow"), "timeout"),
            (ConnectionError("gone"), "connection_error"),
            (RuntimeError("??"), "client_error"),
        ],
    )
    def test_unstructured_failures_get_stable_tags(self, closed_workload, exc, tag):
        result = run_loadtest(
            closed_workload, _StubEndpoint(fail_with=exc), sample_interval=0.0
        )
        assert result.error_codes == {tag: len(closed_workload)}

    def test_concurrency_gauge_counts_in_flight(self, closed_workload):
        stub = _StubEndpoint(delay_s=0.05)
        result = run_loadtest(closed_workload, stub, sample_interval=0.0)
        assert result.max_in_flight == closed_workload.spec.clients
        assert stub.peak_in_flight >= 2


class TestManifestMaterialization:
    def test_deterministic_across_builds(self, closed_workload):
        import json

        first = build_workload_manifests(closed_workload)
        second = build_workload_manifests(closed_workload)
        assert set(first) == set(second) == set(closed_workload.distinct_buckets)
        for key, manifest in first.items():
            a = json.dumps(manifest.to_dict(), sort_keys=True)
            b = json.dumps(second[key].to_dict(), sort_keys=True)
            assert a == b, f"manifest for {key} not reproducible"

    def test_variants_differ(self, closed_workload):
        manifests = build_workload_manifests(closed_workload)
        (m0, m1) = (manifests[("squeezenet", 0)], manifests[("squeezenet", 1)])
        assert m0.bucket_digest != m1.bucket_digest
