"""LOADTEST reports: schema, persistence, SLO math, baseline verdicts."""

import copy
import json

import pytest

from repro.loadgen.driver import run_loadtest
from repro.loadgen.report import (
    LOADTEST_SCHEMA_VERSION,
    build_report,
    compare_loadtests,
    default_report_path,
    load_report,
    save_report,
    summary_lines,
    validate_report,
)
from repro.loadgen.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def result():
    workload = generate_workload(
        WorkloadSpec(
            name="rep",
            seed=5,
            arrival="closed",
            requests=6,
            clients=3,
            mix={"squeezenet": 1.0},
            k=0,
            variants=1,
        )
    )
    return run_loadtest(workload, "local:", sample_interval=0.1)


@pytest.fixture()
def report(result):
    return build_report(result, slo_ms=5000.0)


class TestBuild:
    def test_shape_and_schema(self, report):
        validate_report(report)  # raises on malformation
        assert report["schema_version"] == LOADTEST_SCHEMA_VERSION
        assert report["kind"] == "loadtest"
        assert report["name"] == "rep"
        assert report["requests"]["total"] == 6
        assert report["workload"]["digest"].startswith("sha256:")
        assert report["endpoint"]["transport"] == "local"
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p95"]
        assert report["throughput_rps"] > 0
        assert report["concurrency"]["max_in_flight"] >= 1

    def test_slo_attainment_bounds(self, result):
        generous = build_report(result, slo_ms=60_000.0)
        assert generous["slo"]["attained"] == 1.0
        strict = build_report(result, slo_ms=0.001)
        assert strict["slo"]["attained"] == 0.0

    def test_cache_timeline_present(self, report):
        assert report["cache"]["timeline"], "metrics sampler produced nothing"
        final = report["cache"]["timeline"][-1]
        assert final["counters"]["completed_total"] == 6

    def test_bad_slo_rejected(self, result):
        with pytest.raises(ValueError):
            build_report(result, slo_ms=0)

    def test_json_serializable(self, report):
        json.dumps(report)


class TestPersistence:
    def test_save_load_round_trip(self, report, tmp_path):
        path = str(tmp_path / default_report_path("rep"))
        save_report(report, path)
        assert load_report(path) == report

    @pytest.mark.parametrize(
        "corrupt,match",
        [
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d.pop("slo"), "missing key"),
            (lambda d: d.update(kind="bench"), "loadtest"),
            (lambda d: d["requests"].update(succeeded=999), "add up"),
            (lambda d: d["histogram"].update({"counts": [0] * 22, "count": 0}),
             "histogram"),
        ],
    )
    def test_validation_catches_corruption(self, report, corrupt, match):
        doc = copy.deepcopy(report)
        corrupt(doc)
        with pytest.raises(ValueError, match=match):
            validate_report(doc)

    def test_summary_mentions_the_essentials(self, report):
        text = summary_lines(report)
        assert "p95" in text and "slo" in text and "throughput" in text


class TestComparator:
    def test_identical_reports_are_ok(self, report):
        comparison = compare_loadtests(report, report, tolerance=1.5)
        assert not comparison.has_regressions
        assert {v.verdict for v in comparison.verdicts} == {"ok"}
        assert {v.name for v in comparison.verdicts} == {
            "p50_s", "p95_s", "p99_s", "seconds_per_request"
        }

    def test_slower_current_regresses(self, report):
        slow = copy.deepcopy(report)
        slow["latency_ms"] = {
            k: (None if v is None else v * 10) for k, v in slow["latency_ms"].items()
        }
        slow["throughput_rps"] = report["throughput_rps"] / 10
        comparison = compare_loadtests(slow, report, tolerance=1.5)
        assert len(comparison.regressions) == 4

    def test_faster_current_improves(self, report):
        fast = copy.deepcopy(report)
        fast["latency_ms"] = {
            k: (None if v is None else v / 10) for k, v in fast["latency_ms"].items()
        }
        fast["throughput_rps"] = report["throughput_rps"] * 10
        comparison = compare_loadtests(fast, report, tolerance=1.5)
        assert len(comparison.improvements) == 4

    def test_missing_side_yields_missing_verdicts(self, report):
        dead = copy.deepcopy(report)
        dead["throughput_rps"] = 0.0
        comparison = compare_loadtests(dead, report, tolerance=1.5)
        by_name = {v.name: v.verdict for v in comparison.verdicts}
        assert by_name["seconds_per_request"] == "missing-current"
        comparison = compare_loadtests(report, dead, tolerance=1.5)
        by_name = {v.name: v.verdict for v in comparison.verdicts}
        assert by_name["seconds_per_request"] == "missing-baseline"

    def test_renders_like_bench(self, report):
        text = compare_loadtests(report, report).render()
        assert "verdict" in text and "p95_s" in text

    def test_bad_tolerance(self, report):
        with pytest.raises(ValueError):
            compare_loadtests(report, report, tolerance=0.5)


class TestSchemaV2:
    def test_committed_v1_baseline_still_validates(self):
        import os

        baseline_path = os.path.join(
            os.path.dirname(__file__), "..", "..",
            "benchmarks", "baselines", "LOADTEST_smoke.json",
        )
        baseline = load_report(baseline_path)  # validates on load
        assert baseline["schema_version"] == 1

    def test_new_reports_are_v2(self, report):
        assert report["schema_version"] == 2

    def test_trace_attribution_none_when_tracing_off(self, result):
        from repro.obs.trace import configure_tracer

        configure_tracer(sample_rate=0.0)
        try:
            report = build_report(result, slo_ms=5000.0)
            assert report["trace_attribution"] is None
            validate_report(report)
        finally:
            configure_tracer(sample_rate=0.0)

    def test_trace_attribution_built_from_sampled_spans(self, result):
        from repro.obs.trace import configure_tracer

        tracer = configure_tracer(sample_rate=1.0, service="report-test")
        try:
            with tracer.start_trace("request", "client"):
                with tracer.span("rpc", "transport"):
                    pass
            report = build_report(result, slo_ms=5000.0)
            block = report["trace_attribution"]
            assert block is not None
            assert block["sample_rate"] == 1.0
            assert block["traces"] == 1
            assert set(block["tiers"]) == {"client", "transport"}
            validate_report(report)
        finally:
            configure_tracer(sample_rate=0.0)

    def test_comparator_tolerates_the_new_block(self, report):
        legacy = copy.deepcopy(report)
        legacy["schema_version"] = 1
        del legacy["trace_attribution"]
        validate_report(legacy)  # a v1 doc without the block is fine
        comparison = compare_loadtests(report, legacy, tolerance=1.5)
        assert not comparison.has_regressions


class TestBackpressure:
    def test_clean_run_reports_zero_shed(self, report):
        assert report["backpressure"]["shed"] == 0
        client = report["backpressure"]["client"]
        # the local transport has no backoff loop, but the tally keys
        # are still present (all zero) so dashboards need no special
        # casing per transport.
        assert client.get("shed_total", 0) == 0

    def test_shed_tally_flows_from_error_codes(self, result):
        import copy as _copy

        shedded = _copy.copy(result)
        shedded.error_codes = dict(result.error_codes)
        shedded.error_codes["overloaded"] = 3
        shedded.client_stats = {
            "shed_total": 5, "retried_total": 2, "gave_up_total": 3
        }
        report = build_report(shedded, slo_ms=5000.0)
        assert report["backpressure"]["shed"] == 3
        assert report["backpressure"]["client"]["retried_total"] == 2
        # shedding shows up in the human digest too.
        digest = summary_lines(report)
        assert "shedding" in digest
        assert "retried 2" in digest

    def test_clean_digest_omits_shedding_line(self, report):
        assert "shedding" not in summary_lines(report)

    def test_pre_control_reports_still_validate(self, report):
        import copy as _copy

        legacy = _copy.deepcopy(report)
        del legacy["backpressure"]  # schema v1 from before PR 6
        validate_report(legacy)  # additive field: absence is fine
