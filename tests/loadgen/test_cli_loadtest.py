"""`repro loadtest`: flags, exit codes, artifacts, baseline gating."""

import json

import pytest

from repro.cli import main
from repro.loadgen.report import load_report


def _run(capsys, *argv):
    code = main(["loadtest", *argv])
    captured = capsys.readouterr()
    record = None
    if captured.out.strip():
        record = json.loads(captured.out.strip().splitlines()[-1])
    return code, record, captured.err


class TestUsageErrors:
    def test_needs_workload_or_preset(self, capsys):
        code, _, err = _run(capsys, "--endpoint", "local:")
        assert code == 2 and "exactly one" in err

    def test_not_both(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--workload", str(tmp_path / "w.json"),
        )
        assert code == 2 and "exactly one" in err

    def test_seed_requires_preset(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, "--endpoint", "local:",
            "--workload", str(tmp_path / "w.json"), "--seed", "3",
        )
        assert code == 2 and "--seed" in err

    def test_missing_workload_file(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, "--endpoint", "local:",
            "--workload", str(tmp_path / "absent.json"),
        )
        assert code == 2 and "does not exist" in err

    def test_bad_slo(self, capsys):
        code, _, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro", "--slo-ms", "0"
        )
        assert code == 2 and "--slo-ms" in err

    def test_bad_tolerance(self, capsys):
        code, _, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--fail-on-regression", "0.2",
        )
        assert code == 2 and "tolerance" in err

    def test_update_baseline_needs_baseline(self, capsys):
        code, _, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--update-baseline",
        )
        assert code == 2 and "--baseline" in err

    def test_fail_on_regression_needs_baseline(self, capsys):
        """A gate with no baseline must be a usage error, not a no-op
        that silently passes every run."""
        code, _, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--fail-on-regression", "1.5",
        )
        assert code == 2 and "requires --baseline" in err

    def test_bad_endpoint_uri(self, capsys):
        code, _, err = _run(capsys, "--endpoint", "warp:9", "--preset", "micro")
        assert code == 2 and "endpoint URIs" in err

    def test_malformed_workload_spec_is_a_clean_error(self, capsys, tmp_path):
        import json as _json

        from repro.loadgen import generate_workload, save_workload
        from repro.loadgen.workload import WorkloadSpec

        path = str(tmp_path / "w.json")
        save_workload(
            generate_workload(
                WorkloadSpec(name="w", arrival="closed", requests=2,
                             mix={"squeezenet": 1.0})
            ),
            path,
        )
        doc = _json.load(open(path))
        del doc["spec"]["name"]  # missing required field => TypeError inside
        _json.dump(doc, open(path, "w"))
        code, _, err = _run(capsys, "--endpoint", "local:", "--workload", path)
        assert code == 2 and "cannot load workload" in err

    def test_workload_naming_unknown_model(self, capsys, tmp_path):
        import json as _json

        from repro.loadgen import generate_workload, save_workload
        from repro.loadgen.workload import WorkloadSpec

        path = str(tmp_path / "w.json")
        save_workload(
            generate_workload(
                WorkloadSpec(name="w", arrival="closed", requests=2,
                             mix={"squeezenet": 1.0})
            ),
            path,
        )
        doc = _json.load(open(path))
        doc["spec"]["mix"] = {"not-a-model": 1.0}
        for request in doc["requests"]:
            request["model"] = "not-a-model"
        _json.dump(doc, open(path, "w"))
        code, _, err = _run(capsys, "--endpoint", "local:", "--workload", path)
        assert code == 2 and "unknown model" in err


class TestHappyPath:
    def test_micro_local_report(self, capsys, tmp_path):
        report_path = str(tmp_path / "LT.json")
        code, record, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", report_path, "--slo-ms", "30000", "--fail-on-error",
        )
        assert code == 0
        assert record["requests"] == 6 and record["failed"] == 0
        assert record["slo_attained"] == 1.0
        report = load_report(report_path)  # validates schema on load
        assert report["name"] == "micro"
        assert "latency ms" in err and "throughput" in err

    def test_saved_workload_is_byte_stable(self, capsys, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        for path in (a, b):
            code, _, _ = _run(
                capsys, "--endpoint", "local:", "--preset", "micro",
                "--report", str(tmp_path / "LT.json"), "--save-workload", path,
            )
            assert code == 0
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_replay_from_workload_file(self, capsys, tmp_path):
        saved = str(tmp_path / "w.json")
        _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", str(tmp_path / "LT1.json"), "--save-workload", saved,
        )
        code, record, _ = _run(
            capsys, "--endpoint", "local:", "--workload", saved,
            "--report", str(tmp_path / "LT2.json"),
        )
        assert code == 0 and record["requests"] == 6

    def test_verbose_prints_per_request(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", str(tmp_path / "LT.json"), "-v",
        )
        assert code == 0
        assert "[6/6]" in err


class TestBaselineGate:
    def test_update_then_compare_ok(self, capsys, tmp_path):
        baseline = str(tmp_path / "base.json")
        code, record, _ = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", str(tmp_path / "LT1.json"),
            "--baseline", baseline, "--update-baseline",
        )
        assert code == 0 and record.get("baseline_updated") is True
        code, record, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", str(tmp_path / "LT2.json"),
            "--baseline", baseline, "--fail-on-regression", "1000",
        )
        assert code == 0, err
        assert record["regressions"] == []

    def test_synthetic_regression_fails_gate(self, capsys, tmp_path):
        baseline = str(tmp_path / "base.json")
        report_path = str(tmp_path / "LT1.json")
        code, _, _ = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", report_path, "--baseline", baseline, "--update-baseline",
        )
        assert code == 0
        # shrink the baseline's latencies so the next run must regress
        doc = json.load(open(baseline))
        doc["latency_ms"] = {
            k: (None if v is None else v / 10_000)
            for k, v in doc["latency_ms"].items()
        }
        doc["throughput_rps"] *= 10_000
        json.dump(doc, open(baseline, "w"))
        code, record, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", str(tmp_path / "LT2.json"),
            "--baseline", baseline, "--fail-on-regression", "1.5",
        )
        assert code == 1
        assert record["regressions"]
        assert "FAIL" in err

    def test_zero_successes_cannot_pass_the_gate(self, capsys, tmp_path):
        """All-failed runs have no gated metrics; the gate must fail,
        not green-light a run that completed nothing."""
        from unittest import mock

        from repro.api.wire import ERR_JOB_FAILED, EndpointError
        from repro.serving.server import OptimizationServer

        baseline = str(tmp_path / "base.json")
        code, _, _ = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", str(tmp_path / "LT1.json"),
            "--baseline", baseline, "--update-baseline",
        )
        assert code == 0

        def explode(self, job_id, timeout=None):
            raise EndpointError(ERR_JOB_FAILED, "nothing works")

        with mock.patch.object(OptimizationServer, "await_receipt", explode):
            code, record, err = _run(
                capsys, "--endpoint", "local:", "--preset", "micro",
                "--report", str(tmp_path / "LT2.json"),
                "--baseline", baseline, "--fail-on-regression", "1.5",
            )
        assert code == 1
        assert record["failed"] == 6
        assert "no request succeeded" in err

    def test_missing_baseline_errors(self, capsys, tmp_path):
        code, _, err = _run(
            capsys, "--endpoint", "local:", "--preset", "micro",
            "--report", str(tmp_path / "LT.json"),
            "--baseline", str(tmp_path / "nope.json"),
        )
        assert code == 2 and "--update-baseline" in err


class TestFailOnError:
    def test_unreachable_http_endpoint_exits_4(self, capsys, tmp_path):
        """A dead endpoint fails the preflight — exit 4 before any
        request, with or without --fail-on-error."""
        code, record, err = _run(
            capsys, "--endpoint", "http://127.0.0.1:1", "--preset", "micro",
            "--report", str(tmp_path / "LT.json"), "--timeout", "5",
        )
        assert code == 4
        assert record is None  # no report written, no stdout record
        assert "unusable" in err

    def test_mid_run_failures_tally_and_gate(self, capsys, tmp_path):
        """Failures after a healthy preflight land in the error tally
        and only --fail-on-error turns them into a nonzero exit."""
        from unittest import mock

        from repro.api.wire import ERR_JOB_FAILED, EndpointError
        from repro.serving.server import OptimizationServer

        def explode(self, job_id, timeout=None):
            raise EndpointError(ERR_JOB_FAILED, "synthetic mid-run failure")

        with mock.patch.object(OptimizationServer, "await_receipt", explode):
            code, record, _ = _run(
                capsys, "--endpoint", "local:", "--preset", "micro",
                "--report", str(tmp_path / "LT.json"), "--fail-on-error",
            )
        assert code == 1
        assert record["failed"] == 6
        assert record["error_codes"] == {ERR_JOB_FAILED: 6}
