"""Tests for Karger–Stein partitioning."""

import networkx as nx
import pytest

from repro.core.partition import Partition, karger_stein_partition, partition_sizes_std
from repro.models import build_model


class TestPartitionBasics:
    def test_covers_all_nodes(self, resnet_model):
        p = karger_stein_partition(resnet_model, 8, seed=0)
        p.validate_covers(resnet_model)
        assert sum(p.sizes) == resnet_model.num_nodes

    def test_exact_cluster_count(self, resnet_model):
        for n in (1, 4, 16):
            p = karger_stein_partition(resnet_model, n, seed=0)
            assert p.n == n

    def test_n_bounds(self, resnet_model):
        with pytest.raises(ValueError, match="n must be"):
            karger_stein_partition(resnet_model, 0)
        with pytest.raises(ValueError, match="n must be"):
            karger_stein_partition(resnet_model, resnet_model.num_nodes + 1)

    def test_trials_bound(self, resnet_model):
        with pytest.raises(ValueError, match="trials"):
            karger_stein_partition(resnet_model, 4, trials=0)

    def test_n_equals_num_nodes(self, conv_chain):
        p = karger_stein_partition(conv_chain, conv_chain.num_nodes, seed=0)
        assert all(s == 1 for s in p.sizes)

    def test_deterministic_by_seed(self, resnet_model):
        a = karger_stein_partition(resnet_model, 8, seed=3)
        b = karger_stein_partition(resnet_model, 8, seed=3)
        assert a.clusters == b.clusters

    def test_seeds_differ(self, resnet_model):
        a = karger_stein_partition(resnet_model, 8, seed=1)
        b = karger_stein_partition(resnet_model, 8, seed=2)
        assert a.clusters != b.clusters


class TestBalance:
    def test_balanced_sizes(self, resnet_model):
        """The multi-trial + cap enhancement should keep sizes near target."""
        n = resnet_model.num_nodes // 8
        p = karger_stein_partition(resnet_model, n, trials=16, seed=0)
        target = resnet_model.num_nodes / n
        assert max(p.sizes) <= 2 * target

    def test_more_trials_no_worse(self, resnet_model):
        few = karger_stein_partition(resnet_model, 8, trials=1, seed=5)
        many = karger_stein_partition(resnet_model, 8, trials=24, seed=5)
        assert partition_sizes_std(many.sizes) <= partition_sizes_std(few.sizes)


class TestConnectivity:
    def test_clusters_connected(self, resnet_model):
        """Contraction only merges adjacent nodes -> connected subgraphs."""
        p = karger_stein_partition(resnet_model, 8, seed=0)
        und = resnet_model.to_networkx().to_undirected()
        for cluster in p.clusters:
            assert nx.is_connected(und.subgraph(cluster))


class TestPartitionHelpers:
    def test_cluster_of(self, conv_chain):
        p = karger_stein_partition(conv_chain, 3, seed=0)
        owner = p.cluster_of()
        assert set(owner) == {n.name for n in conv_chain.nodes}

    def test_validate_catches_duplicates(self, conv_chain):
        name = conv_chain.nodes[0].name
        p = Partition([[name], [name]])
        with pytest.raises(ValueError, match="two clusters"):
            p.validate_covers(conv_chain)

    def test_validate_catches_missing(self, conv_chain):
        p = Partition([[conv_chain.nodes[0].name]])
        with pytest.raises(ValueError, match="does not cover"):
            p.validate_covers(conv_chain)

    def test_std_zero_for_equal(self):
        assert partition_sizes_std([4, 4, 4]) == 0.0
