"""Tests for ProteusConfig."""

import pytest

from repro.core import ProteusConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = ProteusConfig()
        assert cfg.k == 20
        assert cfg.target_subgraph_size == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"target_subgraph_size": 0},
            {"k": -1},
            {"beta": 0.0},
            {"partition_trials": 0},
            {"sentinel_strategy": "bogus"},
            {"likelihood_percentile": 0.0},
            {"likelihood_percentile": 101.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProteusConfig(**kwargs)


class TestDerived:
    def test_partitions_from_target_size(self):
        cfg = ProteusConfig(target_subgraph_size=8)
        assert cfg.partitions_for(80) == 10
        assert cfg.partitions_for(7) == 1  # never zero

    def test_explicit_n_wins(self):
        cfg = ProteusConfig(n=5)
        assert cfg.partitions_for(1000) == 5

    def test_explicit_n_capped_by_nodes(self):
        cfg = ProteusConfig(n=50)
        assert cfg.partitions_for(10) == 10

    def test_search_space_size(self):
        cfg = ProteusConfig(n=10, k=20)
        assert cfg.search_space_size() == 21.0**10

    def test_search_space_needs_n(self):
        with pytest.raises(ValueError, match="unresolved"):
            ProteusConfig().search_space_size()
        assert ProteusConfig(k=20).search_space_size(n=3) == 21.0**3
