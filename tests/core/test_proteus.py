"""End-to-end tests for the Proteus pipeline (obfuscate/optimize/deobfuscate)."""

import numpy as np
import pytest

from repro.core import ObfuscatedBucket, Proteus, ProteusConfig
from repro.core.proteus import BucketEntry
from repro.models import build_model
from repro.optimizer import HidetLikeOptimizer, OrtLikeOptimizer
from repro.runtime import graphs_equivalent


@pytest.fixture(scope="module")
def pipeline_no_sentinels():
    """Obfuscation with k=0 for fast structural tests."""
    g = build_model("resnet")
    p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
    bucket, plan = p.obfuscate(g)
    return g, p, bucket, plan


class TestObfuscation:
    def test_bucket_size(self, pipeline_no_sentinels):
        g, p, bucket, plan = pipeline_no_sentinels
        assert len(bucket) == bucket.n_groups  # k=0: one entry per group
        assert bucket.k == 0

    def test_real_ids_recorded_per_group(self, pipeline_no_sentinels):
        _, _, bucket, plan = pipeline_no_sentinels
        assert len(plan.real_ids) == bucket.n_groups
        groups = [bucket.get(eid).group for eid in plan.real_ids]
        assert groups == sorted(groups)

    def test_entries_anonymized(self, pipeline_no_sentinels):
        _, _, bucket, _ = pipeline_no_sentinels
        for entry in bucket:
            for node in entry.graph.nodes:
                assert node.name.startswith("op")

    def test_with_sentinels(self, sentinel_generator):
        g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        p = Proteus(
            ProteusConfig(target_subgraph_size=8, k=2, seed=0),
            sentinel_source=sentinel_generator,
        )
        bucket, plan = p.obfuscate(g)
        assert len(bucket) == bucket.n_groups * 3
        for group in range(bucket.n_groups):
            assert len(bucket.group_entries(group)) == 3
        # exactly one real per group
        real_by_group = {bucket.get(eid).group for eid in plan.real_ids}
        assert real_by_group == set(range(bucket.n_groups))

    def test_nominal_search_space(self, sentinel_generator):
        g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        p = Proteus(
            ProteusConfig(target_subgraph_size=8, k=2, seed=0),
            sentinel_source=sentinel_generator,
        )
        bucket, _ = p.obfuscate(g)
        assert bucket.nominal_search_space() == 3.0**bucket.n_groups


class TestBucket:
    def test_duplicate_ids_rejected(self, conv_chain):
        e = BucketEntry("a", 0, conv_chain)
        with pytest.raises(ValueError, match="duplicate"):
            ObfuscatedBucket([e, e], 1, 0)

    def test_get_and_iter(self, pipeline_no_sentinels):
        _, _, bucket, _ = pipeline_no_sentinels
        ids = [e.entry_id for e in bucket]
        assert bucket.get(ids[0]).entry_id == ids[0]
        assert len(ids) == len(set(ids))


class TestRoundTrip:
    def test_equivalence_ort(self, pipeline_no_sentinels):
        g, p, bucket, plan = pipeline_no_sentinels
        optimized = p.optimize_bucket(bucket, OrtLikeOptimizer())
        rec = p.deobfuscate(optimized, plan)
        assert graphs_equivalent(g, rec, n_trials=1)

    def test_equivalence_hidet(self, pipeline_no_sentinels):
        g, p, bucket, plan = pipeline_no_sentinels
        optimized = p.optimize_bucket(bucket, HidetLikeOptimizer())
        rec = p.deobfuscate(optimized, plan)
        assert graphs_equivalent(g, rec, n_trials=1)

    def test_unoptimized_roundtrip(self, pipeline_no_sentinels):
        """Deobfuscating without optimizing must also reproduce the model."""
        g, p, bucket, plan = pipeline_no_sentinels
        rec = p.deobfuscate(bucket, plan)
        assert graphs_equivalent(g, rec, n_trials=1)

    def test_run_pipeline_convenience(self):
        g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        rec = p.run_pipeline(g, OrtLikeOptimizer())
        assert graphs_equivalent(g, rec, n_trials=1)

    @pytest.mark.parametrize("name", ["mobilenet", "bert", "densenet", "nats"])
    def test_roundtrip_across_zoo(self, name):
        g = build_model(name)
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=1))
        rec = p.run_pipeline(g, OrtLikeOptimizer())
        assert graphs_equivalent(g, rec, n_trials=1)

    def test_full_pipeline_with_sentinels(self, sentinel_generator):
        g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        p = Proteus(
            ProteusConfig(target_subgraph_size=8, k=2, seed=0),
            sentinel_source=sentinel_generator,
        )
        bucket, plan = p.obfuscate(g)
        optimized = p.optimize_bucket(bucket, OrtLikeOptimizer())
        rec = p.deobfuscate(optimized, plan)
        assert graphs_equivalent(g, rec, n_trials=1)


class TestPlanIntegrity:
    def test_plan_alignment_checked(self, pipeline_no_sentinels):
        from repro.core import ReassemblyPlan
        g, _, _, plan = pipeline_no_sentinels
        with pytest.raises(ValueError, match="align"):
            ReassemblyPlan(g, plan.real_ids[:-1], plan.boundaries)

    def test_partition_respects_config_n(self):
        g = build_model("resnet")
        p = Proteus(ProteusConfig(n=5, k=0, seed=0))
        part = p.partition(g)
        assert part.n == 5
