"""core tests."""
