"""Tests for bucket/plan serialization (the two-party exchange)."""

import json

import pytest

from repro.core import Proteus, ProteusConfig
from repro.core.bucket_io import (
    bucket_from_dict,
    bucket_to_dict,
    load_bucket,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_bucket,
    save_plan,
)
from repro.models import build_model
from repro.optimizer import OrtLikeOptimizer
from repro.runtime import graphs_equivalent


@pytest.fixture(scope="module")
def small_pipeline():
    g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
    p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
    bucket, plan = p.obfuscate(g)
    return g, p, bucket, plan


class TestBucketRoundTrip:
    def test_structure(self, small_pipeline):
        _, _, bucket, _ = small_pipeline
        back = bucket_from_dict(bucket_to_dict(bucket))
        assert len(back) == len(bucket)
        assert back.n_groups == bucket.n_groups
        assert back.k == bucket.k
        for e in bucket:
            assert back.get(e.entry_id).group == e.group

    def test_version_check(self, small_pipeline):
        _, _, bucket, _ = small_pipeline
        d = bucket_to_dict(bucket)
        d["format_version"] = 99
        with pytest.raises(ValueError, match="format"):
            bucket_from_dict(d)

    def test_file_roundtrip(self, small_pipeline, tmp_path):
        _, _, bucket, _ = small_pipeline
        path = str(tmp_path / "bucket.json")
        save_bucket(bucket, path)
        back = load_bucket(path)
        assert len(back) == len(bucket)

    def test_bucket_leaks_no_secrets(self, small_pipeline):
        """The shipped artifact must not contain original model names."""
        g, _, bucket, plan = small_pipeline
        payload = json.dumps(bucket_to_dict(bucket))
        for node in g.nodes:
            assert f'"{node.name}"' not in payload
        for b in plan.boundaries:
            for orig in b.input_values + b.output_values:
                assert f'"{orig}"' not in payload


class TestPlanRoundTrip:
    def test_structure(self, small_pipeline):
        _, _, _, plan = small_pipeline
        back = plan_from_dict(plan_to_dict(plan))
        assert back.real_ids == plan.real_ids
        assert len(back.boundaries) == len(plan.boundaries)
        assert back.boundaries[0].anon_to_original() == plan.boundaries[0].anon_to_original()

    def test_version_check(self, small_pipeline):
        _, _, _, plan = small_pipeline
        d = plan_to_dict(plan)
        d["format_version"] = 99
        with pytest.raises(ValueError, match="format"):
            plan_from_dict(d)

    def test_full_two_party_exchange(self, small_pipeline, tmp_path):
        """Owner saves both; optimizer loads bucket, optimizes, saves;
        owner reloads everything and recovers the optimized model."""
        g, p, bucket, plan = small_pipeline
        save_bucket(bucket, str(tmp_path / "ship.json"))
        save_plan(plan, str(tmp_path / "secret.json"))

        # optimizer party
        received = load_bucket(str(tmp_path / "ship.json"))
        optimized = Proteus.optimize_bucket(received, OrtLikeOptimizer())
        save_bucket(optimized, str(tmp_path / "return.json"))

        # owner party
        returned = load_bucket(str(tmp_path / "return.json"))
        secret = load_plan(str(tmp_path / "secret.json"))
        recovered = Proteus.deobfuscate(returned, secret)
        assert graphs_equivalent(g, recovered, n_trials=1)
