"""Tests for reassembly invariants beyond the happy path."""

import pytest

from repro.core import Proteus, ProteusConfig, reassemble
from repro.core.reassembly import stitch_boundaries_consistent
from repro.models import build_model
from repro.optimizer import OrtLikeOptimizer
from repro.runtime import CostModel, graphs_equivalent


class TestReassembly:
    def test_length_mismatch_rejected(self, conv_chain):
        with pytest.raises(ValueError, match="boundaries"):
            reassemble(conv_chain, [conv_chain], [])

    def test_slowdown_vs_whole_graph_optimization(self):
        """Partitioned optimization loses some fusions but stays close
        (the Fig. 4 claim): latency(best) <= latency(proteus) <= latency(unopt)."""
        g = build_model("resnet")
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        rec = p.run_pipeline(g, OrtLikeOptimizer())
        whole = OrtLikeOptimizer().optimize(g)
        cm = CostModel()
        unopt, best, proteus = (cm.graph_latency(x) for x in (g, whole, rec))
        assert best <= proteus <= unopt
        assert proteus / best < 1.35  # within reasonable shape of the paper's 10%

    def test_reassembled_graph_has_prefixed_nodes(self):
        g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        bucket, plan = p.obfuscate(g)
        rec = p.deobfuscate(bucket, plan)
        assert all(n.name.startswith("sg") for n in rec.nodes)

    def test_boundary_producers_unique(self):
        g = build_model("resnet")
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        _, plan = p.obfuscate(g)
        producers = stitch_boundaries_consistent(plan.boundaries)
        assert all(len(v) == 1 for v in producers.values())

    def test_interface_preserved(self):
        g = build_model("mobilenet")
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        rec = p.run_pipeline(g, OrtLikeOptimizer())
        assert rec.input_names == g.input_names
        assert rec.output_names == g.output_names

    def test_double_optimization_still_equivalent(self):
        """Optimizing the reassembled model again must be safe."""
        g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
        p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
        rec = p.run_pipeline(g, OrtLikeOptimizer())
        rec2 = OrtLikeOptimizer().optimize(rec)
        assert graphs_equivalent(g, rec2, n_trials=1)
