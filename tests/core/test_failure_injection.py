"""Failure-injection tests: the pipeline must fail loudly, not corrupt.

A malicious or buggy optimizer party can return graphs that violate the
contract (renamed boundary values, dropped outputs, semantically wrong
rewrites).  De-obfuscation must detect interface violations, and the
owner's equivalence check must catch semantic ones.
"""

import numpy as np
import pytest

from repro.core import Proteus, ProteusConfig
from repro.ir.graph import Graph, Value
from repro.ir.node import Node
from repro.models import build_model
from repro.runtime import graphs_equivalent


@pytest.fixture()
def pipeline():
    g = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16))
    p = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=0))
    bucket, plan = p.obfuscate(g)
    return g, p, bucket, plan


class _OutputRenamingOptimizer:
    """Contract violation: renames every subgraph output."""

    def optimize(self, graph: Graph) -> Graph:
        out = graph.clone()
        for i, v in enumerate(list(out.outputs)):
            new = f"renamed_{i}"
            producer = out.producer_of(v.name)
            if producer is not None:
                producer.outputs = [new if o == v.name else o for o in producer.outputs]
            out.replace_all_uses(v.name, new)
            out.outputs[i] = Value(new, v.type)
        out._invalidate()
        return out


class _WeightCorruptingOptimizer:
    """Semantic violation: perturbs one weight (structure intact)."""

    def optimize(self, graph: Graph) -> Graph:
        out = graph.clone()
        for name in out.initializers:
            arr = out.initializers[name]
            if arr.size > 1 and np.issubdtype(arr.dtype, np.floating):
                out.initializers[name] = arr + 0.1
                break
        return out


class _Identity:
    def optimize(self, graph: Graph) -> Graph:
        return graph.clone()


class TestInterfaceViolations:
    def test_renamed_outputs_detected(self, pipeline):
        g, p, bucket, plan = pipeline
        broken = p.optimize_bucket(bucket, _OutputRenamingOptimizer())
        with pytest.raises(ValueError, match="lost boundary values"):
            p.deobfuscate(broken, plan)

    def test_missing_entry_detected(self, pipeline):
        g, p, bucket, plan = pipeline
        from repro.core import ObfuscatedBucket
        truncated = ObfuscatedBucket(list(bucket)[1:], bucket.n_groups, bucket.k)
        with pytest.raises(KeyError):
            p.deobfuscate(truncated, plan)


class TestSemanticViolations:
    def test_weight_corruption_caught_by_equivalence(self, pipeline):
        g, p, bucket, plan = pipeline
        corrupted = p.optimize_bucket(bucket, _WeightCorruptingOptimizer())
        recovered = p.deobfuscate(corrupted, plan)  # stitches fine...
        assert not graphs_equivalent(g, recovered, n_trials=1)  # ...but differs

    def test_identity_optimizer_is_safe(self, pipeline):
        g, p, bucket, plan = pipeline
        recovered = p.deobfuscate(p.optimize_bucket(bucket, _Identity()), plan)
        assert graphs_equivalent(g, recovered, n_trials=1)


class TestPlanBucketMismatch:
    def test_wrong_plan_fails(self, pipeline):
        g, p, bucket, plan = pipeline
        other = build_model("resnet", stage_blocks=(1, 1), widths=(8, 16), seed=3)
        p2 = Proteus(ProteusConfig(target_subgraph_size=8, k=0, seed=9))
        _, other_plan = p2.obfuscate(other)
        with pytest.raises((KeyError, ValueError)):
            p.deobfuscate(bucket, other_plan)
