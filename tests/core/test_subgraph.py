"""Tests for subgraph extraction and anonymization."""

import pytest

from repro.core.partition import karger_stein_partition
from repro.core.subgraph import anonymize_subgraph, extract_subgraph
from repro.ir.shape_inference import infer_shapes
from repro.ir.validate import validate_graph
from repro.runtime import Executor, random_inputs


class TestExtraction:
    def test_subgraphs_valid(self, resnet_model):
        infer_shapes(resnet_model)
        p = karger_stein_partition(resnet_model, 8, seed=0)
        for i, cluster in enumerate(p.clusters):
            sub, boundary = extract_subgraph(resnet_model, cluster, i)
            validate_graph(sub)
            assert boundary.index == i

    def test_boundary_values_match_interface(self, resnet_model):
        infer_shapes(resnet_model)
        p = karger_stein_partition(resnet_model, 6, seed=1)
        sub, boundary = extract_subgraph(resnet_model, p.clusters[2], 2)
        assert sub.input_names == boundary.input_values
        assert sub.output_names == boundary.output_values

    def test_initializers_copied(self, resnet_model):
        infer_shapes(resnet_model)
        p = karger_stein_partition(resnet_model, 4, seed=0)
        sub, _ = extract_subgraph(resnet_model, p.clusters[0], 0)
        for node in sub.nodes:
            for inp in node.inputs:
                assert (
                    inp in sub.initializers
                    or sub.is_graph_input(inp)
                    or sub.producer_of(inp) is not None
                )

    def test_subgraph_executes(self, resnet_model):
        infer_shapes(resnet_model)
        p = karger_stein_partition(resnet_model, 8, seed=0)
        sub, _ = extract_subgraph(resnet_model, p.clusters[1], 1)
        out = Executor(sub).run(random_inputs(sub))
        assert set(out) == set(sub.output_names)

    def test_unknown_cluster_node(self, conv_chain):
        infer_shapes(conv_chain)
        with pytest.raises(ValueError, match="unknown nodes"):
            extract_subgraph(conv_chain, ["ghost_node"], 0)

    def test_model_outputs_become_subgraph_outputs(self, conv_chain):
        infer_shapes(conv_chain)
        cluster = [n.name for n in conv_chain.nodes]  # whole model
        sub, boundary = extract_subgraph(conv_chain, cluster, 0)
        assert set(conv_chain.output_names) <= set(boundary.output_values)


class TestAnonymization:
    def extract_one(self, model, seed=0):
        infer_shapes(model)
        p = karger_stein_partition(model, 6, seed=seed)
        return extract_subgraph(model, p.clusters[1], 1)

    def test_no_original_names_leak(self, resnet_model):
        sub, boundary = self.extract_one(resnet_model)
        anon, _ = anonymize_subgraph(sub, boundary, "g00001")
        original_names = sub.all_value_names() | {n.name for n in sub.nodes}
        anon_names = anon.all_value_names() | {n.name for n in anon.nodes}
        assert not (original_names & anon_names)

    def test_structure_preserved(self, resnet_model):
        import networkx as nx
        sub, boundary = self.extract_one(resnet_model)
        anon, _ = anonymize_subgraph(sub, boundary, "g00001")
        assert anon.opcode_histogram() == sub.opcode_histogram()
        assert len(anon.initializers) == len(sub.initializers)
        assert nx.is_isomorphic(
            sub.to_networkx(),
            anon.to_networkx(),
            node_match=lambda a, b: a["op_type"] == b["op_type"],
        )

    def test_boundary_mapping_roundtrips(self, resnet_model):
        sub, boundary = self.extract_one(resnet_model)
        anon, anon_boundary = anonymize_subgraph(sub, boundary, "g00001")
        mapping = anon_boundary.anon_to_original()
        assert sorted(mapping.values()) == sorted(
            boundary.input_values + boundary.output_values
        )
        assert set(anon_boundary.anon_inputs) <= {v.name for v in anon.inputs}

    def test_anonymized_executes_same(self, resnet_model):
        import numpy as np
        sub, boundary = self.extract_one(resnet_model)
        anon, anon_boundary = anonymize_subgraph(sub, boundary, "g00001")
        feeds = random_inputs(sub, seed=2)
        anon_feeds = {
            a: feeds[o] for a, o in zip(anon_boundary.anon_inputs, boundary.input_values)
        }
        out = Executor(sub).run(feeds)
        anon_out = Executor(anon).run(anon_feeds)
        for a, o in zip(anon_boundary.anon_outputs, boundary.output_values):
            np.testing.assert_allclose(anon_out[a], out[o], rtol=1e-5)
