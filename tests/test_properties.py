"""Property-based tests (hypothesis) on core invariants.

These cover the load-bearing algebraic properties:
* shape inference agrees with kernel execution for arbitrary shapes;
* orientation always yields a DAG with the same edge set;
* partitioning is always a disjoint cover for any (n, seed);
* optimizer pipelines preserve functional behaviour on random graphs;
* serialization round-trips arbitrary builder graphs.
"""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.partition import karger_stein_partition
from repro.ir import GraphBuilder
from repro.ir.serialization import graph_from_dict, graph_to_dict
from repro.ir.shape_inference import broadcast_shapes, ShapeInferenceError
from repro.optimizer import OrtLikeOptimizer
from repro.runtime import Executor, graphs_equivalent, random_inputs
from repro.sentinel.orientation import induce_orientation

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- strategy: random small CNN-ish graphs ----------------------------------

@st.composite
def cnn_graphs(draw):
    seed = draw(st.integers(0, 10_000))
    channels = draw(st.integers(2, 6))
    size = draw(st.sampled_from([8, 12, 16]))
    depth = draw(st.integers(1, 4))
    rng = np.random.default_rng(seed)
    b = GraphBuilder(f"prop_{seed}", seed=seed)
    x = b.input("x", (1, 3, size, size))
    h = b.conv(x, channels, kernel=3)
    for _ in range(depth):
        op = rng.integers(0, 5)
        if op == 0:
            h = b.relu(b.batchnorm(h))
        elif op == 1:
            skip = h
            h = b.conv(h, channels, kernel=3)
            h = b.add(h, skip)
        elif op == 2:
            h = b.sigmoid(h)
        elif op == 3:
            h = b.conv(h, channels, kernel=1, pad=0)
            h = b.relu(h)
        else:
            h = b.mul(h, b.scalar(float(rng.uniform(0.5, 2.0))))
    h = b.global_avgpool(h)
    h = b.flatten(h)
    h = b.linear(h, channels, 4)
    return b.build([h])


class TestBroadcastProperties:
    @_settings
    @given(
        st.lists(st.integers(1, 5), min_size=0, max_size=4),
        st.lists(st.integers(1, 5), min_size=0, max_size=4),
    )
    def test_broadcast_matches_numpy(self, a, b):
        a, b = tuple(a), tuple(b)
        try:
            expected = np.broadcast_shapes(a, b)
            ours = broadcast_shapes(a, b)
            assert ours == tuple(expected)
        except ValueError:
            with pytest.raises(ShapeInferenceError):
                broadcast_shapes(a, b)

    @_settings
    @given(st.lists(st.integers(1, 6), min_size=1, max_size=4))
    def test_broadcast_identity(self, shape):
        s = tuple(shape)
        assert broadcast_shapes(s, s) == s


class TestGraphProperties:
    @_settings
    @given(cnn_graphs())
    def test_shape_inference_matches_execution(self, graph):
        out = Executor(graph).run(random_inputs(graph))
        for name, arr in out.items():
            assert arr.shape == graph.value_types[name].shape

    @_settings
    @given(cnn_graphs())
    def test_optimizer_preserves_function(self, graph):
        opt = OrtLikeOptimizer().optimize(graph)
        assert graphs_equivalent(graph, opt, n_trials=1)
        assert opt.num_nodes <= graph.num_nodes

    @_settings
    @given(cnn_graphs())
    def test_serialization_roundtrip(self, graph):
        back = graph_from_dict(graph_to_dict(graph))
        assert graphs_equivalent(graph, back, n_trials=1)

    @_settings
    @given(cnn_graphs(), st.integers(1, 6), st.integers(0, 100))
    def test_partition_is_disjoint_cover(self, graph, n, seed):
        n = min(n, graph.num_nodes)
        p = karger_stein_partition(graph, n, trials=4, seed=seed)
        p.validate_covers(graph)
        assert p.n == n


class TestOrientationProperties:
    @_settings
    @given(
        st.integers(3, 20),
        st.floats(0.1, 0.5),
        st.integers(0, 1000),
    )
    def test_orientation_dag_and_edges(self, n, p, seed):
        g = nx.gnp_random_graph(n, p, seed=seed)
        dag = induce_orientation(g)
        assert nx.is_directed_acyclic_graph(dag)
        assert dag.number_of_edges() == g.number_of_edges()
        for a, b in g.edges():
            assert dag.has_edge(a, b) != dag.has_edge(b, a)


class TestSearchSpaceProperties:
    @_settings
    @given(st.integers(1, 30), st.integers(0, 50), st.floats(0.0, 1.0))
    def test_search_space_monotone_in_specificity(self, n, k, beta):
        from repro.adversary import search_space_size
        lo = search_space_size(n, k, min(1.0, beta + 0.1)) if beta <= 0.9 else 1.0
        hi = search_space_size(n, k, beta)
        assert hi >= lo >= 1.0
        assert math.isfinite(math.log10(hi)) or hi == 0
