"""adversary tests."""
