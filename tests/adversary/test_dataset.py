"""Tests for leave-one-out dataset construction."""

import pytest

from repro.adversary.dataset import build_leave_one_out, subgraphs_of
from repro.adversary.opgraph import LabeledDataset, opcode_vocabulary, to_opgraph
from repro.models import build_model


@pytest.fixture(scope="module")
def tiny_corpus():
    return {
        "resnet": build_model("resnet", stage_blocks=(1, 1), widths=(8, 16)),
        "mobilenet": build_model("mobilenet", stages=((1, 8, 1, 1), (4, 12, 2, 2))),
        "googlenet": build_model("googlenet"),
    }


class TestSubgraphsOf:
    def test_covers_model(self, tiny_corpus):
        model = tiny_corpus["resnet"]
        subs = subgraphs_of(model, target_size=8)
        assert sum(s.num_nodes for s in subs) == model.num_nodes


class TestLeaveOneOut:
    def test_protected_model_excluded_from_training(self, tiny_corpus, sentinel_generator):
        data = build_leave_one_out(
            "resnet", tiny_corpus, k=2, mode="proteus",
            generator=sentinel_generator, seed=0,
        )
        protected_nodes = tiny_corpus["resnet"].num_nodes
        train_real_nodes = sum(
            g.number_of_nodes() for g, l in zip(data.train.graphs, data.train.labels) if l == 0
        )
        other_nodes = sum(g.num_nodes for n, g in tiny_corpus.items() if n != "resnet")
        assert train_real_nodes == other_nodes
        assert sum(s.num_nodes for s in data.protected_reals) == protected_nodes

    def test_group_sizes(self, tiny_corpus, sentinel_generator):
        data = build_leave_one_out(
            "resnet", tiny_corpus, k=3, mode="proteus",
            generator=sentinel_generator, seed=0,
        )
        assert all(len(g) == 3 for g in data.protected_sentinel_groups)
        assert len(data.protected_sentinel_groups) == len(data.protected_reals)

    def test_random_mode(self, tiny_corpus, sentinel_generator):
        data = build_leave_one_out(
            "resnet", tiny_corpus, k=2, mode="random",
            generator=sentinel_generator, seed=0,
        )
        import networkx as nx
        for group in data.protected_sentinel_groups:
            for g in group:
                assert isinstance(g, nx.DiGraph)
                assert all("op_type" in g.nodes[v] for v in g.nodes())

    def test_unknown_protected(self, tiny_corpus):
        with pytest.raises(KeyError):
            build_leave_one_out("vgg", tiny_corpus, k=2)

    def test_bad_mode(self, tiny_corpus):
        with pytest.raises(ValueError, match="mode"):
            build_leave_one_out("resnet", tiny_corpus, k=2, mode="quantum")


class TestOpgraphHelpers:
    def test_labeled_dataset_validates(self):
        with pytest.raises(ValueError, match="mismatch"):
            LabeledDataset([], [1])

    def test_from_parts_labels(self, tiny_corpus):
        subs = subgraphs_of(tiny_corpus["googlenet"])
        assert len(subs) >= 4
        ds = LabeledDataset.from_parts(subs[:2], subs[2:4])
        assert ds.labels == [0, 0, 1, 1]

    def test_merged(self, tiny_corpus):
        subs = subgraphs_of(tiny_corpus["resnet"])
        a = LabeledDataset.from_parts(subs[:1], [])
        b = LabeledDataset.from_parts([], subs[1:2])
        merged = a.merged_with(b)
        assert len(merged) == 2

    def test_vocabulary(self, tiny_corpus):
        subs = subgraphs_of(tiny_corpus["resnet"])
        ds = LabeledDataset.from_parts(subs, [])
        vocab = opcode_vocabulary([ds])
        assert "Conv" in vocab
        assert vocab == tuple(sorted(vocab))

    def test_to_opgraph_requires_op_type(self):
        import networkx as nx
        g = nx.DiGraph()
        g.add_node(0)
        with pytest.raises(ValueError, match="op_type"):
            to_opgraph(g)
