"""Tests for the numpy GraphSAGE classifier, including a numerical
gradient check certifying the manual backprop."""

import networkx as nx
import numpy as np
import pytest

from repro.adversary.gnn import GNNClassifier, encode_graph
from repro.adversary.opgraph import to_opgraph


def tiny_graph():
    g = nx.DiGraph()
    g.add_node(0, op_type="Conv")
    g.add_node(1, op_type="Relu")
    g.add_node(2, op_type="Add")
    g.add_edges_from([(0, 1), (1, 2), (0, 2)])
    return g


VOCAB = ("Add", "Conv", "Relu", "Sigmoid")


class TestEncoding:
    def test_opcode_ids(self):
        enc = encode_graph(tiny_graph(), {op: i for i, op in enumerate(VOCAB)})
        assert enc.op_ids.tolist() == [1, 2, 0]

    def test_oov_maps_to_last(self):
        g = tiny_graph()
        g.nodes[0]["op_type"] = "Exotic"
        enc = encode_graph(g, {op: i for i, op in enumerate(VOCAB)})
        assert enc.op_ids[0] == len(VOCAB)

    def test_aggregation_rows_normalized(self):
        enc = encode_graph(tiny_graph(), {op: i for i, op in enumerate(VOCAB)})
        sums = enc.agg.sum(axis=1)
        np.testing.assert_allclose(sums, 1.0)

    def test_ir_graph_via_opgraph(self, conv_chain):
        og = to_opgraph(conv_chain)
        enc = encode_graph(og, {"Conv": 0})
        assert len(enc.op_ids) == conv_chain.num_nodes


class TestForward:
    def test_probability_range(self):
        model = GNNClassifier(VOCAB, seed=0)
        enc = encode_graph(tiny_graph(), model.vocab_index)
        prob, _ = model.forward(enc)
        assert 0.0 < prob < 1.0

    def test_deterministic(self):
        model = GNNClassifier(VOCAB, seed=0)
        enc = encode_graph(tiny_graph(), model.vocab_index)
        assert model.forward(enc)[0] == model.forward(enc)[0]

    def test_depends_on_opcodes(self):
        model = GNNClassifier(VOCAB, seed=0)
        g2 = tiny_graph()
        g2.nodes[0]["op_type"] = "Sigmoid"
        p1 = model.forward(encode_graph(tiny_graph(), model.vocab_index))[0]
        p2 = model.forward(encode_graph(g2, model.vocab_index))[0]
        assert p1 != p2

    def test_predict_proba_batch(self):
        model = GNNClassifier(VOCAB, seed=0)
        encs = [encode_graph(tiny_graph(), model.vocab_index)] * 3
        probs = model.predict_proba(encs)
        assert probs.shape == (3,)

    def test_layer_count_validated(self):
        with pytest.raises(ValueError, match="layer"):
            GNNClassifier(VOCAB, n_layers=0)


class TestBackward:
    def test_gradient_check(self):
        """Finite-difference check of every parameter's gradient."""
        model = GNNClassifier(VOCAB, embed_dim=5, hidden_dim=6, seed=1)
        enc = encode_graph(tiny_graph(), model.vocab_index)
        label = 1.0

        def loss():
            p, _ = model.forward(enc)
            p = min(max(p, 1e-9), 1 - 1e-9)
            return -(label * np.log(p) + (1 - label) * np.log(1 - p))

        prob, cache = model.forward(enc)
        grads = model.backward(enc, cache, prob, label)
        eps = 1e-6
        for key in model.params:
            g_analytic = grads[key]
            flat = model.params[key].ravel()
            # sample a few coordinates per tensor
            idxs = np.linspace(0, flat.size - 1, min(5, flat.size)).astype(int)
            for i in idxs:
                orig = flat[i]
                flat[i] = orig + eps
                up = loss()
                flat[i] = orig - eps
                down = loss()
                flat[i] = orig
                numeric = (up - down) / (2 * eps)
                assert g_analytic.ravel()[i] == pytest.approx(numeric, rel=1e-3, abs=1e-6), key

    def test_get_set_params_roundtrip(self):
        model = GNNClassifier(VOCAB, seed=0)
        snapshot = model.get_params()
        enc = encode_graph(tiny_graph(), model.vocab_index)
        p_before = model.forward(enc)[0]
        model.params["w_out"] += 1.0
        model.set_params(snapshot)
        assert model.forward(enc)[0] == p_before
