"""Tests for adversary training, the attack protocol, and heuristics."""

import networkx as nx
import numpy as np
import pytest

from repro.adversary import (
    LabeledDataset,
    expert_panel,
    run_attack,
    run_survey,
    search_space_size,
    train_classifier,
    evaluate_classifier,
)
from repro.adversary.attack import AttackReport


def separable_dataset(n=30, seed=0):
    """Reals = chains of Conv/Relu; fakes = chains of Softmax/Sigmoid."""
    rng = np.random.default_rng(seed)
    reals, fakes = [], []
    for _ in range(n):
        g = nx.DiGraph()
        ops = ["Conv", "Relu"] * 3
        for j, op in enumerate(ops):
            g.add_node(j, op_type=op)
            if j:
                g.add_edge(j - 1, j)
        reals.append(g)
        f = nx.DiGraph()
        for j, op in enumerate(["Softmax", "Sigmoid"] * 3):
            f.add_node(j, op_type=op)
            if j:
                f.add_edge(j - 1, j)
        fakes.append(f)
    return LabeledDataset.from_parts(reals, fakes)


class TestTraining:
    def test_learns_separable_data(self):
        ds = separable_dataset()
        result = train_classifier(ds, epochs=30, seed=0)
        metrics = evaluate_classifier(result.model, ds)
        assert metrics["accuracy"] > 0.95

    def test_loss_decreases(self):
        ds = separable_dataset()
        result = train_classifier(ds, epochs=30, seed=0)
        assert result.losses[-1] < result.losses[0]

    def test_small_dataset_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            train_classifier(LabeledDataset([], []))

    def test_deterministic(self):
        ds = separable_dataset()
        a = train_classifier(ds, epochs=5, seed=1)
        b = train_classifier(ds, epochs=5, seed=1)
        assert a.losses == b.losses


class TestSearchSpace:
    def test_formula(self):
        assert search_space_size(10, 20, 1.0) == 1.0
        assert search_space_size(10, 20, 0.0) == pytest.approx(21.0**10)
        assert search_space_size(2, 10, 0.5) == pytest.approx(6.0**2)

    def test_specificity_range(self):
        with pytest.raises(ValueError):
            search_space_size(2, 5, 1.5)


class TestAttack:
    def test_attack_on_separable(self):
        ds = separable_dataset()
        result = train_classifier(ds, epochs=30, seed=0)
        reals = [g for g, l in zip(ds.graphs, ds.labels) if l == 0][:4]
        fakes = [g for g, l in zip(ds.graphs, ds.labels) if l == 1]
        groups = [fakes[:5] for _ in reals]
        rep = run_attack(result.model, reals, groups, "sep")
        assert rep.sensitivity == 1.0
        assert rep.specificity > 0.9  # easily separable: most fakes eliminated
        assert rep.candidates < 10

    def test_attack_gamma_keeps_reals(self):
        ds = separable_dataset()
        result = train_classifier(ds, epochs=10, seed=0)
        reals = [g for g, l in zip(ds.graphs, ds.labels) if l == 0][:3]
        groups = [[g for g, l in zip(ds.graphs, ds.labels) if l == 1][:4]] * 3
        rep = run_attack(result.model, reals, groups)
        assert all(s < rep.gamma for s in rep.real_scores)

    def test_group_shape_validation(self, conv_chain):
        from repro.adversary.gnn import GNNClassifier
        model = GNNClassifier(("Conv",))
        with pytest.raises(ValueError, match="per real subgraph"):
            run_attack(model, [conv_chain], [])
        with pytest.raises(ValueError, match="ragged"):
            run_attack(model, [conv_chain, conv_chain],
                       [[conv_chain], [conv_chain, conv_chain]])

    def test_report_log10(self):
        rep = AttackReport("m", 10, 20, 0.5, 1.0, 0.0, 21.0**10, [], [])
        assert rep.log10_candidates == pytest.approx(10 * np.log10(21.0))
        assert "m:" in rep.summary()


class TestHeuristics:
    def test_panel_size(self, subgraph_database):
        panel = expert_panel(subgraph_database, n_experts=13, seed=0)
        assert len(panel) == 13

    def test_survey_on_trivially_fake_graphs(self, subgraph_database, rng):
        """Sanity: heuristics beat chance on *random-opcode* fakes."""
        from repro.sentinel.random_baseline import random_opcode_graph
        panel = expert_panel(subgraph_database, n_experts=8, seed=0)
        reals = subgraph_database[:10]
        fakes = [random_opcode_graph(g.to_networkx(), rng) for g in reals]
        graphs = list(reals) + fakes
        labels = [0] * len(reals) + [1] * len(fakes)
        res = run_survey(panel, graphs, labels)
        assert res["mean_accuracy"] > 0.5

    def test_survey_validates_lengths(self, subgraph_database):
        panel = expert_panel(subgraph_database, n_experts=2)
        with pytest.raises(ValueError, match="mismatch"):
            run_survey(panel, subgraph_database[:3], [0])

    def test_survey_near_chance_on_proteus(self, sentinel_generator, subgraph_database):
        """The §A.8 survey result: experts ~50% on Proteus sentinels."""
        reals = subgraph_database[:8]
        fakes = []
        for i, r in enumerate(reals):
            fakes.extend(sentinel_generator.generate(r, k=1, seed=100 + i))
        panel = expert_panel(subgraph_database, n_experts=13, seed=1)
        res = run_survey(panel, list(reals) + fakes, [0] * 8 + [1] * 8)
        assert 0.25 <= res["mean_accuracy"] <= 0.75
