"""Shared fixtures: small graphs, zoo models, and a sentinel generator.

Expensive artifacts (models, the trained sentinel generator) are
session-scoped so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.models import build_model
from repro.sentinel import SentinelGenerator, build_subgraph_database


def make_conv_chain(seed: int = 0, channels: int = 8, size: int = 16):
    """Conv→BN→Relu→Conv→BN→Add(residual)→Relu→GAP→Flatten→Gemm."""
    b = GraphBuilder("conv_chain", seed=seed)
    x = b.input("x", (1, 3, size, size))
    h = b.conv(x, channels, kernel=3, bias=False)
    h = b.batchnorm(h)
    skip = b.relu(h)
    h = b.conv(skip, channels, kernel=3, bias=False)
    h = b.batchnorm(h)
    h = b.add(h, skip)
    h = b.relu(h)
    h = b.global_avgpool(h)
    h = b.flatten(h)
    h = b.gemm(h, channels, 10)
    return b.build([h])


def make_mlp(seed: int = 0, in_dim: int = 12, hidden: int = 16):
    """MatMul+Add → Relu → MatMul+Add (pre-fusion dense stack)."""
    b = GraphBuilder("mlp", seed=seed)
    x = b.input("x", (1, in_dim))
    h = b.linear(x, in_dim, hidden)
    h = b.relu(h)
    h = b.linear(h, hidden, 4)
    return b.build([h])


@pytest.fixture
def conv_chain():
    return make_conv_chain()


@pytest.fixture
def mlp():
    return make_mlp()


@pytest.fixture(scope="session")
def resnet_model():
    return build_model("resnet")


@pytest.fixture(scope="session")
def bert_model():
    return build_model("bert")


@pytest.fixture(scope="session")
def small_corpus():
    """Three small models used as a sentinel-training corpus."""
    return [build_model(m) for m in ["resnet", "mobilenet", "googlenet"]]


@pytest.fixture(scope="session")
def subgraph_database(small_corpus):
    return build_subgraph_database(small_corpus, target_subgraph_size=8, seed=0)


@pytest.fixture(scope="session")
def sentinel_generator(subgraph_database):
    return SentinelGenerator(subgraph_database, strategy="mixed", pool_size=96, seed=0)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
