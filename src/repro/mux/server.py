"""Multiplexed frame-protocol server: ``repro serve --mux PORT``.

One long-lived TCP connection per client, many interleaved in-flight
jobs: submits, status polls and receipt streams travel as
length-prefixed JSON frames (:mod:`repro.mux.frames`) tagged with a
client-chosen ``channel`` id, so a slow job never head-of-line-blocks
the connection.  The server is a thin front-end over the same
:class:`~repro.serving.http.OptimizationHTTPServer` application object
the HTTP transport uses — same backends, same cache, same verification
memo, same claimed-once job table — which is what makes
``repro serve --http P --mux P2`` one service behind two sockets and
keeps receipts byte-identical across transports.

Frame vocabulary (client → server, then server → client):

========== ===================================== ==========================
type       fields                                response
========== ===================================== ==========================
hello      channel, protocol_version             welcome (protocol banner
                                                 + batching config)
submit     channel, protocol_version, manifest,  submitted (job_id, ...);
           [optimizer], [want_receipt]           then a receipt stream
status     channel, job_id                       status
await      channel, job_id                       receipt stream (re-attach
                                                 after a reconnect)
metrics    channel                               metrics
ack        job_id                                — (commits the receipt)
========== ===================================== ==========================

Receipt streams deliver ``{"type": "receipt", job_id, receipt}`` when
the job finishes; failures arrive as ``{"type": "error", job_id,
error}``.  Any failure tied to a request arrives as an ``error`` frame
echoing its channel.  Receipts stay **claimed-once**: the server
forgets a job only on the client's explicit ``ack`` (the mux analogue
of "response bytes reached the client"), so a connection lost between
receipt and ack leaves the receipt claimable after reconnecting.

Submits are not dispatched one by one: they pass through a
:class:`~repro.mux.batch.Coalescer`, which flushes compatible queued
submits (window/size from the committed operating-point table, or the
``--batch-max`` / ``--batch-window-ms`` overrides) into one
``handle_submit_batch`` call — the transport-level half of server-side
batching.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import queue
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple, Union

from ..api.wire import (
    ERR_INTERNAL,
    ERR_MALFORMED,
    ERR_VERSION_MISMATCH,
    MUX_FRAME_EVENT,
    PROTOCOL_VERSION,
    EndpointError,
    receipt_to_wire,
)
from ..obs.metrics import MetricsRegistry
from .batch import Coalescer, choose_operating_point
from .frames import FrameDecoder, FrameError, encode_frame, encode_frame_with_raw

__all__ = ["MuxServer"]

#: one blocking receipt wait inside a watcher thread; short enough that
#: a watcher notices its connection died promptly.
_WATCH_CHUNK_S = 1.0


class _MuxConnection:
    """One client connection: decoder state plus an ordered writer.

    All outbound frames go through a queue drained by a dedicated
    writer thread, so responses computed on any thread (selector loop,
    dispatch pool, receipt watchers) serialize onto the socket in
    enqueue order — which is what guarantees a job's ``submitted``
    frame precedes its ``receipt`` frame.
    """

    def __init__(self, sock: socket.socket, addr, name: str) -> None:
        self.sock = sock
        self.addr = addr
        self.decoder = FrameDecoder()
        self.alive = True
        self._outbox: "queue.Queue[Union[Dict[str, Any], bytes, None]]" = queue.Queue()
        self._writer = threading.Thread(
            target=self._writer_loop, name=f"{name}-writer", daemon=True
        )
        self._writer.start()

    def send(self, frame: Dict[str, Any]) -> None:
        if self.alive:
            self._outbox.put(frame)

    def send_encoded(self, blob: bytes) -> None:
        """Enqueue an already-encoded frame (the memoized-receipt path)."""
        if self.alive:
            self._outbox.put(blob)

    def _writer_loop(self) -> None:
        while True:
            frame = self._outbox.get()
            if frame is None:
                return
            try:
                blob = frame if isinstance(frame, bytes) else encode_frame(frame)
                self.sock.sendall(blob)
            except (OSError, ValueError):
                self.alive = False
                return

    def close(self) -> None:
        self.alive = False
        self._outbox.put(None)
        try:
            self.sock.close()
        except OSError:
            pass


class MuxServer:
    """The optimizer party behind a multiplexed socket.

    Wraps an existing :class:`OptimizationHTTPServer` *application*
    (which need not have its own HTTP socket bound), adding the frame
    protocol and submit coalescing.  ``bind()`` reserves the port
    (``port=0`` picks a free one); ``start()`` serves from a background
    thread; ``serve_forever()`` blocks.

    ``batch_max`` / ``batch_window_ms`` default to the operating point
    for ``expected_clients`` from the committed table
    (:data:`~repro.mux.batch.OPERATING_POINTS`).
    """

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_max: Optional[int] = None,
        batch_window_ms: Optional[float] = None,
        expected_clients: int = 8,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        point = choose_operating_point(expected_clients)
        self.app = app
        self.host = host
        self.port = port
        self.batch_max = int(batch_max) if batch_max is not None else point.batch_max
        self.batch_window_ms = (
            float(batch_window_ms)
            if batch_window_ms is not None
            else point.batch_window_ms
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        # registry counters: updated on the selector thread, read by
        # stats() from any thread — the instrument's own lock makes both
        # sides atomic (these used to be bare ints read racily).
        self._frames_counter = self.registry.counter(
            "mux_frames_total", "frames by decode result"
        )
        self._accepted_counter = self.registry.counter(
            "mux_connections_accepted_total", "connections accepted"
        )
        self._memo_hits_counter = self.registry.counter(
            "mux_receipt_memo_hits_total", "encoded-receipt memo hits"
        )
        self._coalescer = Coalescer(
            self._flush_submits,
            self.batch_max,
            self.batch_window_ms / 1000.0,
            registry=self.registry,
        )
        self._dispatch = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="mux-dispatch"
        )
        self._listener: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._conns: "set[_MuxConnection]" = set()
        self._lock = threading.Lock()
        self._closed = False
        # encoded-receipt memo: N coalesced submits of the same bucket
        # dedup to one optimization but N jobs; serializing the
        # (identical) receipt payload once and splicing it into each
        # job's frame is the response-side half of batch amortization.
        self._receipt_memo: "OrderedDict[Any, bytes]" = OrderedDict()
        self._receipt_memo_max = 32
        self._receipt_memo_lock = threading.Lock()

    @property
    def url(self) -> str:
        return f"mux://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------------
    def bind(self) -> Tuple[str, int]:
        """Bind the listening socket; returns the actual (host, port)."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(128)
            # staticcheck: ignore[lock-discipline] — bind() and close() are
            # operator lifecycle calls, never raced against each other; the
            # accept loop reads the handle once and tolerates a racing
            # close() (the accept call fails and the loop exits).
            self._listener = listener
            self.port = listener.getsockname()[1]
        return (self.host, self.port)

    def serve_forever(self) -> None:
        self.bind()
        self._serve_loop()

    def start(self) -> Tuple[str, int]:
        """Serve from a daemon background thread; returns (host, port)."""
        address = self.bind()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._serve_loop, name="repro-mux-endpoint", daemon=True
            )
            self._thread.start()
        return address

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._coalescer.close()
        self._dispatch.shutdown(wait=False)
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "MuxServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the selector loop ----------------------------------------------------
    def _serve_loop(self) -> None:
        listener = self._listener
        if listener is None:
            return  # close() won the race before this thread started
        sel = selectors.DefaultSelector()
        try:
            sel.register(listener, selectors.EVENT_READ, None)
        except (ValueError, OSError):
            # close() shut the listener between start() and here;
            # registering a closed socket raises instead of selecting.
            sel.close()
            return
        try:
            while not self._closed:
                try:
                    events = sel.select(timeout=0.2)
                except OSError:
                    break  # listener closed under us
                for key, _ in events:
                    if key.data is None:
                        self._accept(sel, listener)
                    else:
                        self._read(sel, key.data)
        finally:
            sel.close()

    def _accept(self, sel: selectors.BaseSelector, listener: socket.socket) -> None:
        try:
            sock, addr = listener.accept()
        except OSError:
            return
        # timeout mode, not non-blocking: the selector gates recv() on
        # readability while the writer thread's sendall() still blocks
        # (bounded) when the peer reads slowly.
        sock.settimeout(30.0)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        # only the selector thread accepts, so inc-then-read is a
        # consistent sequence number for the connection name.
        self._accepted_counter.inc()
        conn = _MuxConnection(
            sock, addr, f"mux-conn-{self._accepted_counter.value()}"
        )
        with self._lock:
            self._conns.add(conn)
        sel.register(sock, selectors.EVENT_READ, conn)

    def _drop(self, sel: selectors.BaseSelector, conn: _MuxConnection) -> None:
        try:
            sel.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        with self._lock:
            self._conns.discard(conn)
        conn.close()

    def _read(self, sel: selectors.BaseSelector, conn: _MuxConnection) -> None:
        try:
            data = conn.sock.recv(65536)
        except socket.timeout:
            return
        except OSError:
            data = b""
        if not data:
            self._drop(sel, conn)
            return
        for event in conn.decoder.feed(data):
            if isinstance(event, FrameError):
                # a bad frame degrades that frame, not the connection:
                # typed error out, stream stays framed.
                self._frames_counter.inc(result="error")
                conn.send(
                    {
                        "type": "error",
                        "channel": None,
                        **EndpointError(ERR_MALFORMED, event.message).to_dict(),
                    }
                )
                continue
            self._frames_counter.inc(result="decoded")
            self._dispatch_frame(conn, event)

    # -- frame dispatch --------------------------------------------------------
    def _dispatch_frame(self, conn: _MuxConnection, frame: Dict[str, Any]) -> None:
        ftype = frame.get("type")
        channel = frame.get("channel")
        try:
            if ftype == "hello":
                version = frame.get("protocol_version")
                if version != PROTOCOL_VERSION:
                    raise EndpointError(
                        ERR_VERSION_MISMATCH,
                        f"this server speaks protocol {PROTOCOL_VERSION}, "
                        f"hello declares {version!r}",
                    )
                conn.send(
                    {
                        "type": "welcome",
                        "channel": channel,
                        **self.app.handle_protocol(),
                        "batching": {
                            "batch_max": self.batch_max,
                            "batch_window_ms": self.batch_window_ms,
                        },
                    }
                )
            elif ftype == "submit":
                if not isinstance(channel, int):
                    raise EndpointError(
                        ERR_MALFORMED, "submit frames need an integer 'channel'"
                    )
                self._coalescer.add((conn, channel, frame))
            elif ftype == "status":
                payload = self.app.handle_status(str(frame.get("job_id")))
                conn.send({"type": "status", "channel": channel, "status": payload})
            elif ftype == "await":
                job_id = str(frame.get("job_id"))
                self._spawn_watcher(conn, channel, job_id)
            elif ftype == "metrics":
                self._dispatch.submit(self._send_metrics, conn, channel)
            elif ftype == "ack":
                self.app.commit_receipt(str(frame.get("job_id")))
            else:
                raise EndpointError(
                    ERR_MALFORMED, f"unknown frame type {ftype!r}"
                )
        except EndpointError as exc:
            conn.send({"type": "error", "channel": channel, **exc.to_dict()})
        except Exception as exc:  # never let one frame kill the loop
            conn.send(
                {
                    "type": "error",
                    "channel": channel,
                    **EndpointError(
                        ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                    ).to_dict(),
                }
            )

    def _send_metrics(self, conn: _MuxConnection, channel) -> None:
        try:
            payload = self.app.handle_metrics()
            payload["transport"] = "mux"
            payload["mux"] = self.stats()
            conn.send({"type": "metrics", "channel": channel, "metrics": payload})
        except Exception as exc:
            conn.send(
                {
                    "type": "error",
                    "channel": channel,
                    **EndpointError(
                        ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                    ).to_dict(),
                }
            )

    # -- batched submit path ---------------------------------------------------
    def _flush_submits(self, items: List[Tuple[_MuxConnection, int, Dict[str, Any]]]) -> None:
        # off the coalescer thread immediately: manifest verification can
        # take real time and must not stall batch collection.
        self._dispatch.submit(self._run_submit_batch, items)

    def _run_submit_batch(
        self, items: List[Tuple[_MuxConnection, int, Dict[str, Any]]]
    ) -> None:
        try:
            results = self.app.handle_submit_batch(
                [frame for _, _, frame in items], batch_max=self.batch_max
            )
        except Exception as exc:
            error = EndpointError(ERR_INTERNAL, f"{type(exc).__name__}: {exc}")
            results = [error] * len(items)
        for (conn, channel, frame), result in zip(items, results):
            if isinstance(result, EndpointError):
                conn.send({"type": "error", "channel": channel, **result.to_dict()})
                continue
            conn.send({"type": "submitted", "channel": channel, **result})
            if frame.get("want_receipt"):
                self._spawn_watcher(conn, channel, str(result["job_id"]))

    # -- receipt streams -------------------------------------------------------
    def _spawn_watcher(self, conn: _MuxConnection, channel, job_id: str) -> None:
        threading.Thread(
            target=self._watch_receipt,
            args=(conn, channel, job_id),
            name=f"mux-watch-{job_id}",
            daemon=True,
        ).start()

    def _encoded_receipt(self, receipt) -> bytes:
        """Compact JSON bytes of ``receipt_to_wire(receipt)``, memoized.

        Keyed by the receipt's canonical cache key plus every other
        wire-visible field, so a memo hit is byte-identical to a fresh
        serialization by construction: within one server process the
        same canonical key and optimizer always resolve to the same
        cached optimization result.
        """
        key = None
        if getattr(receipt, "key", None):
            key = (
                receipt.key,
                receipt.optimizer,
                receipt.workers,
                tuple(
                    sorted(
                        (eid, s.nodes_before, s.nodes_after)
                        for eid, s in receipt.entries.items()
                    )
                ),
            )
            with self._receipt_memo_lock:
                blob = self._receipt_memo.get(key)
                if blob is not None:
                    self._receipt_memo.move_to_end(key)
                    self._memo_hits_counter.inc()
                    return blob
        blob = json.dumps(
            receipt_to_wire(receipt), separators=(",", ":")
        ).encode("utf-8")
        if key is not None:
            with self._receipt_memo_lock:
                self._receipt_memo[key] = blob
                self._receipt_memo.move_to_end(key)
                while len(self._receipt_memo) > self._receipt_memo_max:
                    self._receipt_memo.popitem(last=False)
        return blob

    def _watch_receipt(self, conn: _MuxConnection, channel, job_id: str) -> None:
        while conn.alive and not self._closed:
            try:
                receipt = self.app._claim_receipt(job_id, wait=_WATCH_CHUNK_S)
            except EndpointError as exc:
                # the frame-event mapping decides which codes cross the
                # wire: "retry" codes (job_pending) are absorbed here —
                # on a streaming transport "not ready" is silence.
                if MUX_FRAME_EVENT.get(exc.code) == "retry":
                    continue
                conn.send(
                    {
                        "type": "error",
                        "channel": channel,
                        "job_id": job_id,
                        **exc.to_dict(),
                    }
                )
                return
            except Exception as exc:
                conn.send(
                    {
                        "type": "error",
                        "channel": channel,
                        "job_id": job_id,
                        **EndpointError(
                            ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
                        ).to_dict(),
                    }
                )
                return
            # NOT committed here: the job is forgotten only on the
            # client's ack, so a connection lost between receipt and ack
            # leaves the receipt claimable after reconnecting.
            conn.send_encoded(
                encode_frame_with_raw(
                    {"type": "receipt", "channel": channel, "job_id": job_id},
                    "receipt",
                    self._encoded_receipt(receipt),
                )
            )
            return

    # -- introspection ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            active = len(self._conns)
        with self._receipt_memo_lock:
            memo_entries = len(self._receipt_memo)
        return {
            "connections": {
                "active": active,
                "accepted_total": self._accepted_counter.value(),
            },
            "frames": {
                "decoded_total": self._frames_counter.value(result="decoded"),
                "errors_total": self._frames_counter.value(result="error"),
            },
            "batching": {
                **self._coalescer.stats(),
                "receipt_memo_hits": self._memo_hits_counter.value(),
                "receipt_memo_entries": memo_entries,
            },
        }
