"""Multiplexed frame transport with server-side submit batching.

``repro.mux`` removes the one-outstanding-request-per-socket transport
tax: a single long-lived connection carries many interleaved in-flight
jobs (submits, status polls, streamed receipts) as length-prefixed JSON
frames, and the server coalesces compatible queued submits into batched
backend calls sized by a measured operating-point table.

* :mod:`repro.mux.frames` — the codec: 4-byte length prefix + JSON,
  incremental decoding, typed per-frame errors that never kill the
  connection;
* :mod:`repro.mux.batch` — the committed operating-point table and the
  window/size submit coalescer;
* :mod:`repro.mux.server` — ``repro serve --mux PORT``, a selector-loop
  front-end over the same application object as the HTTP transport;
* :mod:`repro.mux.client` — :class:`MuxEndpoint`, the ``mux://``
  transport behind :func:`repro.api.endpoint.open_endpoint`.
"""

from .batch import OPERATING_POINTS, Coalescer, OperatingPoint, choose_operating_point
from .client import MuxEndpoint
from .frames import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
)
from .server import MuxServer

__all__ = [
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "FrameDecoder",
    "FrameError",
    "encode_frame",
    "OperatingPoint",
    "OPERATING_POINTS",
    "choose_operating_point",
    "Coalescer",
    "MuxServer",
    "MuxEndpoint",
]
