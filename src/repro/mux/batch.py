"""Server-side submit coalescing for the multiplexed transport.

Batching is a latency/throughput trade: holding a submit a few
milliseconds lets the server hand the backend one batched call instead
of N queue round-trips, which is where the multiplexed transport's
throughput headroom under concurrency comes from — but every held
millisecond is added latency for a lone client.  The right
``(batch_max, batch_window_ms)`` therefore depends on offered
concurrency, exactly the kind of operating point Galvatron-style
cost-model search picks from measured data instead of hand-tuning.

:data:`OPERATING_POINTS` is that table, committed from loopback
bench (``remote_mux_roundtrip`` / ``remote_mux_concurrent8``) and
loadgen sweeps: single-digit windows, because entry service time on a
warm cache is sub-millisecond and anything longer shows up directly in
p95.  ``repro serve --batch-max/--batch-window-ms`` override it.

:class:`Coalescer` is the mechanism: submits accumulate under a
condition variable and flush as one list when the batch fills
(``batch_max``) or the oldest entry has waited the window out
(``batch_window_ms``), whichever is first.  A flush hands off to the
server's dispatch pool, so a slow manifest verification never blocks
the collection loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = ["OperatingPoint", "OPERATING_POINTS", "choose_operating_point", "Coalescer"]


@dataclass(frozen=True)
class OperatingPoint:
    """One batching configuration: flush size and collection window."""

    batch_max: int
    batch_window_ms: float

    def to_dict(self) -> dict:
        return {"batch_max": self.batch_max, "batch_window_ms": self.batch_window_ms}


#: (max expected concurrent clients, operating point) — first band whose
#: bound covers the expectation wins; the ``None`` bound is the tail.
#: Measured on loopback (bench `remote_mux_*` + an 8/16-client loadgen
#: sweep): at 1 client batching only adds latency, so the window is 0;
#: from ~4 clients a 2-5 ms window reliably coalesces the closed-loop
#: wave of submits into one backend call without moving p95, and past
#: ~16 clients wider windows stopped paying because batch_max fills
#: first.
OPERATING_POINTS: Tuple[Tuple[Optional[int], OperatingPoint], ...] = (
    (1, OperatingPoint(batch_max=1, batch_window_ms=0.0)),
    (4, OperatingPoint(batch_max=4, batch_window_ms=2.0)),
    (16, OperatingPoint(batch_max=8, batch_window_ms=5.0)),
    (None, OperatingPoint(batch_max=16, batch_window_ms=5.0)),
)


def choose_operating_point(expected_clients: int = 8) -> OperatingPoint:
    """Pick the table row covering ``expected_clients`` concurrent clients."""
    for bound, point in OPERATING_POINTS:
        if bound is None or expected_clients <= bound:
            return point
    return OPERATING_POINTS[-1][1]  # unreachable: the table ends with None


class Coalescer:
    """Accumulate items and flush them in batches by size or age.

    ``flush_fn(batch)`` receives each flushed list on the coalescer's
    own daemon thread; it must not raise (the server wraps dispatch in
    its own error handling).  ``close()`` flushes whatever is pending
    so no accepted submit is ever dropped on shutdown.
    """

    def __init__(
        self,
        flush_fn: Callable[[List[Any]], None],
        batch_max: int,
        batch_window_s: float,
        name: str = "mux-coalescer",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        self.batch_max = batch_max
        self.batch_window_s = batch_window_s
        self._flush_fn = flush_fn
        self._items: List[Any] = []
        self._oldest_at: Optional[float] = None
        self._cond = threading.Condition()
        self._closed = False
        self.registry = registry if registry is not None else MetricsRegistry()
        # items=submits accepted, flushes=batches handed off, batched=
        # items that shared their flush with others; the gauge keeps the
        # batch-size high-water mark.
        self._events = self.registry.counter(
            "coalescer_events_total", "coalescer accounting by event"
        )
        self._batch_size_hwm = self.registry.gauge(
            "coalescer_batch_size_max", "largest batch flushed so far"
        )
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    def add(self, item: Any) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            self._items.append(item)
            self._events.inc(event="submitted")
            if self._oldest_at is None:
                self._oldest_at = time.monotonic()
            self._cond.notify()

    def _take_batch_locked(self) -> List[Any]:
        batch = self._items[: self.batch_max]
        del self._items[: self.batch_max]
        self._oldest_at = time.monotonic() if self._items else None
        self._events.inc(event="flushed")
        if len(batch) > 1:
            self._events.inc(len(batch), event="batched")
        self._batch_size_hwm.set_max(len(batch))
        return batch

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._items and not self._closed:
                    self._cond.wait()
                if not self._items:
                    return  # closed and drained
                age = time.monotonic() - (self._oldest_at or 0.0)
                if (
                    not self._closed
                    and len(self._items) < self.batch_max
                    and age < self.batch_window_s
                ):
                    # closed skips the window wait: close() may have
                    # signalled before this thread reached it, and its
                    # notify_all would then be spent — pending items
                    # must flush now, not when the window expires.
                    self._cond.wait(self.batch_window_s - age)
                    if len(self._items) < self.batch_max and not self._closed:
                        age = time.monotonic() - (self._oldest_at or 0.0)
                        if age < self.batch_window_s:
                            continue  # woken early by an add; keep collecting
                if not self._items:
                    continue
                batch = self._take_batch_locked()
            self._flush_fn(batch)  # outside the lock: adds keep flowing

    def stats(self) -> dict:
        with self._cond:
            pending = len(self._items)
        return {
            "batch_max": self.batch_max,
            "batch_window_ms": self.batch_window_s * 1000.0,
            "submits_total": self._events.value(event="submitted"),
            "flushes_total": self._events.value(event="flushed"),
            "batched_total": self._events.value(event="batched"),
            "batch_size_max": int(self._batch_size_hwm.value()),
            "pending": pending,
        }

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=5.0)
