"""Client side of the multiplexed transport: ``mux://HOST:PORT``.

:class:`MuxEndpoint` speaks the frame vocabulary of
:mod:`repro.mux.server` over one long-lived connection shared by every
calling thread.  Request/response pairs (hello, submit, status,
metrics) are matched by a client-chosen ``channel`` id; receipts are
*streamed* — ``submit`` asks the server to push the receipt when the
job finishes, so ``await_receipt`` is a local wait on an event, not a
poll loop over the network.  That single-socket pipelining is the
transport tax the HTTP/1 endpoint pays per in-flight request.

Disconnects are survivable mid-job: job state lives server-side until
the receipt is **acked**, so after a reconnect the client re-sends an
``await`` for every unfinished job and the server re-streams the
receipt — byte-identical, because it is rebuilt from the same cached
canonical payloads.  In-flight request/response calls on the dead
socket surface :class:`ConnectionError` (the request may or may not
have been processed; only a send that never left this process is
retried, mirroring :class:`~repro.api.endpoint.HttpEndpoint`'s
stale-socket rule).

``overloaded`` sheds back off exactly like the HTTP client: capped
exponential backoff + jitter, never sooner than the server's
``retry_after_s`` hint, with the same :meth:`client_stats` accounting.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import threading
import time
import urllib.parse
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple, Union

from ..api.endpoint import OptimizerEndpoint, _seal
from ..api.manifest import BucketManifest, ManifestIntegrityError
from ..api.wire import (
    ERR_BAD_DIGEST,
    ERR_MALFORMED,
    ERR_OVERLOADED,
    ERR_TRANSPORT,
    ERR_VERSION_MISMATCH,
    PROTOCOL_VERSION,
    TRACE_FIELD,
    EndpointError,
    receipt_from_wire,
    status_from_wire,
)
from ..core.proteus import ObfuscatedBucket
from ..obs.trace import get_tracer
from .frames import FrameDecoder, FrameError, encode_frame, encode_frame_with_raw

__all__ = ["MuxEndpoint"]


class _Waiter:
    """One in-flight request/response channel."""

    __slots__ = ("event", "payload", "error", "gen")

    def __init__(self, gen: int) -> None:
        self.event = threading.Event()
        self.payload: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None
        self.gen = gen


class _JobState:
    """One job with a server-side receipt stream attached."""

    __slots__ = ("event", "payload", "error", "gen")

    def __init__(self, gen: int) -> None:
        self.event = threading.Event()
        self.payload: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None
        #: connection generation whose server-side watcher covers this
        #: job; a mismatch after reconnect triggers a re-``await``.
        self.gen = gen


class MuxEndpoint(OptimizerEndpoint):
    """Multiplexed frame-protocol client (``repro serve --mux PORT``)."""

    transport = "mux"

    #: TCP connect budget, separate from the per-request timeout.
    _CONNECT_TIMEOUT = 5.0
    #: await_receipt wakes at this cadence to notice dead connections
    #: and re-attach; receipt arrival itself is event-driven (no added
    #: latency).
    _POLL_S = 0.25

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        optimizer: Optional[str] = None,
        retry: Optional[Any] = "default",
        rng: Optional[random.Random] = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "mux" or not parsed.hostname or not parsed.port:
            raise ValueError(
                f"MuxEndpoint needs a mux://HOST:PORT URL, got {url!r}"
            )
        self.url = f"mux://{parsed.hostname}:{parsed.port}"
        self._host = parsed.hostname
        self._port = parsed.port
        self.timeout = timeout
        self.optimizer = optimizer
        if retry == "default":
            from ..serving.spool import RetryPolicy

            retry = RetryPolicy(
                base_delay=0.1, max_delay=5.0, max_attempts=4, jitter=0.25
            )
        self.retry = retry
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()  # connection state (sock/gen/welcome)
        self._send_lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._gen = 0
        self._welcome: Optional[Dict[str, Any]] = None
        self._next_channel = itertools.count(1)
        self._channels: Dict[int, _Waiter] = {}
        self._chan_lock = threading.Lock()
        self._jobs: Dict[str, _JobState] = {}
        self._jobs_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._shed_total = 0
        self._retried_total = 0
        self._gave_up_total = 0
        self._reconnects_total = 0
        # submit-side amortization: serializing a sealed manifest is the
        # dominant client cost, and concurrent callers routinely submit
        # the *same* manifest object (a closed-loop wave).  Keyed by
        # object identity — manifests are sealed before the first encode
        # and must not be mutated afterwards (already the submit
        # contract); the memo holds a reference so ids stay valid.
        self._submit_memo: "OrderedDict[int, Tuple[Any, bytes]]" = OrderedDict()
        self._submit_memo_max = 8
        self._submit_memo_lock = threading.Lock()
        # receipt-side amortization: a payload deep-equal to one this
        # endpoint already digest-verified needs no re-verification
        # (equality of the full payload, not the declared digest, is the
        # memo key, so a tampered payload never rides a sibling's pass).
        self._verified_memo: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._verified_memo_max = 8
        self._verified_memo_lock = threading.Lock()

    # -- connection management -------------------------------------------------
    def _connect_locked(self) -> None:
        """Establish + handshake a connection; caller holds ``_lock``.

        The hello/welcome exchange runs synchronously *before* the
        reader thread starts, so connection setup needs no cross-thread
        coordination; the decoder (with any bytes read past the
        welcome) is handed to the reader afterwards.
        """
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._CONNECT_TIMEOUT
            )
        except OSError as exc:
            raise ConnectionError(
                f"cannot reach {self.url}: {exc.strerror or exc}"
            ) from None
        sock.settimeout(self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        decoder = FrameDecoder()
        channel = next(self._next_channel)
        welcome: Optional[Dict[str, Any]] = None
        try:
            sock.sendall(
                encode_frame(
                    {
                        "type": "hello",
                        "channel": channel,
                        "protocol_version": PROTOCOL_VERSION,
                    }
                )
            )
            while welcome is None:
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    raise ConnectionError(
                        f"no welcome from {self.url} within {self.timeout:g}s"
                    ) from None
                if not data:
                    raise ConnectionError(
                        f"{self.url} closed the connection during the handshake"
                    )
                for event in decoder.feed(data):
                    if isinstance(event, FrameError):
                        continue
                    if event.get("channel") != channel:
                        continue
                    if event.get("type") == "welcome":
                        welcome = event
                        break
                    if event.get("type") == "error":
                        raise EndpointError.from_dict(event)
            version = welcome.get("protocol_version")
            if version != PROTOCOL_VERSION:
                raise EndpointError(
                    ERR_VERSION_MISMATCH,
                    f"server at {self.url} speaks protocol {version!r}, "
                    f"this client speaks {PROTOCOL_VERSION}",
                )
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        self._gen += 1
        gen = self._gen
        if gen > 1:
            with self._stats_lock:
                self._reconnects_total += 1
        self._sock = sock
        self._welcome = {
            k: v for k, v in welcome.items() if k not in ("type", "channel")
        }
        threading.Thread(
            target=self._reader_loop,
            args=(sock, decoder, gen),
            name=f"mux-reader-{gen}",
            daemon=True,
        ).start()
        # re-attach every unfinished job: the server's previous watcher
        # died with the old socket, but the job (and its receipt, once
        # ready) is still there until acked.
        with self._jobs_lock:
            pending = [
                (job_id, state)
                for job_id, state in self._jobs.items()
                if not state.event.is_set()
            ]
        for job_id, state in pending:
            try:
                self._send(sock, {
                    "type": "await",
                    "channel": next(self._next_channel),
                    "job_id": job_id,
                })
            except OSError:
                break  # socket died already; the reader will drop it
            state.gen = gen

    def _connected(self) -> "tuple[int, socket.socket]":
        with self._lock:
            if self._sock is None:
                self._connect_locked()
            assert self._sock is not None
            return self._gen, self._sock

    def _send(self, sock: socket.socket, frame: Dict[str, Any]) -> None:
        self._send_blob(sock, encode_frame(frame))

    def _send_blob(self, sock: socket.socket, blob: bytes) -> None:
        with self._send_lock:
            sock.sendall(blob)

    def _drop_socket(self, sock: socket.socket, gen: int) -> None:
        with self._lock:
            if self._sock is sock:
                self._sock = None
        try:
            sock.close()
        except OSError:
            pass
        # fail the channels whose request rode this connection; job
        # states survive (they re-attach on the next connection).
        with self._chan_lock:
            stale = [
                (ch, w) for ch, w in self._channels.items() if w.gen == gen
            ]
            for ch, _ in stale:
                self._channels.pop(ch, None)
        for _, waiter in stale:
            waiter.error = ConnectionError(f"connection to {self.url} lost")
            waiter.event.set()

    # -- the reader thread -----------------------------------------------------
    def _reader_loop(
        self, sock: socket.socket, decoder: FrameDecoder, gen: int
    ) -> None:
        try:
            while True:
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    continue  # idle connection; keep listening
                except OSError:
                    break
                if not data:
                    break
                for event in decoder.feed(data):
                    if isinstance(event, FrameError):
                        continue  # a broken server frame; drop it
                    self._route(sock, gen, event)
        finally:
            self._drop_socket(sock, gen)

    def _route(self, sock: socket.socket, gen: int, frame: Dict[str, Any]) -> None:
        ftype = frame.get("type")
        job_id = frame.get("job_id")
        if ftype == "receipt" and job_id is not None:
            with self._jobs_lock:
                state = self._jobs.get(str(job_id))
            if state is not None and not state.event.is_set():
                state.payload = frame.get("receipt")
                state.event.set()
            # ack after the receipt is safely delivered locally — the
            # mux analogue of "response bytes reached the client"; the
            # server forgets the job on this ack (claimed-once).
            try:
                self._send(sock, {"type": "ack", "job_id": str(job_id)})
            except OSError:
                pass  # receipt stays claimable; re-awaited on reconnect
            return
        if ftype == "error" and job_id is not None:
            with self._jobs_lock:
                state = self._jobs.get(str(job_id))
            if state is not None and not state.event.is_set():
                state.error = EndpointError.from_dict(frame)
                state.event.set()
            return
        if ftype == "submitted" and job_id is not None:
            # register the stream *before* the submitter thread resumes:
            # a cached job's receipt frame can arrive microseconds after
            # this one, and must find its state.
            with self._jobs_lock:
                self._jobs.setdefault(str(job_id), _JobState(gen))
        channel = frame.get("channel")
        if channel is None:
            return  # unsolicited (e.g. decoder error echo); nothing waits
        with self._chan_lock:
            waiter = self._channels.pop(channel, None)
        if waiter is None:
            return  # late response to a timed-out request
        if ftype == "error":
            waiter.error = EndpointError.from_dict(frame)
        else:
            waiter.payload = frame
        waiter.event.set()

    # -- request/response plumbing ---------------------------------------------
    def _request(
        self,
        ftype: str,
        expect: str,
        timeout: Optional[float] = None,
        raw_field: Optional[Tuple[str, bytes]] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        request_timeout = self.timeout if timeout is None else timeout
        for attempt in (0, 1):
            gen, sock = self._connected()
            channel = next(self._next_channel)
            waiter = _Waiter(gen)
            with self._chan_lock:
                self._channels[channel] = waiter
            frame = {"type": ftype, "channel": channel, **fields}
            try:
                if raw_field is not None:
                    blob = encode_frame_with_raw(frame, *raw_field)
                else:
                    blob = encode_frame(frame)
            except ValueError as exc:
                # e.g. a manifest bigger than MAX_FRAME_BYTES: a typed,
                # deterministic refusal (the frame cannot exist on this
                # wire), not a transport crash.
                with self._chan_lock:
                    self._channels.pop(channel, None)
                raise EndpointError(
                    ERR_MALFORMED, f"cannot send {ftype} to {self.url}: {exc}"
                ) from None
            try:
                self._send_blob(sock, blob)
            except OSError as exc:
                with self._chan_lock:
                    self._channels.pop(channel, None)
                self._drop_socket(sock, gen)
                if attempt == 0:
                    continue  # the frame never left: one clean retry
                raise ConnectionError(f"cannot reach {self.url}: {exc}") from None
            if not waiter.event.wait(request_timeout):
                with self._chan_lock:
                    self._channels.pop(channel, None)
                raise TimeoutError(
                    f"no {expect} from {self.url} within {request_timeout:g}s"
                )
            if waiter.error is not None:
                # sent but unanswered (or refused): the server may have
                # processed it, so surface instead of replaying.
                raise waiter.error
            payload = waiter.payload or {}
            if payload.get("type") != expect:
                raise EndpointError(
                    ERR_TRANSPORT,
                    f"expected a {expect} frame from {self.url}, "
                    f"got {payload.get('type')!r}",
                )
            return payload
        raise ConnectionError(f"cannot reach {self.url}")  # pragma: no cover

    def negotiate(self) -> Dict[str, Any]:
        """Connect (once) and return the server's welcome banner.

        The hello/welcome version check happens inside connection
        setup, so calling this is how a version mismatch surfaces
        before the first submit — same contract as
        :meth:`HttpEndpoint.negotiate`.
        """
        self._connected()
        with self._lock:
            return dict(self._welcome or {})

    def _manifest_blob(self, sealed: BucketManifest) -> bytes:
        """Compact JSON bytes of ``sealed.to_dict()``, memoized by identity."""
        key = id(sealed)
        with self._submit_memo_lock:
            hit = self._submit_memo.get(key)
            if hit is not None and hit[0] is sealed:
                self._submit_memo.move_to_end(key)
                return hit[1]
        blob = json.dumps(sealed.to_dict(), separators=(",", ":")).encode("utf-8")
        with self._submit_memo_lock:
            self._submit_memo[key] = (sealed, blob)
            self._submit_memo.move_to_end(key)
            while len(self._submit_memo) > self._submit_memo_max:
                self._submit_memo.popitem(last=False)
        return blob

    # -- OptimizerEndpoint -----------------------------------------------------
    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        sealed = _seal(manifest)
        body: Dict[str, Any] = {
            "protocol_version": PROTOCOL_VERSION,
            "want_receipt": True,
        }
        if self.optimizer is not None:
            body["optimizer"] = self.optimizer
        # the optional per-frame trace field: batched frames keep their
        # own request's trace across server-side coalescing.
        ctx = get_tracer().current()
        if ctx is not None and ctx.sampled:
            body[TRACE_FIELD] = ctx.to_wire()
        raw = ("manifest", self._manifest_blob(sealed))
        attempts = 0
        while True:
            try:
                payload = self._request(
                    "submit", "submitted", raw_field=raw, **body
                )
                return str(payload["job_id"])
            except EndpointError as exc:
                if exc.code != ERR_OVERLOADED:
                    raise
                with self._stats_lock:
                    self._shed_total += 1
                attempts += 1
                if self.retry is None or self.retry.exhausted(attempts):
                    with self._stats_lock:
                        self._gave_up_total += 1
                    raise
                delay = self.retry.delay(attempts, self._rng)
                if exc.retry_after_s is not None:
                    delay = max(delay, exc.retry_after_s)
                with self._stats_lock:
                    self._retried_total += 1
                time.sleep(min(delay, self.retry.max_delay))

    def status(self, job_id: str):
        payload = self._request("status", "status", job_id=job_id)
        return status_from_wire(payload["status"])

    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Any:
        with self._jobs_lock:
            state = self._jobs.setdefault(job_id, _JobState(gen=0))
        deadline = None if timeout is None else time.monotonic() + timeout
        while not state.event.wait(self._POLL_S):
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} not finished within {timeout:g}s")
            # the connection carrying this job's receipt stream may have
            # died: reconnect (which re-awaits every pending job) or
            # re-attach this job if only its stream generation is stale.
            try:
                with self._lock:
                    if self._sock is None:
                        self._connect_locked()
                    elif state.gen != self._gen:
                        self._send(self._sock, {
                            "type": "await",
                            "channel": next(self._next_channel),
                            "job_id": job_id,
                        })
                        state.gen = self._gen
            except (ConnectionError, OSError):
                continue  # server briefly unreachable; retry until deadline
        with self._jobs_lock:
            self._jobs.pop(job_id, None)
        if state.error is not None:
            raise state.error
        payload = state.payload
        declared = None
        if isinstance(payload, dict) and isinstance(payload.get("manifest"), dict):
            digest = payload["manifest"].get("bucket_digest")
            if isinstance(digest, str):
                declared = digest
        verify = True
        if declared is not None:
            with self._verified_memo_lock:
                prior = self._verified_memo.get(declared)
            # deep equality against the already-verified payload — the
            # comparison is the proof, so a forged digest buys nothing.
            if prior is not None and prior == payload:
                verify = False
        try:
            receipt = receipt_from_wire(payload, verify=verify)
        except ManifestIntegrityError as exc:
            raise EndpointError(
                ERR_BAD_DIGEST, f"receipt failed verification: {exc}"
            ) from None
        if verify and declared is not None:
            with self._verified_memo_lock:
                self._verified_memo[declared] = payload
                self._verified_memo.move_to_end(declared)
                while len(self._verified_memo) > self._verified_memo_max:
                    self._verified_memo.popitem(last=False)
        return receipt

    def metrics(self) -> Dict[str, Any]:
        payload = self._request("metrics", "metrics")
        return payload["metrics"]

    def client_stats(self) -> Dict[str, int]:
        with self._stats_lock:
            return {
                "shed_total": self._shed_total,
                "retried_total": self._retried_total,
                "gave_up_total": self._gave_up_total,
            }

    def close(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
            self._welcome = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        with self._chan_lock:
            waiters = list(self._channels.values())
            self._channels.clear()
        for waiter in waiters:
            waiter.error = ConnectionError(f"endpoint to {self.url} closed")
            waiter.event.set()
