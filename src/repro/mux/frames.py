"""Length-prefixed JSON frame codec for the multiplexed transport.

A frame on the wire is a 4-byte big-endian unsigned length followed by
that many bytes of UTF-8 JSON encoding one object::

    +----------------+----------------------------+
    | length (>I, 4B)| UTF-8 JSON object (length) |
    +----------------+----------------------------+

The codec is deliberately transport-dumb: it knows nothing about frame
*types* (that vocabulary lives in :mod:`repro.mux.server` /
:mod:`repro.mux.client`), only how to slice a byte stream into JSON
objects.  :class:`FrameDecoder` is incremental — feed it whatever
``recv`` returned, partial frames included, and it yields complete
frames as they materialize.

Bad input degrades a *frame*, never the *connection*: an oversized
declared length or a payload that is not a JSON object comes back as a
:class:`FrameError` event (which the server answers with a typed
``malformed_request`` wire error) while the stream stays framed — the
decoder discards exactly the declared payload bytes and resynchronizes
on the next header.  Only a lying length prefix (garbage *headers*, as
opposed to garbage payloads) can desynchronize a stream; that is
inherent to length-prefixed framing and ends the connection at a
higher layer via timeout, not here.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Union

__all__ = [
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "encode_frame_with_raw",
    "FrameDecoder",
]

_HEADER = struct.Struct(">I")

#: bytes of length prefix before every frame payload.
HEADER_BYTES = _HEADER.size

#: ceiling on a single frame's payload.  Generous — a sealed manifest
#: for a heavily obfuscated model is ~100 MB of compact JSON (mobilenet
#: at k=2), and the mux transport must carry anything http:// carries —
#: but finite, so one bad length prefix cannot make the decoder buffer
#: arbitrary gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameError(Exception):
    """One undecodable frame; the surrounding stream is still usable.

    Yielded *as an event* by :meth:`FrameDecoder.feed` (not raised) so a
    server can answer it with a structured ``malformed_request`` error
    and keep serving the connection's other channels.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one frame: length prefix + compact JSON payload."""
    blob = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(blob)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(blob)) + blob


def encode_frame_with_raw(obj: Dict[str, Any], key: str, raw: bytes) -> bytes:
    """Serialize a frame whose ``key`` field's JSON bytes are precomputed.

    Splices ``raw`` — compact JSON as produced by
    ``json.dumps(value, separators=(",", ":")).encode()`` — into the
    encoded frame without re-serializing it.  This is the codec half of
    batch amortization: a receipt shared by N coalesced jobs (or a
    manifest submitted N times) is serialized once and spliced into each
    frame.  The result is byte-for-byte what
    ``encode_frame({**obj, key: json.loads(raw)})`` would produce.
    """
    if key in obj:
        raise ValueError(f"field {key!r} must not also be present in the frame")
    head = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    joiner = b"," if head != b"{}" else b""
    blob = (
        head[:-1] + joiner + json.dumps(key).encode("utf-8") + b":" + raw + b"}"
    )
    if len(blob) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(blob)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(blob)) + blob


class FrameDecoder:
    """Incremental frame decoder over an arbitrary chunking of the stream.

    ``feed(data)`` consumes whatever arrived and returns the complete
    events it produced, each either a decoded frame (``dict``) or a
    :class:`FrameError`.  State between calls is a byte buffer plus the
    current frame's declared length, so byte-at-a-time feeding decodes
    identically to one big read.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()
        self._need: int = -1  # declared payload length; -1 = expecting header
        self._discard = 0  # oversized-frame payload bytes left to drop
        self.frames_total = 0
        self.errors_total = 0

    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Union[Dict[str, Any], FrameError]]:
        self._buf += data
        out: List[Union[Dict[str, Any], FrameError]] = []
        while True:
            if self._discard:
                drop = min(len(self._buf), self._discard)
                del self._buf[:drop]
                self._discard -= drop
                if self._discard:
                    return out
                continue
            if self._need < 0:
                if len(self._buf) < HEADER_BYTES:
                    return out
                (length,) = _HEADER.unpack(bytes(self._buf[:HEADER_BYTES]))
                del self._buf[:HEADER_BYTES]
                if length > self.max_frame_bytes:
                    # answer promptly, then silently drop the declared
                    # payload so the stream resynchronizes on the next
                    # header instead of dying.
                    self.errors_total += 1
                    out.append(
                        FrameError(
                            f"frame of {length} bytes exceeds the "
                            f"{self.max_frame_bytes}-byte frame limit"
                        )
                    )
                    self._discard = length
                    continue
                self._need = length
            if len(self._buf) < self._need:
                return out
            raw = bytes(self._buf[: self._need])
            del self._buf[: self._need]
            self._need = -1
            try:
                obj = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                self.errors_total += 1
                out.append(FrameError(f"frame payload is not valid JSON: {exc}"))
                continue
            if not isinstance(obj, dict):
                self.errors_total += 1
                out.append(
                    FrameError(
                        f"frame payload must be a JSON object, "
                        f"got {type(obj).__name__}"
                    )
                )
                continue
            self.frames_total += 1
            out.append(obj)
