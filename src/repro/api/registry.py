"""String-addressable component registries for the service API.

Proteus is deliberately agnostic about *which* partitioner splits the
protected graph, *which* generator manufactures sentinels, and *which*
optimizer product the untrusted party runs.  These registries make that
agnosticism a first-class extension point: components register under a
string name and every consumer (CLI flags, :class:`repro.api.ModelOwner`,
:class:`repro.api.OptimizerService`, config validation) resolves through
the same tables, so a third-party backend plugs in without touching core
code::

    from repro.api import register_optimizer

    @register_optimizer("my-tvm")
    class TvmLikeOptimizer:
        def optimize(self, graph):
            ...

    # now `repro optimize bucket.json --optimizer my-tvm` just works.

Contracts
---------
optimizer
    A zero-or-keyword-arg factory (usually the class itself) returning an
    object with ``optimize(graph) -> graph``.
partitioner
    ``fn(graph, n, trials=..., seed=...) -> Partition``.
sentinel strategy
    ``fn(config) -> SentinelSource`` where the source exposes
    ``generate(real, k, seed) -> List[Graph]``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar

__all__ = [
    "Registry",
    "UnknownComponentError",
    "register_optimizer",
    "register_partitioner",
    "register_sentinel_strategy",
    "list_optimizers",
    "list_partitioners",
    "list_sentinel_strategies",
    "resolve_optimizer",
    "resolve_partitioner",
    "resolve_sentinel_strategy",
]

F = TypeVar("F")


class UnknownComponentError(KeyError):
    """Raised when a name is not present in a registry."""

    def __init__(self, kind: str, name: str, available: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = available
        super().__init__(
            f"unknown {kind} {name!r}; registered: {', '.join(available) or '(none)'}"
        )

    def __str__(self) -> str:  # KeyError would quote the whole message
        return self.args[0]


class Registry:
    """A named table of component factories.

    Thread-safe; registration is idempotent only with ``overwrite=True``
    so accidental name collisions between backends fail loudly.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Callable[..., Any]] = {}
        self._lock = threading.Lock()

    def register(
        self, name: Optional[str] = None, *, overwrite: bool = False
    ) -> Callable[[F], F]:
        """Decorator registering ``obj`` under ``name`` (default: its
        ``name`` attribute or lowercased class/function ``__name__``)."""

        def deco(obj: F) -> F:
            key = name or getattr(obj, "name", None) or getattr(obj, "__name__", "").lower()
            if not key:
                raise ValueError(f"cannot derive a registry name for {obj!r}")
            with self._lock:
                if key in self._entries and not overwrite:
                    raise ValueError(
                        f"{self.kind} {key!r} already registered "
                        f"(pass overwrite=True to replace)"
                    )
                self._entries[key] = obj  # type: ignore[assignment]
            return obj

        return deco

    def resolve(self, name: str) -> Callable[..., Any]:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownComponentError(self.kind, name, self.names()) from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Registry {self.kind}: {', '.join(self.names())}>"


OPTIMIZERS = Registry("optimizer")
PARTITIONERS = Registry("partitioner")
SENTINEL_STRATEGIES = Registry("sentinel strategy")

# -- builtin loading ---------------------------------------------------------
#
# Builtins register themselves at their definition sites (the decorator is
# the same one third parties use); resolving/listing first imports those
# home modules so the tables are populated regardless of import order.

_builtins_loaded = False
_builtins_lock = threading.Lock()


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _builtins_lock:
        if _builtins_loaded:
            return
        from .. import optimizer as _optimizer  # noqa: F401
        from ..core import partition as _partition  # noqa: F401
        from ..sentinel import generator as _generator  # noqa: F401

        _builtins_loaded = True


# -- public helpers ----------------------------------------------------------

register_optimizer = OPTIMIZERS.register
register_partitioner = PARTITIONERS.register
register_sentinel_strategy = SENTINEL_STRATEGIES.register


def list_optimizers() -> List[str]:
    """Names of every registered optimizer backend."""
    _ensure_builtins()
    return OPTIMIZERS.names()


def list_partitioners() -> List[str]:
    """Names of every registered graph partitioner."""
    _ensure_builtins()
    return PARTITIONERS.names()


def list_sentinel_strategies() -> List[str]:
    """Names of every registered sentinel-generation strategy."""
    _ensure_builtins()
    return SENTINEL_STRATEGIES.names()


def resolve_optimizer(name: str) -> Callable[..., Any]:
    """The optimizer factory registered under ``name``."""
    _ensure_builtins()
    return OPTIMIZERS.resolve(name)


def resolve_partitioner(name: str) -> Callable[..., Any]:
    """The partition function registered under ``name``."""
    _ensure_builtins()
    return PARTITIONERS.resolve(name)


def resolve_sentinel_strategy(name: str) -> Callable[..., Any]:
    """The sentinel-source factory registered under ``name``."""
    _ensure_builtins()
    return SENTINEL_STRATEGIES.resolve(name)
