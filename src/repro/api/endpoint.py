"""Transport-agnostic optimizer endpoints.

The paper's protocol is two-party by construction — the model owner and
the untrusted optimizer are different machines — so the service
boundary deserves a first-class client interface.  An
:class:`OptimizerEndpoint` is *where buckets go to get optimized*,
regardless of what carries them:

* :class:`LocalEndpoint` — in-process, wrapping the job-queue
  :class:`~repro.serving.server.OptimizationServer`;
* :class:`SpoolEndpoint` — a shared directory watched by
  ``repro serve SPOOL_DIR`` (batch pipelines, air-gapped exchanges);
* :class:`HttpEndpoint` — the versioned JSON wire protocol of
  ``repro serve --http PORT`` over the network.

All three expose the same five calls — ``submit(manifest) -> job_id``,
``status(job_id)``, ``await_receipt(job_id)``, ``metrics()``,
``close()`` — so the obfuscate→optimize→reassemble script is transport
agnostic::

    from repro.api.endpoint import open_endpoint

    with open_endpoint("http://optimizer.example:8080") as endpoint:
        job_id = endpoint.submit(BucketManifest.from_bucket(result.bucket))
        receipt = endpoint.await_receipt(job_id, timeout=300)
    model = owner.reassemble(receipt)

Endpoint URIs follow a small grammar (also accepted by
``repro optimize --endpoint``)::

    local:[BACKEND]        in-process (default backend: ortlike)
    spool:DIRECTORY        spool directory served by `repro serve DIR`
    http://HOST:PORT       `repro serve --http PORT` on another machine
    https://HOST:PORT      same, behind TLS termination
    mux://HOST:PORT        multiplexed frame protocol with server-side
                           batching (`repro serve --mux PORT`); many
                           in-flight jobs per connection
    http://H:P1,http://H:P2  fleet of workers, ring-routed by manifest
                           digest with fleet-wide in-flight dedup
                           (`repro serve --http 0 --workers N`); mux://
                           worker URLs mix in freely
    fleet:STATE_FILE       autoscaling fleet via its membership state
                           file (`repro serve ... --fleet-state PATH`);
                           follows workers the autoscaler adds/removes,
                           re-sharding the routing ring live

Failures are structured everywhere: transports raise
:class:`~repro.api.wire.EndpointError` with the same closed set of
codes the HTTP server puts on the wire (``bad_digest``,
``unknown_job``, ``version_mismatch``, ...), so callers branch on
``exc.code`` identically for all transports.
"""

from __future__ import annotations

import abc
import http.client
import json
import os
import random
import socket
import threading
import time
import urllib.parse
import uuid
import weakref
from typing import Any, Dict, Optional, Union

from ..core.proteus import ObfuscatedBucket
from ..obs.trace import get_tracer
from .manifest import BucketManifest, ManifestIntegrityError, load_manifest
from .types import OptimizationReceipt, receipt_from_buckets
from .wire import (
    ERR_BAD_DIGEST,
    ERR_JOB_PENDING,
    ERR_OVERLOADED,
    ERR_TRANSPORT,
    ERR_UNKNOWN_JOB,
    ERR_VERSION_MISMATCH,
    PROTOCOL_VERSION,
    TRACE_FIELD,
    TRACE_HEADER,
    EndpointError,
    receipt_from_wire,
    status_from_wire,
)

__all__ = [
    "OptimizerEndpoint",
    "LocalEndpoint",
    "SpoolEndpoint",
    "HttpEndpoint",
    "RemoteOptimizerService",
    "open_endpoint",
]


def _seal(manifest: Union[BucketManifest, ObfuscatedBucket]) -> BucketManifest:
    """Normalize submit() input to a digest-verified manifest.

    A raw bucket is sealed fresh; a caller-provided manifest is
    re-verified so every transport rejects tampering identically
    (``bad_digest``), not just the remote ones.
    """
    if isinstance(manifest, ObfuscatedBucket):
        return BucketManifest.from_bucket(manifest)
    try:
        if getattr(manifest, "_verified", False):
            # hashed in this process (from_bucket/load_manifest): don't
            # re-hash every graph's weights on each submit — a loadtest
            # re-submitting one sealed manifest would pay that N times.
            # The O(entries) table check still catches post-seal digest
            # tampering on every transport.  Post-seal *payload* edits
            # in the submitting process are out of scope by design:
            # digests protect the trust boundary, and wherever the
            # payload actually crosses one (HTTP, spool) the serving
            # side re-verifies it in full.
            manifest.check_consistency()
        else:
            manifest.verify()
    except ManifestIntegrityError as exc:
        raise EndpointError(ERR_BAD_DIGEST, str(exc)) from None
    return manifest


class OptimizerEndpoint(abc.ABC):
    """Where buckets go to get optimized, whatever the transport.

    Implementations are context managers; ``close()`` is idempotent.
    """

    #: short transport tag ("local", "spool", "http") for diagnostics.
    transport: str = "abstract"

    @abc.abstractmethod
    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        """Queue a sealed bucket for optimization; returns a job id."""

    @abc.abstractmethod
    def status(self, job_id: str):
        """Point-in-time :class:`~repro.serving.server.JobStatus`."""

    @abc.abstractmethod
    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> OptimizationReceipt:
        """Block until the job finishes; returns its receipt.

        Raises :class:`TimeoutError` after ``timeout`` seconds and
        :class:`~repro.api.wire.EndpointError` on structured failures.
        """

    @abc.abstractmethod
    def metrics(self) -> Dict[str, Any]:
        """Operational snapshot; always carries a ``transport`` tag."""

    def client_stats(self) -> Dict[str, int]:
        """Client-side backpressure accounting for this endpoint.

        ``shed_total`` counts ``overloaded`` responses received,
        ``retried_total`` submits re-attempted after honoring the
        server's ``retry_after_s`` hint, ``gave_up_total`` submits that
        exhausted their backoff budget.  Transports without client-side
        retry report zeros (their sheds surface directly as structured
        errors instead).
        """
        return {"shed_total": 0, "retried_total": 0, "gave_up_total": 0}

    @abc.abstractmethod
    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "OptimizerEndpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalEndpoint(OptimizerEndpoint):
    """In-process endpoint over an :class:`OptimizationServer`.

    Builds (and owns) a server from a backend name/instance, or wraps a
    caller-provided ``server=`` without taking ownership of its
    lifecycle.
    """

    transport = "local"

    def __init__(
        self,
        optimizer: Union[str, Any] = "ortlike",
        *,
        server: Optional[Any] = None,
        cache: Optional[Any] = None,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        **optimizer_options,
    ) -> None:
        from ..serving.server import OptimizationServer

        if server is not None:
            if cache is not None or cache_dir is not None or optimizer_options:
                raise ValueError(
                    "pass either a prebuilt server or construction options, not both"
                )
            self._server = server
            self._owns_server = False
        else:
            self._server = OptimizationServer(
                optimizer,
                cache=cache,
                cache_dir=cache_dir,
                workers=workers,
                **optimizer_options,
            )
            self._owns_server = True

    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        sealed = _seal(manifest)
        return self._server.submit(
            sealed.bucket, entry_digests=sealed.entry_digests
        )

    def status(self, job_id: str):
        try:
            return self._server.status(job_id)
        except KeyError:
            raise EndpointError(ERR_UNKNOWN_JOB, f"unknown job id {job_id!r}") from None

    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> OptimizationReceipt:
        try:
            return self._server.await_receipt(job_id, timeout=timeout)
        except KeyError:
            raise EndpointError(ERR_UNKNOWN_JOB, f"unknown job id {job_id!r}") from None

    def metrics(self) -> Dict[str, Any]:
        return {"transport": self.transport, **self._server.metrics()}

    def close(self) -> None:
        if self._owns_server:
            self._server.close()


class SpoolEndpoint(OptimizerEndpoint):
    """Client side of the spool-directory flow ``repro serve`` drains.

    ``submit`` drops the sealed manifest into the directory (atomically,
    so the server never sees a half-written file); ``await_receipt``
    polls for the server's ``<job>.optimized.json`` output and its
    ``<job>.receipt.json`` metadata sidecar.  A server that exhausted
    its retries leaves ``<job>.error.json``, which surfaces here as a
    structured :class:`EndpointError` instead of a silent timeout.
    """

    transport = "spool"

    def __init__(self, spool_dir: str, poll_interval: float = 0.05) -> None:
        from ..serving import spool as _spool

        self.spool_dir = spool_dir
        self.poll_interval = poll_interval
        self._spool = _spool
        self._buckets: Dict[str, ObfuscatedBucket] = {}
        os.makedirs(spool_dir, exist_ok=True)

    def _path(self, job_id: str, suffix: str) -> str:
        return os.path.join(self.spool_dir, job_id + suffix)

    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        manifest = _seal(manifest)
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        envelope = manifest.to_dict()
        # the optional trace key rides on the spool envelope; manifest
        # parsing ignores unknown top-level keys, so untraced servers
        # (and older readers) are unaffected.
        ctx = get_tracer().current()
        if ctx is not None and ctx.sampled:
            envelope[TRACE_FIELD] = ctx.to_wire()
        self._spool.atomic_write_json(
            self._path(job_id, self._spool.INPUT_SUFFIX), envelope
        )
        self._buckets[job_id] = manifest.bucket
        return job_id

    def _known(self, job_id: str) -> bool:
        return job_id in self._buckets or os.path.exists(
            self._path(job_id, self._spool.INPUT_SUFFIX)
        )

    def status(self, job_id: str):
        from ..serving.server import JobState, JobStatus

        done = os.path.exists(self._path(job_id, self._spool.OPTIMIZED_SUFFIX))
        failed = os.path.exists(self._path(job_id, self._spool.ERROR_SUFFIX))
        if not (done or failed or self._known(job_id)):
            raise EndpointError(ERR_UNKNOWN_JOB, f"unknown job id {job_id!r}")
        bucket = self._buckets.get(job_id)
        total = len(bucket) if bucket is not None else 0
        # the filesystem only distinguishes queued/done/failed; per-entry
        # progress stays with the serving process.
        return JobStatus(
            job_id=job_id,
            state=(
                JobState.FAILED
                if failed and not done
                else JobState.DONE if done else JobState.QUEUED
            ),
            total_entries=total,
            completed_entries=total if done else 0,
            submitted_at=0.0,
        )

    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> OptimizationReceipt:
        if not self._known(job_id) and not os.path.exists(
            self._path(job_id, self._spool.OPTIMIZED_SUFFIX)
        ):
            raise EndpointError(ERR_UNKNOWN_JOB, f"unknown job id {job_id!r}")
        deadline = None if timeout is None else time.monotonic() + timeout
        out_path = self._path(job_id, self._spool.OPTIMIZED_SUFFIX)
        err_path = self._path(job_id, self._spool.ERROR_SUFFIX)
        while not os.path.exists(out_path):
            if os.path.exists(err_path):
                with open(err_path, "r", encoding="utf-8") as fh:
                    raise EndpointError.from_dict(json.load(fh))
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"spool job {job_id} not optimized within {timeout:g}s"
                )
            time.sleep(self.poll_interval)
        manifest = load_manifest(out_path)  # digest-verified
        receipt_path = self._path(job_id, self._spool.RECEIPT_SUFFIX)
        optimizer, workers = "spool", 0
        if os.path.exists(receipt_path):
            with open(receipt_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            optimizer = str(meta.get("optimizer", optimizer))
            workers = int(meta.get("workers", workers))
        before = self._buckets.get(job_id)
        if before is None:  # receipt for a job submitted by someone else
            before = manifest.bucket
        return receipt_from_buckets(
            before, manifest.bucket, optimizer=optimizer, workers=workers
        )

    def metrics(self) -> Dict[str, Any]:
        # snapshot: a loadtest sampler thread reads metrics while client
        # threads are still submitting into _buckets.
        job_ids = list(self._buckets)
        done = sum(
            1
            for job_id in job_ids
            if os.path.exists(self._path(job_id, self._spool.OPTIMIZED_SUFFIX))
        )
        failed = sum(
            1
            for job_id in job_ids
            if os.path.exists(self._path(job_id, self._spool.ERROR_SUFFIX))
        )
        return {
            "transport": self.transport,
            "spool_dir": self.spool_dir,
            "jobs": {"submitted": len(job_ids), "completed": done},
            # the normalized counter block every transport exposes; the
            # spool client only sees the filesystem, so entry-level
            # counters stay with the serving process (zero here).
            "counters": {
                "submitted_total": len(job_ids),
                "completed_total": done,
                "failed_total": failed,
                "entries_optimized": 0,
                "entry_cache_hits": 0,
            },
        }

    def close(self) -> None:
        self._buckets.clear()


def _is_wire_error(payload: Any) -> bool:
    """A structured wire error is ``{"error": {...}}`` with a dict value.

    The sniff must be shape-sensitive: job-status responses legitimately
    carry an ``"error"`` field (None while healthy, a string after an
    optimizer failure) that is *data*, not a protocol error envelope.
    """
    return isinstance(payload, dict) and isinstance(payload.get("error"), dict)


#: connection-level failures that mean "the socket died", not "the
#: request is wrong".  On a *reused* keep-alive socket these are
#: expected (the server idled it out between requests) and the request
#: is safely retried once on a fresh connection.
_STALE_SOCKET_ERRORS = (
    http.client.BadStatusLine,  # includes RemoteDisconnected
    http.client.CannotSendRequest,
    http.client.IncompleteRead,  # peer died mid-response body
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class HttpEndpoint(OptimizerEndpoint):
    """Client of the versioned JSON wire protocol (``repro serve --http``).

    Protocol versions are negotiated once per endpoint (``GET
    /v1/protocol``) before the first submit; a server speaking a
    different version raises ``EndpointError(version_mismatch)`` here
    rather than failing obscurely mid-submit.  Receipts are
    digest-verified client-side, so tampering anywhere in transit is
    caught before reassembly.

    Connections are **kept alive** and reused across requests (one per
    calling thread — load generators share a single endpoint object
    across their client pool), which removes a TCP handshake from every
    request; the ``remote_roundtrip`` vs ``remote_roundtrip_cold_conn``
    bench scenarios measure the delta.  A reused socket the server has
    since closed is detected and the request retried once on a fresh
    connection; ``keep_alive=False`` restores one-connection-per-request
    for servers (or middleboxes) that misbehave under reuse.

    Submits shed by admission control (``overloaded``, HTTP 429) are
    retried with capped exponential backoff + jitter, never sooner than
    the server's ``retry_after_s`` hint; ``retry=None`` disables this
    and surfaces the first shed directly.  :meth:`client_stats` counts
    sheds seen, retries performed and submits given up on.
    """

    transport = "http"

    #: per-request socket timeout headroom on top of server-side waits.
    _REQUEST_SLACK = 15.0
    #: how long one blocking receipt poll asks the server to wait.
    _WAIT_CHUNK = 10.0

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        optimizer: Optional[str] = None,
        keep_alive: bool = True,
        retry: Optional[Any] = "default",
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.optimizer = optimizer
        self.keep_alive = keep_alive
        if retry == "default":
            # client-side pacing, not durability: short base, low cap —
            # the server's retry_after_s hint extends individual waits.
            from ..serving.spool import RetryPolicy

            retry = RetryPolicy(
                base_delay=0.1, max_delay=5.0, max_attempts=4, jitter=0.25
            )
        self.retry = retry
        self._rng = rng if rng is not None else random.Random()
        self._stats_lock = threading.Lock()
        self._shed_total = 0
        self._retried_total = 0
        self._gave_up_total = 0
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise ValueError(
                f"HttpEndpoint needs an http(s)://HOST[:PORT] URL, got {base_url!r}"
            )
        self._scheme = parsed.scheme
        self._netloc = parsed.netloc
        self._path_prefix = parsed.path.rstrip("/")
        self._protocol_info: Optional[Dict[str, Any]] = None
        self._local = threading.local()
        # every live connection, across threads, so close() can drop
        # them.  Held *weakly*: a pooled connection is kept alive by its
        # owning thread's threading.local, so when that thread exits the
        # connection becomes garbage and its socket is closed at
        # finalization instead of leaking here until close().
        self._connections: "weakref.WeakValueDictionary[int, http.client.HTTPConnection]" = (
            weakref.WeakValueDictionary()
        )
        self._connections_lock = threading.Lock()

    # -- connection management ------------------------------------------------
    def _new_connection(self, timeout: float) -> http.client.HTTPConnection:
        cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        conn = cls(self._netloc, timeout=timeout)
        with self._connections_lock:
            self._connections[id(conn)] = conn
        return conn

    def _acquire(self, timeout: float):
        """This thread's idle keep-alive connection, or a fresh one.

        Returns ``(conn, reused)``; the caller releases or discards it.
        """
        conn = getattr(self._local, "idle_conn", None)
        self._local.idle_conn = None
        if conn is None:
            return self._new_connection(timeout), False
        conn.timeout = timeout
        if conn.sock is not None:
            conn.sock.settimeout(timeout)
        return conn, True

    def _release(self, conn: http.client.HTTPConnection) -> None:
        self._local.idle_conn = conn

    def _discard(self, conn: http.client.HTTPConnection) -> None:
        with self._connections_lock:
            self._connections.pop(id(conn), None)
        conn.close()

    # -- plumbing -------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        url = self.base_url + path
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Connection": "keep-alive" if self.keep_alive else "close",
        }
        if extra_headers:
            headers.update(extra_headers)
        request_timeout = self.timeout if timeout is None else timeout
        for attempt in (0, 1):
            conn, reused = self._acquire(request_timeout)
            # a reused socket the server idled out fails on send or with
            # zero response bytes (RemoteDisconnected & friends) — the
            # server never saw the request, so one clean retry is safe.
            # Once a status line has arrived the request *was* processed
            # and must not be replayed: receipts are claimed once, and a
            # re-submitted POST would orphan a job.  Failures after that
            # point surface as ConnectionError instead.
            response_started = False
            try:
                conn.request(method, self._path_prefix + path, body=data, headers=headers)
                resp = conn.getresponse()
                response_started = True
                status = resp.status
                raw = resp.read()
                reusable = self.keep_alive and not resp.will_close
            except _STALE_SOCKET_ERRORS as exc:
                self._discard(conn)
                if reused and attempt == 0 and not response_started:
                    continue  # idled-out keep-alive socket: one clean retry
                raise ConnectionError(f"cannot reach {url}: {exc}") from None
            except socket.timeout:
                self._discard(conn)
                raise ConnectionError(
                    f"timed out after {request_timeout:g}s talking to {url}"
                ) from None
            except OSError as exc:
                self._discard(conn)
                if reused and attempt == 0 and not response_started:
                    continue  # e.g. RST surfaced as ECONNRESET on send
                raise ConnectionError(
                    f"cannot reach {url}: {exc.strerror or exc}"
                ) from None
            if reusable:
                self._release(conn)
            else:
                self._discard(conn)
            break
        try:
            payload: Any = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = None
        if status != 200:
            if _is_wire_error(payload):
                raise EndpointError.from_dict(payload)
            # an intermediary (proxy, load balancer) answered, not our
            # wire protocol: surface it as a structured transport error.
            raise EndpointError(ERR_TRANSPORT, f"HTTP {status} from {url}")
        if _is_wire_error(payload):
            raise EndpointError.from_dict(payload)
        if not isinstance(payload, dict):
            raise EndpointError(
                ERR_TRANSPORT, f"non-JSON 200 response from {url}"
            )
        return payload

    def negotiate(self) -> Dict[str, Any]:
        """Fetch (once) and version-check the server's protocol banner."""
        if self._protocol_info is None:
            info = self._request("GET", "/v1/protocol")
            version = info.get("protocol_version")
            if version != PROTOCOL_VERSION:
                raise EndpointError(
                    ERR_VERSION_MISMATCH,
                    f"server at {self.base_url} speaks protocol {version!r}, "
                    f"this client speaks {PROTOCOL_VERSION}",
                )
            # staticcheck: ignore[lock-discipline] — idempotent one-shot memo:
            # a racy double-negotiate refetches the same banner, and close()
            # only resets it to None; there is no torn state to guard.
            self._protocol_info = info
        return self._protocol_info

    # -- OptimizerEndpoint ----------------------------------------------------
    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        self.negotiate()
        body = {
            "protocol_version": PROTOCOL_VERSION,
            "manifest": _seal(manifest).to_dict(),
        }
        if self.optimizer is not None:
            body["optimizer"] = self.optimizer
        # propagate the caller's active trace span as the optional wire
        # header; the serving side's spans become its children.
        ctx = get_tracer().current()
        trace_headers = (
            {TRACE_HEADER: ctx.to_wire()} if ctx is not None and ctx.sampled else None
        )
        attempts = 0
        while True:
            try:
                return str(
                    self._request(
                        "POST", "/v1/jobs", body, extra_headers=trace_headers
                    )["job_id"]
                )
            except EndpointError as exc:
                if exc.code != ERR_OVERLOADED:
                    raise
                with self._stats_lock:
                    self._shed_total += 1
                attempts += 1
                if self.retry is None or self.retry.exhausted(attempts):
                    with self._stats_lock:
                        self._gave_up_total += 1
                    raise
                # back off at least as long as the server asked, capped
                # by the policy's max_delay so one pathological hint
                # cannot stall a client thread for half a minute.
                delay = self.retry.delay(attempts, self._rng)
                if exc.retry_after_s is not None:
                    delay = max(delay, exc.retry_after_s)
                with self._stats_lock:
                    self._retried_total += 1
                time.sleep(min(delay, self.retry.max_delay))

    def client_stats(self) -> Dict[str, int]:
        with self._stats_lock:
            return {
                "shed_total": self._shed_total,
                "retried_total": self._retried_total,
                "gave_up_total": self._gave_up_total,
            }

    def status(self, job_id: str):
        return status_from_wire(
            self._request("GET", f"/v1/jobs/{urllib.parse.quote(job_id)}")
        )

    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> OptimizationReceipt:
        deadline = None if timeout is None else time.monotonic() + timeout
        quoted = urllib.parse.quote(job_id)
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} not finished within {timeout:g}s"
                )
            wait = self._WAIT_CHUNK if remaining is None else min(remaining, self._WAIT_CHUNK)
            try:
                payload = self._request(
                    "GET",
                    f"/v1/jobs/{quoted}/receipt?wait={wait:g}",
                    timeout=wait + self._REQUEST_SLACK,
                )
            except EndpointError as exc:
                if exc.code == ERR_JOB_PENDING:
                    continue
                raise
            try:
                return receipt_from_wire(payload, verify=True)
            except ManifestIntegrityError as exc:
                raise EndpointError(
                    ERR_BAD_DIGEST, f"receipt failed verification: {exc}"
                ) from None

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def close(self) -> None:
        with self._connections_lock:
            connections = [c for c in self._connections.values() if c is not None]
            self._connections = weakref.WeakValueDictionary()
        for conn in connections:
            conn.close()
        self._local = threading.local()
        self._protocol_info = None


class RemoteOptimizerService:
    """:class:`~repro.api.clients.OptimizerService`-shaped facade.

    Wraps any endpoint so code written against
    ``service.optimize(bucket) -> receipt`` runs unchanged against a
    remote optimizer party.

    ``overloaded`` sheds are retried with the same capped backoff +
    ``retry_after_s`` honoring as :class:`HttpEndpoint` — but only for
    endpoints without their own retry loop (``HttpEndpoint`` already
    backs off inside ``submit``; stacking a second loop on top would
    square the attempt count).  Pass ``retry=None`` to surface sheds
    directly.
    """

    def __init__(
        self,
        endpoint: OptimizerEndpoint,
        timeout: Optional[float] = None,
        retry: Optional[Any] = "default",
        rng: Optional[random.Random] = None,
    ):
        self.endpoint = endpoint
        self.timeout = timeout
        self.name = f"remote:{endpoint.transport}"
        if retry == "default":
            if getattr(endpoint, "retry", None) is not None:
                retry = None  # the endpoint itself already backs off
            else:
                from ..serving.spool import RetryPolicy

                retry = RetryPolicy(
                    base_delay=0.1, max_delay=5.0, max_attempts=4, jitter=0.25
                )
        self.retry = retry
        self._rng = rng if rng is not None else random.Random()

    def optimize(self, bucket: Union[BucketManifest, ObfuscatedBucket]) -> OptimizationReceipt:
        attempts = 0
        while True:
            try:
                job_id = self.endpoint.submit(bucket)
                break
            except EndpointError as exc:
                if exc.code != ERR_OVERLOADED or self.retry is None:
                    raise
                attempts += 1
                if self.retry.exhausted(attempts):
                    raise
                delay = self.retry.delay(attempts, self._rng)
                if exc.retry_after_s is not None:
                    delay = max(delay, exc.retry_after_s)
                time.sleep(min(delay, self.retry.max_delay))
        return self.endpoint.await_receipt(job_id, timeout=self.timeout)


_URI_GRAMMAR = (
    "endpoint URIs: local:[BACKEND] | spool:DIRECTORY | http://HOST:PORT "
    "| https://HOST:PORT | mux://HOST:PORT (multiplexed frame protocol) "
    "| http://H:P1,mux://H:P2,... (ring-routed fleet; schemes mix) "
    "| fleet:STATE_FILE (autoscaling fleet; follows membership changes)"
)


def open_endpoint(
    uri: str,
    *,
    optimizer: Optional[str] = None,
    workers: int = 2,
    cache: Optional[Any] = None,
    cache_dir: Optional[str] = None,
    timeout: float = 30.0,
    **optimizer_options,
) -> OptimizerEndpoint:
    """Open an endpoint from its URI (the ``--endpoint`` flag grammar).

    ``optimizer`` names the backend: constructed in-process for
    ``local:`` endpoints, requested per submit over HTTP (the server
    resolves it from its own registry), and unused for ``spool:``
    (the spool server's configuration decides).  ``None`` means the
    serving side's default.  Worker/cache options only apply to
    ``local:`` — elsewhere they are properties of the serving process.
    """
    if uri.startswith(("http://", "https://", "mux://")):
        parts = [p.strip() for p in uri.split(",")]
        if len(parts) > 1 and all(
            p.startswith(("http://", "https://", "mux://")) for p in parts
        ):
            # several worker URLs = a ring-routed fleet front (what
            # `repro serve --http 0 --workers N` prints as its
            # endpoint).  Only split when every part is itself a URL —
            # a single URL may legally carry commas in its path/query.
            from ..loadgen.fleet import open_fleet_endpoint

            return open_fleet_endpoint(parts, timeout=timeout, optimizer=optimizer)
        if uri.startswith("mux://"):
            from ..mux.client import MuxEndpoint

            return MuxEndpoint(uri, timeout=timeout, optimizer=optimizer)
        return HttpEndpoint(uri, timeout=timeout, optimizer=optimizer)
    scheme, sep, rest = uri.partition(":")
    if not sep:
        raise ValueError(f"invalid endpoint URI {uri!r}; {_URI_GRAMMAR}")
    if scheme == "local":
        return LocalEndpoint(
            rest or optimizer or "ortlike",
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **optimizer_options,
        )
    if scheme == "spool":
        if not rest:
            raise ValueError(
                f"spool endpoint needs a directory (spool:DIR), got {uri!r}"
            )
        return SpoolEndpoint(rest)
    if scheme == "fleet":
        if not rest:
            raise ValueError(
                f"fleet endpoint needs a state file (fleet:PATH), got {uri!r}"
            )
        from ..loadgen.fleet import open_fleet_state_endpoint

        return open_fleet_state_endpoint(rest, timeout=timeout, optimizer=optimizer)
    raise ValueError(f"unknown endpoint scheme {scheme!r}; {_URI_GRAMMAR}")
