"""Transport-agnostic optimizer endpoints.

The paper's protocol is two-party by construction — the model owner and
the untrusted optimizer are different machines — so the service
boundary deserves a first-class client interface.  An
:class:`OptimizerEndpoint` is *where buckets go to get optimized*,
regardless of what carries them:

* :class:`LocalEndpoint` — in-process, wrapping the job-queue
  :class:`~repro.serving.server.OptimizationServer`;
* :class:`SpoolEndpoint` — a shared directory watched by
  ``repro serve SPOOL_DIR`` (batch pipelines, air-gapped exchanges);
* :class:`HttpEndpoint` — the versioned JSON wire protocol of
  ``repro serve --http PORT`` over the network.

All three expose the same five calls — ``submit(manifest) -> job_id``,
``status(job_id)``, ``await_receipt(job_id)``, ``metrics()``,
``close()`` — so the obfuscate→optimize→reassemble script is transport
agnostic::

    from repro.api.endpoint import open_endpoint

    with open_endpoint("http://optimizer.example:8080") as endpoint:
        job_id = endpoint.submit(BucketManifest.from_bucket(result.bucket))
        receipt = endpoint.await_receipt(job_id, timeout=300)
    model = owner.reassemble(receipt)

Endpoint URIs follow a small grammar (also accepted by
``repro optimize --endpoint``)::

    local:[BACKEND]        in-process (default backend: ortlike)
    spool:DIRECTORY        spool directory served by `repro serve DIR`
    http://HOST:PORT       `repro serve --http PORT` on another machine
    https://HOST:PORT      same, behind TLS termination

Failures are structured everywhere: transports raise
:class:`~repro.api.wire.EndpointError` with the same closed set of
codes the HTTP server puts on the wire (``bad_digest``,
``unknown_job``, ``version_mismatch``, ...), so callers branch on
``exc.code`` identically for all transports.
"""

from __future__ import annotations

import abc
import json
import os
import time
import urllib.error
import urllib.parse
import urllib.request
import uuid
from typing import Any, Dict, Optional, Union

from ..core.proteus import ObfuscatedBucket
from .manifest import BucketManifest, ManifestIntegrityError, load_manifest
from .types import OptimizationReceipt, receipt_from_buckets
from .wire import (
    ERR_BAD_DIGEST,
    ERR_JOB_PENDING,
    ERR_UNKNOWN_JOB,
    ERR_VERSION_MISMATCH,
    PROTOCOL_VERSION,
    EndpointError,
    receipt_from_wire,
    status_from_wire,
)

__all__ = [
    "OptimizerEndpoint",
    "LocalEndpoint",
    "SpoolEndpoint",
    "HttpEndpoint",
    "RemoteOptimizerService",
    "open_endpoint",
]


def _seal(manifest: Union[BucketManifest, ObfuscatedBucket]) -> BucketManifest:
    """Normalize submit() input to a digest-verified manifest.

    A raw bucket is sealed fresh; a caller-provided manifest is
    re-verified so every transport rejects tampering identically
    (``bad_digest``), not just the remote ones.
    """
    if isinstance(manifest, ObfuscatedBucket):
        return BucketManifest.from_bucket(manifest)
    if getattr(manifest, "_verified", False):
        # verified at load time in this process (load_manifest); don't
        # re-hash every graph's weights a second time per submit.
        return manifest
    try:
        manifest.verify()
    except ManifestIntegrityError as exc:
        raise EndpointError(ERR_BAD_DIGEST, str(exc)) from None
    return manifest


class OptimizerEndpoint(abc.ABC):
    """Where buckets go to get optimized, whatever the transport.

    Implementations are context managers; ``close()`` is idempotent.
    """

    #: short transport tag ("local", "spool", "http") for diagnostics.
    transport: str = "abstract"

    @abc.abstractmethod
    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        """Queue a sealed bucket for optimization; returns a job id."""

    @abc.abstractmethod
    def status(self, job_id: str):
        """Point-in-time :class:`~repro.serving.server.JobStatus`."""

    @abc.abstractmethod
    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> OptimizationReceipt:
        """Block until the job finishes; returns its receipt.

        Raises :class:`TimeoutError` after ``timeout`` seconds and
        :class:`~repro.api.wire.EndpointError` on structured failures.
        """

    @abc.abstractmethod
    def metrics(self) -> Dict[str, Any]:
        """Operational snapshot; always carries a ``transport`` tag."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "OptimizerEndpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalEndpoint(OptimizerEndpoint):
    """In-process endpoint over an :class:`OptimizationServer`.

    Builds (and owns) a server from a backend name/instance, or wraps a
    caller-provided ``server=`` without taking ownership of its
    lifecycle.
    """

    transport = "local"

    def __init__(
        self,
        optimizer: Union[str, Any] = "ortlike",
        *,
        server: Optional[Any] = None,
        cache: Optional[Any] = None,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        **optimizer_options,
    ) -> None:
        from ..serving.server import OptimizationServer

        if server is not None:
            if cache is not None or cache_dir is not None or optimizer_options:
                raise ValueError(
                    "pass either a prebuilt server or construction options, not both"
                )
            self._server = server
            self._owns_server = False
        else:
            self._server = OptimizationServer(
                optimizer,
                cache=cache,
                cache_dir=cache_dir,
                workers=workers,
                **optimizer_options,
            )
            self._owns_server = True

    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        return self._server.submit(_seal(manifest).bucket)

    def status(self, job_id: str):
        try:
            return self._server.status(job_id)
        except KeyError:
            raise EndpointError(ERR_UNKNOWN_JOB, f"unknown job id {job_id!r}") from None

    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> OptimizationReceipt:
        try:
            return self._server.await_receipt(job_id, timeout=timeout)
        except KeyError:
            raise EndpointError(ERR_UNKNOWN_JOB, f"unknown job id {job_id!r}") from None

    def metrics(self) -> Dict[str, Any]:
        return {"transport": self.transport, **self._server.metrics()}

    def close(self) -> None:
        if self._owns_server:
            self._server.close()


class SpoolEndpoint(OptimizerEndpoint):
    """Client side of the spool-directory flow ``repro serve`` drains.

    ``submit`` drops the sealed manifest into the directory (atomically,
    so the server never sees a half-written file); ``await_receipt``
    polls for the server's ``<job>.optimized.json`` output and its
    ``<job>.receipt.json`` metadata sidecar.  A server that exhausted
    its retries leaves ``<job>.error.json``, which surfaces here as a
    structured :class:`EndpointError` instead of a silent timeout.
    """

    transport = "spool"

    def __init__(self, spool_dir: str, poll_interval: float = 0.05) -> None:
        from ..serving import spool as _spool

        self.spool_dir = spool_dir
        self.poll_interval = poll_interval
        self._spool = _spool
        self._buckets: Dict[str, ObfuscatedBucket] = {}
        os.makedirs(spool_dir, exist_ok=True)

    def _path(self, job_id: str, suffix: str) -> str:
        return os.path.join(self.spool_dir, job_id + suffix)

    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        manifest = _seal(manifest)
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        self._spool.atomic_write_json(
            self._path(job_id, self._spool.INPUT_SUFFIX), manifest.to_dict()
        )
        self._buckets[job_id] = manifest.bucket
        return job_id

    def _known(self, job_id: str) -> bool:
        return job_id in self._buckets or os.path.exists(
            self._path(job_id, self._spool.INPUT_SUFFIX)
        )

    def status(self, job_id: str):
        from ..serving.server import JobState, JobStatus

        done = os.path.exists(self._path(job_id, self._spool.OPTIMIZED_SUFFIX))
        failed = os.path.exists(self._path(job_id, self._spool.ERROR_SUFFIX))
        if not (done or failed or self._known(job_id)):
            raise EndpointError(ERR_UNKNOWN_JOB, f"unknown job id {job_id!r}")
        bucket = self._buckets.get(job_id)
        total = len(bucket) if bucket is not None else 0
        # the filesystem only distinguishes queued/done/failed; per-entry
        # progress stays with the serving process.
        return JobStatus(
            job_id=job_id,
            state=(
                JobState.FAILED
                if failed and not done
                else JobState.DONE if done else JobState.QUEUED
            ),
            total_entries=total,
            completed_entries=total if done else 0,
            submitted_at=0.0,
        )

    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> OptimizationReceipt:
        if not self._known(job_id) and not os.path.exists(
            self._path(job_id, self._spool.OPTIMIZED_SUFFIX)
        ):
            raise EndpointError(ERR_UNKNOWN_JOB, f"unknown job id {job_id!r}")
        deadline = None if timeout is None else time.monotonic() + timeout
        out_path = self._path(job_id, self._spool.OPTIMIZED_SUFFIX)
        err_path = self._path(job_id, self._spool.ERROR_SUFFIX)
        while not os.path.exists(out_path):
            if os.path.exists(err_path):
                with open(err_path, "r", encoding="utf-8") as fh:
                    raise EndpointError.from_dict(json.load(fh))
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"spool job {job_id} not optimized within {timeout:g}s"
                )
            time.sleep(self.poll_interval)
        manifest = load_manifest(out_path)  # digest-verified
        receipt_path = self._path(job_id, self._spool.RECEIPT_SUFFIX)
        optimizer, workers = "spool", 0
        if os.path.exists(receipt_path):
            with open(receipt_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            optimizer = str(meta.get("optimizer", optimizer))
            workers = int(meta.get("workers", workers))
        before = self._buckets.get(job_id)
        if before is None:  # receipt for a job submitted by someone else
            before = manifest.bucket
        return receipt_from_buckets(
            before, manifest.bucket, optimizer=optimizer, workers=workers
        )

    def metrics(self) -> Dict[str, Any]:
        done = sum(
            1
            for job_id in self._buckets
            if os.path.exists(self._path(job_id, self._spool.OPTIMIZED_SUFFIX))
        )
        return {
            "transport": self.transport,
            "spool_dir": self.spool_dir,
            "jobs": {"submitted": len(self._buckets), "completed": done},
        }

    def close(self) -> None:
        self._buckets.clear()


def _is_wire_error(payload: Any) -> bool:
    """A structured wire error is ``{"error": {...}}`` with a dict value.

    The sniff must be shape-sensitive: job-status responses legitimately
    carry an ``"error"`` field (None while healthy, a string after an
    optimizer failure) that is *data*, not a protocol error envelope.
    """
    return isinstance(payload, dict) and isinstance(payload.get("error"), dict)


class HttpEndpoint(OptimizerEndpoint):
    """Client of the versioned JSON wire protocol (``repro serve --http``).

    Protocol versions are negotiated once per endpoint (``GET
    /v1/protocol``) before the first submit; a server speaking a
    different version raises ``EndpointError(version_mismatch)`` here
    rather than failing obscurely mid-submit.  Receipts are
    digest-verified client-side, so tampering anywhere in transit is
    caught before reassembly.
    """

    transport = "http"

    #: per-request socket timeout headroom on top of server-side waits.
    _REQUEST_SLACK = 15.0
    #: how long one blocking receipt poll asks the server to wait.
    _WAIT_CHUNK = 10.0

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        optimizer: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.optimizer = optimizer
        self._protocol_info: Optional[Dict[str, Any]] = None

    # -- plumbing -------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        url = self.base_url + path
        data = None if body is None else json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                req, timeout=self.timeout if timeout is None else timeout
            ) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = None
            if _is_wire_error(payload):
                raise EndpointError.from_dict(payload) from None
            # an intermediary (proxy, load balancer) answered, not our
            # wire protocol: surface it as a structured transport error.
            raise EndpointError(
                "transport_error", f"HTTP {exc.code} from {url}"
            ) from None
        except urllib.error.URLError as exc:
            raise ConnectionError(f"cannot reach {url}: {exc.reason}") from None
        if _is_wire_error(payload):
            raise EndpointError.from_dict(payload)
        return payload

    def negotiate(self) -> Dict[str, Any]:
        """Fetch (once) and version-check the server's protocol banner."""
        if self._protocol_info is None:
            info = self._request("GET", "/v1/protocol")
            version = info.get("protocol_version")
            if version != PROTOCOL_VERSION:
                raise EndpointError(
                    ERR_VERSION_MISMATCH,
                    f"server at {self.base_url} speaks protocol {version!r}, "
                    f"this client speaks {PROTOCOL_VERSION}",
                )
            self._protocol_info = info
        return self._protocol_info

    # -- OptimizerEndpoint ----------------------------------------------------
    def submit(self, manifest: Union[BucketManifest, ObfuscatedBucket]) -> str:
        self.negotiate()
        body = {
            "protocol_version": PROTOCOL_VERSION,
            "manifest": _seal(manifest).to_dict(),
        }
        if self.optimizer is not None:
            body["optimizer"] = self.optimizer
        return str(self._request("POST", "/v1/jobs", body)["job_id"])

    def status(self, job_id: str):
        return status_from_wire(
            self._request("GET", f"/v1/jobs/{urllib.parse.quote(job_id)}")
        )

    def await_receipt(
        self, job_id: str, timeout: Optional[float] = None
    ) -> OptimizationReceipt:
        deadline = None if timeout is None else time.monotonic() + timeout
        quoted = urllib.parse.quote(job_id)
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} not finished within {timeout:g}s"
                )
            wait = self._WAIT_CHUNK if remaining is None else min(remaining, self._WAIT_CHUNK)
            try:
                payload = self._request(
                    "GET",
                    f"/v1/jobs/{quoted}/receipt?wait={wait:g}",
                    timeout=wait + self._REQUEST_SLACK,
                )
            except EndpointError as exc:
                if exc.code == ERR_JOB_PENDING:
                    continue
                raise
            try:
                return receipt_from_wire(payload, verify=True)
            except ManifestIntegrityError as exc:
                raise EndpointError(
                    ERR_BAD_DIGEST, f"receipt failed verification: {exc}"
                ) from None

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def close(self) -> None:  # urllib opens one connection per request
        self._protocol_info = None


class RemoteOptimizerService:
    """:class:`~repro.api.clients.OptimizerService`-shaped facade.

    Wraps any endpoint so code written against
    ``service.optimize(bucket) -> receipt`` runs unchanged against a
    remote optimizer party.
    """

    def __init__(self, endpoint: OptimizerEndpoint, timeout: Optional[float] = None):
        self.endpoint = endpoint
        self.timeout = timeout
        self.name = f"remote:{endpoint.transport}"

    def optimize(self, bucket: Union[BucketManifest, ObfuscatedBucket]) -> OptimizationReceipt:
        job_id = self.endpoint.submit(bucket)
        return self.endpoint.await_receipt(job_id, timeout=self.timeout)


_URI_GRAMMAR = (
    "endpoint URIs: local:[BACKEND] | spool:DIRECTORY | http://HOST:PORT "
    "| https://HOST:PORT"
)


def open_endpoint(
    uri: str,
    *,
    optimizer: Optional[str] = None,
    workers: int = 2,
    cache: Optional[Any] = None,
    cache_dir: Optional[str] = None,
    timeout: float = 30.0,
    **optimizer_options,
) -> OptimizerEndpoint:
    """Open an endpoint from its URI (the ``--endpoint`` flag grammar).

    ``optimizer`` names the backend: constructed in-process for
    ``local:`` endpoints, requested per submit over HTTP (the server
    resolves it from its own registry), and unused for ``spool:``
    (the spool server's configuration decides).  ``None`` means the
    serving side's default.  Worker/cache options only apply to
    ``local:`` — elsewhere they are properties of the serving process.
    """
    if uri.startswith(("http://", "https://")):
        return HttpEndpoint(uri, timeout=timeout, optimizer=optimizer)
    scheme, sep, rest = uri.partition(":")
    if not sep:
        raise ValueError(f"invalid endpoint URI {uri!r}; {_URI_GRAMMAR}")
    if scheme == "local":
        return LocalEndpoint(
            rest or optimizer or "ortlike",
            workers=workers,
            cache=cache,
            cache_dir=cache_dir,
            **optimizer_options,
        )
    if scheme == "spool":
        if not rest:
            raise ValueError(
                f"spool endpoint needs a directory (spool:DIR), got {uri!r}"
            )
        return SpoolEndpoint(rest)
    raise ValueError(f"unknown endpoint scheme {scheme!r}; {_URI_GRAMMAR}")
