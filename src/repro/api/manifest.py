"""Versioned wire protocol for the bucket exchange.

The bucket is the only artifact that crosses the trust boundary, so its
on-disk form gets a real envelope: a :class:`BucketManifest` wraps the
legacy bucket payload with a manifest version, per-entry content digests
and a whole-bucket digest.  The owner verifies integrity when the
optimized bucket comes back (a corrupted or truncated transfer fails
loudly instead of reassembling garbage), and the optimizer party can
prove exactly which entry bytes it received.

Digests deliberately cover graph *content*; the optimizer rewrites
graphs, so it re-manifests the returned bucket with fresh digests while
the entry-id/group layout (checked separately via
:func:`repro.api.types.bucket_key`) stays fixed.

Legacy bare-bucket JSON files (the seed format) load transparently:
:func:`load_manifest` sniffs the envelope and wraps v1 payloads on the
fly, so old artifacts keep working.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict

from ..ir.graph import Graph
from ..ir.serialization import graph_to_dict
from ..core.bucket_io import bucket_from_dict, bucket_to_dict
from ..core.proteus import ObfuscatedBucket

__all__ = [
    "MANIFEST_VERSION",
    "BucketManifest",
    "ManifestIntegrityError",
    "graph_digest",
    "save_manifest",
    "load_manifest",
]

MANIFEST_VERSION = 1
_DIGEST_PREFIX = "sha256:"


class ManifestIntegrityError(ValueError):
    """The manifest's digests do not match its payload."""


def _sha256(blob: bytes) -> str:
    return _DIGEST_PREFIX + hashlib.sha256(blob).hexdigest()


def graph_digest(graph: Graph) -> str:
    """Canonical content digest of a graph (key-sorted JSON, sha256)."""
    blob = json.dumps(graph_to_dict(graph), sort_keys=True, separators=(",", ":"))
    return _sha256(blob.encode("utf-8"))


def _bucket_digest(entry_digests: Dict[str, str], n_groups: int, k: int) -> str:
    """Digest over the ordered entry digests + bucket geometry."""
    blob = json.dumps(
        {"n_groups": n_groups, "k": k, "entries": sorted(entry_digests.items())},
        sort_keys=True,
        separators=(",", ":"),
    )
    return _sha256(blob.encode("utf-8"))


@dataclass
class BucketManifest:
    """The envelope that actually travels between the two parties."""

    bucket: ObfuscatedBucket
    entry_digests: Dict[str, str] = field(default_factory=dict)
    bucket_digest: str = ""
    manifest_version: int = MANIFEST_VERSION

    @classmethod
    def from_bucket(cls, bucket: ObfuscatedBucket) -> "BucketManifest":
        """Seal a bucket: compute per-entry and whole-bucket digests."""
        digests = {e.entry_id: graph_digest(e.graph) for e in bucket}
        manifest = cls(
            bucket=bucket,
            entry_digests=digests,
            bucket_digest=_bucket_digest(digests, bucket.n_groups, bucket.k),
        )
        # the digests were computed from this exact payload one line up:
        # endpoints need not re-hash it at submit time (a loadtest
        # submitting one sealed manifest hundreds of times would other-
        # wise spend most of its client budget re-verifying it).
        manifest._verified = True
        return manifest

    def check_consistency(self) -> None:
        """Digest-*table* self-consistency, without re-hashing any graph.

        Catches a manifest whose entry-digest table was altered after
        sealing (the bucket digest covers the table) at a cost that is
        O(entries), not O(weights) — the check endpoints run on every
        submit of an already-verified manifest.
        """
        if set(self.entry_digests) != {e.entry_id for e in self.bucket}:
            raise ManifestIntegrityError(
                "manifest entry set does not match bucket entry set"
            )
        expected = _bucket_digest(
            self.entry_digests, self.bucket.n_groups, self.bucket.k
        )
        if expected != self.bucket_digest:
            raise ManifestIntegrityError(
                f"bucket digest mismatch: manifest says {self.bucket_digest}, "
                f"entries hash to {expected}"
            )

    def verify(self) -> None:
        """Recompute every digest and raise on any mismatch."""
        if set(self.entry_digests) != {e.entry_id for e in self.bucket}:
            raise ManifestIntegrityError(
                "manifest entry set does not match bucket entry set"
            )
        for entry in self.bucket:
            actual = graph_digest(entry.graph)
            if actual != self.entry_digests[entry.entry_id]:
                raise ManifestIntegrityError(
                    f"digest mismatch for entry {entry.entry_id!r}: "
                    f"manifest says {self.entry_digests[entry.entry_id]}, "
                    f"payload hashes to {actual}"
                )
        self.check_consistency()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "manifest_version": self.manifest_version,
            "bucket": bucket_to_dict(self.bucket),
            "entry_digests": dict(self.entry_digests),
            "bucket_digest": self.bucket_digest,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any], verify: bool = True) -> "BucketManifest":
        if "manifest_version" not in d and "entries" in d:
            # legacy bare-bucket payload (seed format): wrap, nothing to
            # verify — the digests were just computed from the payload.
            manifest = cls.from_bucket(bucket_from_dict(d))
            manifest._verified = True
            return manifest
        version = d.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version: {version!r}")
        manifest = cls(
            bucket=bucket_from_dict(d["bucket"]),
            entry_digests=dict(d["entry_digests"]),
            bucket_digest=str(d["bucket_digest"]),
            manifest_version=int(version),
        )
        if verify:
            manifest.verify()
            # endpoints re-check integrity at submit time; this memo
            # lets them skip re-hashing a manifest this process already
            # verified against the exact bytes it loaded.
            manifest._verified = True
        return manifest


def save_manifest(bucket_or_manifest, path: str) -> BucketManifest:
    """Seal (if needed) and write a manifest; returns what was written."""
    if isinstance(bucket_or_manifest, BucketManifest):
        manifest = bucket_or_manifest
    else:
        manifest = BucketManifest.from_bucket(bucket_or_manifest)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_dict(), fh)
    return manifest


def load_manifest(path: str, verify: bool = True) -> BucketManifest:
    """Read a manifest (or legacy bucket) file, verifying integrity."""
    with open(path, "r", encoding="utf-8") as fh:
        return BucketManifest.from_dict(json.load(fh), verify=verify)
