"""Role-separated clients for the two-party Proteus protocol.

The paper's trust boundary splits the workflow between two parties, and
this module gives each party its own client so the types themselves
enforce the boundary:

* :class:`ModelOwner` — partitions, sentinel-hides and anonymizes the
  protected model, keeps the secret :class:`ReassemblyPlan` internally,
  and later reassembles the optimized model from an
  :class:`OptimizationReceipt`.  The plan never appears in any
  optimizer-facing signature.
* :class:`OptimizerService` — the untrusted party.  It sees only the
  anonymous bucket, optimizes every entry indiscriminately (optionally
  fanning entries across a worker pool — they are independent by
  construction) and returns a receipt.

Backends are addressed by name through :mod:`repro.api.registry`, so
``OptimizerService("hidetlike")`` and a third-party
``OptimizerService("my-tvm")`` are the same one-liner.
"""

from __future__ import annotations

import hashlib
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.config import ProteusConfig
from ..core.partition import Partition
from ..core.proteus import (
    BucketEntry,
    GraphOptimizer,
    ObfuscatedBucket,
    ReassemblyPlan,
    SentinelSource,
)
from ..core.reassembly import reassemble
from ..core.subgraph import SubgraphBoundary, anonymize_subgraph, extract_subgraph
from ..ir.graph import Graph
from ..ir.shape_inference import infer_shapes
from .registry import (
    resolve_optimizer,
    resolve_partitioner,
    resolve_sentinel_strategy,
)
from .types import (
    EntryOptimization,
    ObfuscationResult,
    ObfuscationStats,
    OptimizationReceipt,
    bucket_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serving.cache import OptimizationCache

__all__ = ["ModelOwner", "OptimizerService", "ProgressCallback"]

#: ``progress(done, total, entry_id)`` invoked after each entry finishes.
ProgressCallback = Callable[[int, int, str], None]


class ModelOwner:
    """The trusted party: obfuscates models and reassembles results.

    Plans are retained internally, keyed by the bucket's layout identity
    (:func:`repro.api.types.bucket_key`), so ``reassemble(receipt)``
    works without the secret ever traveling alongside the bucket.
    """

    def __init__(
        self,
        config: Optional[ProteusConfig] = None,
        sentinel_source: Optional[SentinelSource] = None,
    ) -> None:
        self.config = config or ProteusConfig()
        self._sentinel_source = sentinel_source
        self._plans: Dict[str, ReassemblyPlan] = {}

    # -- components (registry-resolved) -----------------------------------
    def partition(self, graph: Graph) -> Partition:
        """Split the protected graph with the configured partitioner."""
        partitioner = resolve_partitioner(self.config.partitioner)
        n = self.config.partitions_for(graph.num_nodes)
        return partitioner(
            graph, n, trials=self.config.partition_trials, seed=self.config.seed
        )

    def sentinel_source(self) -> SentinelSource:
        """The configured sentinel generator (built lazily on first use)."""
        if self._sentinel_source is None:
            factory = resolve_sentinel_strategy(self.config.sentinel_strategy)
            self._sentinel_source = factory(self.config)
        return self._sentinel_source

    # -- protocol step 1: obfuscate ----------------------------------------
    def obfuscate(self, graph: Graph) -> ObfuscationResult:
        """Partition + sentinel-generate + anonymize + shuffle."""
        infer_shapes(graph)
        partition = self.partition(graph)
        k = self.config.k
        rng = np.random.default_rng(self.config.seed)
        source = self.sentinel_source() if k > 0 else None

        entries: List[BucketEntry] = []
        real_ids: List[str] = []
        boundaries: List[SubgraphBoundary] = []
        next_id = 0
        # Entry ids carry a deterministic per-obfuscation nonce so two
        # obfuscations (different models or seeds) never share a layout
        # key — otherwise same-geometry buckets would collide in
        # ``_plans`` and ``reassemble(receipt)`` could pick a stale plan.
        # A sha256 prefix is uniform across the bucket and preimage-
        # resistant, so it cannot distinguish entries or leak the model.
        from .manifest import graph_digest

        nonce = hashlib.sha256(
            f"{graph_digest(graph)}|{self.config.seed}|{k}".encode("utf-8")
        ).hexdigest()[:8]

        def fresh_id() -> str:
            nonlocal next_id
            eid = f"g{nonce}-{next_id:05d}"
            next_id += 1
            return eid

        for group, cluster in enumerate(partition.clusters):
            sub, boundary = extract_subgraph(graph, cluster, group)
            group_graphs: List[Tuple[Graph, bool]] = [(sub, True)]
            if source is not None:
                sentinels = source.generate(
                    sub, k, seed=int(rng.integers(0, 2**31 - 1))
                )
                if len(sentinels) != k:
                    raise RuntimeError(
                        f"sentinel source returned {len(sentinels)} graphs, wanted {k}"
                    )
                group_graphs.extend((s, False) for s in sentinels)
            order = rng.permutation(len(group_graphs))
            for pos in order:
                g, is_real = group_graphs[pos]
                eid = fresh_id()
                if is_real:
                    anon, anon_boundary = anonymize_subgraph(g, boundary, eid)
                    entries.append(BucketEntry(eid, group, anon))
                    real_ids.append(eid)
                    boundaries.append(anon_boundary)
                else:
                    # sentinels are born anonymous but get the same rename
                    # treatment so naming conventions cannot leak realness.
                    dummy = SubgraphBoundary(group, [], [])
                    anon, _ = anonymize_subgraph(g, dummy, eid)
                    entries.append(BucketEntry(eid, group, anon))

        bucket = ObfuscatedBucket(entries, n_groups=partition.n, k=k)
        plan = ReassemblyPlan(
            model_template=graph.clone(), real_ids=real_ids, boundaries=boundaries
        )
        stats = ObfuscationStats(
            model_name=graph.name,
            n_groups=bucket.n_groups,
            k=k,
            n_entries=len(bucket),
            total_nodes=sum(e.graph.num_nodes for e in bucket),
            search_space=bucket.nominal_search_space(),
            sentinel_strategy=self.config.sentinel_strategy,
            partitioner=self.config.partitioner,
        )
        result = ObfuscationResult(bucket=bucket, plan=plan, stats=stats)
        self._plans[result.key] = plan
        return result

    # -- protocol step 3: reassemble ---------------------------------------
    def reassemble(
        self,
        receipt: Union[OptimizationReceipt, ObfuscatedBucket],
        plan: Optional[ReassemblyPlan] = None,
    ) -> Graph:
        """Stitch the optimized model back from a receipt (or raw bucket).

        Without an explicit ``plan``, the plan retained by this owner for
        the matching bucket layout is used — so a receipt from a foreign
        obfuscation (one this owner never produced) is rejected.
        """
        bucket = receipt.bucket if isinstance(receipt, OptimizationReceipt) else receipt
        if plan is None:
            key = bucket_key(bucket)
            if key not in self._plans:
                raise KeyError(
                    "no reassembly plan retained for this bucket layout; "
                    "did this owner produce it?"
                )
            plan = self._plans[key]
        subs = [bucket.get(eid).graph for eid in plan.real_ids]
        return reassemble(plan.model_template, subs, plan.boundaries)

    def optimize_via(
        self,
        endpoint,
        result: ObfuscationResult,
        timeout: Optional[float] = None,
    ) -> Graph:
        """Run one obfuscation through any endpoint and reassemble.

        ``endpoint`` is any :class:`~repro.api.endpoint.OptimizerEndpoint`
        — in-process, spool directory, or HTTP — so the owner's script
        is transport agnostic.  The bucket ships as a sealed manifest
        (``submit`` seals a raw bucket itself, hashing each graph
        exactly once); the secret plan never leaves this owner.
        """
        job_id = endpoint.submit(result.bucket)
        receipt = endpoint.await_receipt(job_id, timeout=timeout)
        return self.reassemble(receipt)

    def forget(self, result_or_key: Union[ObfuscationResult, str]) -> None:
        """Drop a retained plan (after successful reassembly)."""
        key = (
            result_or_key
            if isinstance(result_or_key, str)
            else result_or_key.key
        )
        self._plans.pop(key, None)


class OptimizerService:
    """The untrusted party: optimizes every bucket entry blindly.

    Parameters
    ----------
    optimizer:
        A registered backend name (``"ortlike"``, ``"hidetlike"``, or any
        third-party registration), an instance exposing
        ``optimize(graph) -> graph``, or a zero-arg factory returning one.
    **optimizer_options:
        Keyword arguments forwarded to the backend factory when
        ``optimizer`` is a name (e.g. ``kernel_selection=True``).
    """

    def __init__(
        self,
        optimizer: Union[str, GraphOptimizer, Callable[[], GraphOptimizer]] = "ortlike",
        **optimizer_options,
    ) -> None:
        self._factory: Optional[Callable[[], GraphOptimizer]] = None
        self._instance: Optional[GraphOptimizer] = None
        self._options: Dict[str, object] = dict(optimizer_options)
        self._named = isinstance(optimizer, str)
        if isinstance(optimizer, str):
            backend = resolve_optimizer(optimizer)
            self.name = optimizer
            try:
                import inspect

                inspect.signature(backend).bind(**optimizer_options)
            except TypeError:
                raise TypeError(
                    f"optimizer {optimizer!r} does not accept options "
                    f"{sorted(optimizer_options)}"
                ) from None
            except ValueError:  # no introspectable signature — defer to call
                pass
            self._factory = lambda: backend(**optimizer_options)
        elif isinstance(optimizer, type):
            # a class is a zero-arg factory, not an instance — its
            # unbound .optimize would otherwise pass the graph as self.
            if optimizer_options:
                raise TypeError("optimizer_options require a backend name")
            self._factory = optimizer
            self.name = getattr(optimizer, "name", None) or optimizer.__name__
        elif callable(getattr(optimizer, "optimize", None)):
            if optimizer_options:
                raise TypeError("optimizer_options require a backend name")
            self._instance = optimizer  # type: ignore[assignment]
            self.name = getattr(optimizer, "name", type(optimizer).__name__)
        elif callable(optimizer):
            if optimizer_options:
                raise TypeError("optimizer_options require a backend name")
            self._factory = optimizer
            self.name = getattr(optimizer, "__name__", "custom")
        else:
            raise TypeError(
                f"optimizer must be a registered name, an object with "
                f".optimize(), or a factory; got {optimizer!r}"
            )

    def _make_optimizer(self) -> GraphOptimizer:
        if self._instance is not None:
            return self._instance
        assert self._factory is not None
        return self._factory()

    _FINGERPRINT_UNSET = object()

    @property
    def config_fingerprint(self) -> Optional[str]:
        """Stable fingerprint of this service's backend configuration.

        Part of every cache key, so ``ortlike`` at different levels (or
        with kernel selection toggled) never share cached results.  The
        backend's own ``cache_fingerprint`` attribute wins when it
        declares one (it captures constructor defaults the options dict
        cannot see); otherwise named backends are keyed by their
        options.  Returns None when the configuration cannot be
        determined safely — an instance or factory without a declared
        fingerprint — in which case cached paths bypass the cache
        rather than risk serving a graph optimized under different
        settings.
        """
        cached = getattr(self, "_fingerprint", self._FINGERPRINT_UNSET)
        if cached is not self._FINGERPRINT_UNSET:
            return cached
        fingerprint: Optional[str]
        declared = getattr(self._make_optimizer(), "cache_fingerprint", None)
        if declared is not None:
            fingerprint = str(declared)
        elif self._named:
            from ..serving.cache import fingerprint_config

            fingerprint = fingerprint_config(self._options or None)
        else:
            fingerprint = None
        self._fingerprint = fingerprint
        return fingerprint

    def optimize(
        self,
        bucket: ObfuscatedBucket,
        max_workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        cache: Optional["OptimizationCache"] = None,
    ) -> OptimizationReceipt:
        """Optimize every entry; the service cannot tell real from sentinel.

        Entries are independent by construction, so with
        ``max_workers > 1`` they fan across a thread pool.  The result is
        guaranteed entry-for-entry identical to the serial run: each
        worker thread gets its own backend instance (when a factory is
        available) and the output bucket is rebuilt in the original entry
        order, never in completion order.

        With a ``cache`` (:class:`repro.serving.OptimizationCache`),
        each entry takes the content-addressed fast path: structurally
        identical graphs — same topology, ops, attributes and weights,
        names aside — are optimized once and every later request is a
        rename of the cached result.  A backend whose configuration
        cannot be fingerprinted (an instance or factory without a
        ``cache_fingerprint`` attribute) bypasses the cache rather than
        risk returning graphs optimized under different settings.
        """
        total = len(bucket)
        entry_stats: Dict[str, EntryOptimization] = {}
        optimized: Dict[str, Graph] = {}
        workers = 1 if max_workers is None else max(1, int(max_workers))
        workers = min(workers, total) or 1

        fingerprint = self.config_fingerprint if cache is not None else None
        if cache is None or fingerprint is None:
            # no cache, or a backend whose configuration cannot be
            # fingerprinted safely: optimize directly.
            def run_entry(optimizer: GraphOptimizer, graph: Graph) -> Graph:
                return optimizer.optimize(graph)
        else:
            from ..serving.cache import cached_optimize

            def run_entry(optimizer: GraphOptimizer, graph: Graph) -> Graph:
                result, _ = cached_optimize(
                    graph, optimizer.optimize, cache, self.name, fingerprint
                )
                return result

        if workers == 1:
            optimizer = self._make_optimizer()
            for done, entry in enumerate(bucket, start=1):
                optimized[entry.entry_id] = run_entry(optimizer, entry.graph)
                if progress is not None:
                    progress(done, total, entry.entry_id)
        else:
            local = threading.local()

            def worker_optimize(entry: BucketEntry) -> Tuple[str, Graph]:
                if not hasattr(local, "optimizer"):
                    local.optimizer = self._make_optimizer()
                return entry.entry_id, run_entry(local.optimizer, entry.graph)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(worker_optimize, e) for e in bucket]
                for done, fut in enumerate(as_completed(futures), start=1):
                    eid, graph = fut.result()
                    optimized[eid] = graph
                    if progress is not None:
                        progress(done, total, eid)

        for entry in bucket:
            entry_stats[entry.entry_id] = EntryOptimization(
                nodes_before=entry.graph.num_nodes,
                nodes_after=optimized[entry.entry_id].num_nodes,
            )
        return OptimizationReceipt(
            bucket=bucket.with_graphs(optimized),
            optimizer=self.name,
            workers=workers,
            entries=entry_stats,
        )
