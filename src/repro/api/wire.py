"""Shared vocabulary of the versioned endpoint wire protocol.

Every transport in :mod:`repro.api.endpoint` — and the HTTP server in
:mod:`repro.serving.http` — speaks the same JSON protocol:

* requests and receipts carry ``protocol_version`` (currently
  :data:`PROTOCOL_VERSION`); a server rejects versions it does not
  speak instead of guessing;
* failures travel as structured errors, ``{"error": {"code", "message",
  "protocol_version"}}``, with a small closed set of codes so clients
  can branch without parsing prose;
* a receipt crosses the boundary as the digest-verified
  :class:`~repro.api.manifest.BucketManifest` plus per-entry
  before/after accounting, so tampering in transit is detected on
  either side of the connection.

This module is deliberately import-light (stdlib + sibling ``api``
modules only) so both client and server layers can depend on it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "ERR_MALFORMED",
    "ERR_VERSION_MISMATCH",
    "ERR_BAD_DIGEST",
    "ERR_UNKNOWN_BACKEND",
    "ERR_UNKNOWN_JOB",
    "ERR_JOB_PENDING",
    "ERR_JOB_FAILED",
    "ERR_OVERLOADED",
    "ERR_NOT_FOUND",
    "ERR_INTERNAL",
    "ERR_TRANSPORT",
    "HTTP_STATUS",
    "MUX_FRAME_EVENT",
    "TRACE_HEADER",
    "TRACE_FIELD",
    "EndpointError",
    "receipt_to_wire",
    "receipt_from_wire",
    "status_to_wire",
    "status_from_wire",
]

#: Version of the endpoint wire protocol this build speaks.  Bump it on
#: any incompatible change to the request/response schemas below; both
#: sides reject a mismatch with :data:`ERR_VERSION_MISMATCH`.
PROTOCOL_VERSION = 1

# -- structured error codes ---------------------------------------------------
ERR_MALFORMED = "malformed_request"  #: body is not valid JSON / missing fields
ERR_VERSION_MISMATCH = "version_mismatch"  #: protocol_version not supported
ERR_BAD_DIGEST = "bad_digest"  #: manifest digests do not match the payload
ERR_UNKNOWN_BACKEND = "unknown_backend"  #: requested optimizer not registered
ERR_UNKNOWN_JOB = "unknown_job"  #: job id never submitted (or already claimed)
ERR_JOB_PENDING = "job_pending"  #: receipt requested before the job finished
ERR_JOB_FAILED = "job_failed"  #: the optimizer raised while running the job
ERR_OVERLOADED = "overloaded"  #: admission control shed the submit; retry later
ERR_NOT_FOUND = "not_found"  #: no such route
ERR_INTERNAL = "internal_error"  #: unexpected server-side failure
ERR_TRANSPORT = "transport_error"  #: reply violated the protocol (client-side)

#: HTTP status each error code travels under.  ``job_pending`` is a 202
#: (the request was fine, the result just isn't ready), ``overloaded``
#: is the standard 429 (back off and retry), everything else is a plain
#: client/server error.
HTTP_STATUS: Dict[str, int] = {
    ERR_MALFORMED: 400,
    ERR_VERSION_MISMATCH: 400,
    ERR_BAD_DIGEST: 400,
    ERR_UNKNOWN_BACKEND: 400,
    ERR_UNKNOWN_JOB: 404,
    ERR_NOT_FOUND: 404,
    ERR_JOB_PENDING: 202,
    ERR_JOB_FAILED: 500,
    ERR_OVERLOADED: 429,
    ERR_INTERNAL: 500,
    ERR_TRANSPORT: 502,
}

#: How each error code travels on the multiplexed frame transport.
#: ``"error"`` codes surface to the client as a typed ``error`` frame on
#: the requesting channel; ``"retry"`` codes never cross the wire at all
#: — the server-side receipt watcher absorbs them and keeps waiting
#: (``job_pending`` means "not ready yet", which on a *streaming*
#: transport is silence, not a failure).  Both mappings must be total
#: over the closed set above — enforced statically by
#: ``repro check --select wire-totality`` and at runtime by
#: ``tests/api/test_wire_contract.py``.
MUX_FRAME_EVENT: Dict[str, str] = {
    ERR_MALFORMED: "error",
    ERR_VERSION_MISMATCH: "error",
    ERR_BAD_DIGEST: "error",
    ERR_UNKNOWN_BACKEND: "error",
    ERR_UNKNOWN_JOB: "error",
    ERR_NOT_FOUND: "error",
    ERR_JOB_PENDING: "retry",
    ERR_JOB_FAILED: "error",
    ERR_OVERLOADED: "error",
    ERR_INTERNAL: "error",
    ERR_TRANSPORT: "error",
}


# -- distributed-trace propagation --------------------------------------------
#
# The trace context is an OPTIONAL field on every transport — absent
# means "not traced", never an error, so v1 peers without tracing
# interoperate unchanged and no protocol-version bump is needed.  The
# value is the compact string form of
# :meth:`repro.obs.trace.TraceContext.to_wire`
# (``<trace_id>-<span_id>-<0|1>``); receivers parse it with
# ``TraceContext.from_wire``, which degrades malformed input to None.

#: HTTP request header carrying the trace context on submit.
TRACE_HEADER = "X-Repro-Trace"

#: optional field name on mux submit frames and in spool envelopes.
TRACE_FIELD = "trace"


class EndpointError(Exception):
    """A structured endpoint failure, identical on the wire and in-process.

    ``code`` is one of the ``ERR_*`` constants; ``message`` is the
    human-readable detail.  Transports raise this directly (in-process)
    or serialize/deserialize it via :meth:`to_dict`/:meth:`from_dict`.

    ``retry_after_s`` rides along on ``overloaded`` errors: the serving
    side's estimate of when capacity frees up, which well-behaved
    clients honor (with backoff + jitter) instead of hammering an
    already-saturated queue.  It survives serialization on every
    transport, so branch-on-code *and* the hint are transport-agnostic.
    """

    def __init__(
        self, code: str, message: str, retry_after_s: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s

    def to_dict(self) -> Dict[str, Any]:
        error: Dict[str, Any] = {
            "code": self.code,
            "message": self.message,
            "protocol_version": PROTOCOL_VERSION,
        }
        if self.retry_after_s is not None:
            error["retry_after_s"] = round(float(self.retry_after_s), 3)
        return {"error": error}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "EndpointError":
        err = d.get("error")
        if not isinstance(err, dict):
            err = {}
        retry_after = err.get("retry_after_s")
        try:
            retry_after = None if retry_after is None else max(0.0, float(retry_after))
        except (TypeError, ValueError):
            retry_after = None
        return cls(
            str(err.get("code", ERR_INTERNAL)),
            str(err.get("message", "unspecified endpoint error")),
            retry_after_s=retry_after,
        )

    def __str__(self) -> str:
        return self.message


# -- receipt on the wire ------------------------------------------------------


def receipt_to_wire(receipt) -> Dict[str, Any]:
    """Serialize an :class:`~repro.api.types.OptimizationReceipt`.

    The optimized bucket travels inside a freshly sealed
    :class:`~repro.api.manifest.BucketManifest`, so the receiving side
    re-verifies content digests before trusting the graphs.
    """
    from .manifest import BucketManifest

    return {
        "protocol_version": PROTOCOL_VERSION,
        "manifest": BucketManifest.from_bucket(receipt.bucket).to_dict(),
        "optimizer": receipt.optimizer,
        "workers": receipt.workers,
        "entries": {
            entry_id: {"nodes_before": s.nodes_before, "nodes_after": s.nodes_after}
            for entry_id, s in receipt.entries.items()
        },
    }


def receipt_from_wire(d: Dict[str, Any], verify: bool = True):
    """Rebuild a receipt from its wire form, verifying manifest digests.

    Raises :class:`~repro.api.manifest.ManifestIntegrityError` when the
    payload was tampered with in transit.
    """
    from .manifest import BucketManifest
    from .types import EntryOptimization, OptimizationReceipt

    manifest = BucketManifest.from_dict(d["manifest"], verify=verify)
    entries = {
        str(entry_id): EntryOptimization(
            nodes_before=int(v["nodes_before"]), nodes_after=int(v["nodes_after"])
        )
        for entry_id, v in (d.get("entries") or {}).items()
    }
    return OptimizationReceipt(
        bucket=manifest.bucket,
        optimizer=str(d.get("optimizer", "remote")),
        workers=int(d.get("workers", 1)),
        entries=entries,
    )


# -- job status on the wire ---------------------------------------------------


def status_to_wire(status) -> Dict[str, Any]:
    """Serialize a :class:`~repro.serving.server.JobStatus`."""
    return {
        "protocol_version": PROTOCOL_VERSION,
        "job_id": status.job_id,
        "state": status.state.value,
        "total_entries": status.total_entries,
        "completed_entries": status.completed_entries,
        "submitted_at": status.submitted_at,
        "finished_at": status.finished_at,
        "error": status.error,
    }


def status_from_wire(d: Dict[str, Any]):
    """Rebuild a :class:`~repro.serving.server.JobStatus` from the wire."""
    from ..serving.server import JobState, JobStatus

    return JobStatus(
        job_id=str(d["job_id"]),
        state=JobState(d["state"]),
        total_entries=int(d["total_entries"]),
        completed_entries=int(d["completed_entries"]),
        submitted_at=float(d["submitted_at"]),
        finished_at=None if d.get("finished_at") is None else float(d["finished_at"]),
        error=d.get("error"),
    )
