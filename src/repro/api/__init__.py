"""repro.api — the two-party service surface of Proteus.

This package is the supported public API:

* :mod:`repro.api.registry` — string-addressable component registries
  (``@register_optimizer`` & friends) so backends plug in by name;
* :mod:`repro.api.clients` — role-separated :class:`ModelOwner` /
  :class:`OptimizerService` clients that keep the secret reassembly plan
  on the owner's side of the trust boundary;
* :mod:`repro.api.types` — typed request/response envelopes
  (:class:`ObfuscationResult`, :class:`OptimizationReceipt`);
* :mod:`repro.api.manifest` — the versioned, digest-verified wire
  format the bucket travels in;
* :mod:`repro.api.endpoint` — transport-agnostic
  :class:`OptimizerEndpoint` clients (in-process, spool directory,
  HTTP) behind one ``submit``/``status``/``await_receipt`` interface;
* :mod:`repro.api.wire` — the versioned JSON wire protocol those
  endpoints and ``repro serve --http`` share (structured error codes,
  receipt/status serialization).

Import note: only the registry is loaded eagerly.  Client/manifest
symbols resolve lazily (PEP 562) so core modules can import the registry
at definition time without a circular import.
"""

from .registry import (  # noqa: F401  (registry is import-light)
    Registry,
    UnknownComponentError,
    list_optimizers,
    list_partitioners,
    list_sentinel_strategies,
    register_optimizer,
    register_partitioner,
    register_sentinel_strategy,
    resolve_optimizer,
    resolve_partitioner,
    resolve_sentinel_strategy,
)

__all__ = [
    # registry
    "Registry",
    "UnknownComponentError",
    "register_optimizer",
    "register_partitioner",
    "register_sentinel_strategy",
    "list_optimizers",
    "list_partitioners",
    "list_sentinel_strategies",
    "resolve_optimizer",
    "resolve_partitioner",
    "resolve_sentinel_strategy",
    # clients
    "ModelOwner",
    "OptimizerService",
    "ProgressCallback",
    # typed envelopes
    "ObfuscationResult",
    "ObfuscationStats",
    "OptimizationReceipt",
    "EntryOptimization",
    "bucket_key",
    "receipt_from_buckets",
    # wire protocol
    "BucketManifest",
    "ManifestIntegrityError",
    "graph_digest",
    "save_manifest",
    "load_manifest",
    # endpoints
    "OptimizerEndpoint",
    "LocalEndpoint",
    "SpoolEndpoint",
    "HttpEndpoint",
    "RemoteOptimizerService",
    "open_endpoint",
    "EndpointError",
    "PROTOCOL_VERSION",
]

_LAZY = {
    "ModelOwner": "clients",
    "OptimizerService": "clients",
    "ProgressCallback": "clients",
    "ObfuscationResult": "types",
    "ObfuscationStats": "types",
    "OptimizationReceipt": "types",
    "EntryOptimization": "types",
    "bucket_key": "types",
    "BucketManifest": "manifest",
    "ManifestIntegrityError": "manifest",
    "graph_digest": "manifest",
    "save_manifest": "manifest",
    "load_manifest": "manifest",
    "receipt_from_buckets": "types",
    "OptimizerEndpoint": "endpoint",
    "LocalEndpoint": "endpoint",
    "SpoolEndpoint": "endpoint",
    "HttpEndpoint": "endpoint",
    "RemoteOptimizerService": "endpoint",
    "open_endpoint": "endpoint",
    "EndpointError": "wire",
    "PROTOCOL_VERSION": "wire",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for next access
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
