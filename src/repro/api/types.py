"""Typed request/response envelopes for the two-party service API.

The seed API returned bare tuples (``bucket, plan``); services need
self-describing results that carry provenance and summary statistics
alongside the payload.  These dataclasses are the in-memory counterparts
of the wire protocol in :mod:`repro.api.manifest`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.proteus import ObfuscatedBucket, ReassemblyPlan

__all__ = [
    "ObfuscationStats",
    "ObfuscationResult",
    "EntryOptimization",
    "OptimizationReceipt",
    "bucket_key",
    "receipt_from_buckets",
]


def bucket_key(bucket: ObfuscatedBucket) -> str:
    """Stable identity of a bucket across the optimize round-trip.

    Hashes the entry-id/group layout (which the optimizer party must
    preserve) rather than graph contents (which it rewrites), so the
    owner can match a returned bucket to the plan it kept.  Entry ids
    embed a per-obfuscation nonce (see :meth:`ModelOwner.obfuscate`),
    so distinct obfuscations never share a key even when their
    geometry (``n_groups``, ``k``) coincides.
    """
    layout = {
        "n_groups": bucket.n_groups,
        "k": bucket.k,
        "entries": sorted((e.entry_id, e.group) for e in bucket),
    }
    blob = json.dumps(layout, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ObfuscationStats:
    """Owner-side summary of one obfuscation run."""

    model_name: str
    n_groups: int
    k: int
    n_entries: int
    total_nodes: int
    search_space: float
    sentinel_strategy: str
    partitioner: str


@dataclass
class ObfuscationResult:
    """Everything the owner gets back from :meth:`ModelOwner.obfuscate`.

    ``bucket`` is safe to ship; ``plan`` is the secret that must never
    cross the trust boundary; ``stats`` summarizes the run.
    """

    bucket: ObfuscatedBucket
    plan: ReassemblyPlan
    stats: ObfuscationStats

    @property
    def key(self) -> str:
        """Identity used to pair the returned bucket with this plan."""
        return bucket_key(self.bucket)


@dataclass(frozen=True)
class EntryOptimization:
    """Per-entry before/after accounting from the optimizer party."""

    nodes_before: int
    nodes_after: int


@dataclass
class OptimizationReceipt:
    """What :meth:`OptimizerService.optimize` hands back to the owner."""

    bucket: ObfuscatedBucket
    optimizer: str
    workers: int = 1
    entries: Dict[str, EntryOptimization] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return bucket_key(self.bucket)

    @property
    def nodes_before(self) -> int:
        return sum(e.nodes_before for e in self.entries.values())

    @property
    def nodes_after(self) -> int:
        return sum(e.nodes_after for e in self.entries.values())

    def summary(self) -> str:
        return (
            f"{len(self.entries)} entries optimized by {self.optimizer} "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}): "
            f"{self.nodes_before} -> {self.nodes_after} total ops"
        )


def receipt_from_buckets(
    before: ObfuscatedBucket,
    after: ObfuscatedBucket,
    optimizer: str = "unknown",
    workers: int = 1,
) -> OptimizationReceipt:
    """Reconstruct a receipt from the buckets on both sides of a transport.

    Transports that move only manifests (the spool directory) lose the
    in-memory receipt; given the submitted and returned buckets the
    per-entry accounting is recomputable, which is all
    :meth:`ModelOwner.reassemble` and the CLI summaries need.
    """
    entries = {
        e.entry_id: EntryOptimization(
            nodes_before=e.graph.num_nodes,
            nodes_after=after.get(e.entry_id).graph.num_nodes,
        )
        for e in before
    }
    return OptimizationReceipt(
        bucket=after, optimizer=optimizer, workers=workers, entries=entries
    )
