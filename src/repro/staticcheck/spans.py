"""Span-lifecycle analysis: every opened tracing span must be closed.

``span-closed``
    A span opened via ``tracer.span(...)`` or ``tracer.start_trace(...)``
    only records itself when it is *exited* — ``_LiveSpan.__exit__`` is
    where the duration is measured and the span appended to the ring
    buffer.  A span that is opened and never closed is therefore not a
    leak so much as a silent lie: the trace tree simply loses the tier,
    attribution under-reports the hot path, and the ``trace-smoke`` CI
    gate (every request one *complete* tree) starts flaking in ways no
    unit test reproduces.  The rule enforces the two shapes that cannot
    lose the exit:

    * ``with tracer.span(...):`` / ``with tracer.start_trace(...) as s:``
      — the context manager pairs enter and exit structurally;
    * bind-then-finally — ``s = tracer.span(...)`` is accepted when some
      ``finally`` block in the same scope calls ``s.__exit__(...)`` (or
      ``s.close()``), the manual pattern for spans whose lifetime does
      not nest lexically.

    Everything else is flagged: a bare ``tracer.span(...)`` expression
    statement discards the span un-entered, and passing one inline as a
    call argument hands it to code that has no obligation to close it.

Heuristics, kept deliberately narrow so ``span``/``start_trace`` methods
on unrelated objects never trip the rule:

* the receiver must *look like a tracer* — the literal chain
  ``get_tracer().span(...)``, a local name bound from ``get_tracer()``
  in the same scope, or any name/attribute containing ``tracer``
  (``tracer``, ``self._tracer``) — the repo-wide convention;
* ``return tracer.span(...)`` is ownership transfer (a factory helper);
  the rule applies at the caller's use site, not the factory;
* nested ``def``/``lambda`` bodies are separate scopes: a closure's
  spans are checked against the closure's own ``finally`` blocks.

A deliberate violation carries ``# staticcheck: ignore[span-closed]``
with a one-line note on who closes the span.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from .checkers import Check, FileContext, register_check
from .findings import Finding

__all__ = ["SpanClosed"]

#: tracer methods whose return value is an open (un-entered) span.
_OPENERS = {"span", "start_trace"}

#: methods that count as closing a bound span in a ``finally`` block.
_CLOSERS = {"__exit__", "close"}


def _is_get_tracer_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "get_tracer"
    return isinstance(func, ast.Attribute) and func.attr == "get_tracer"


def _receiver_is_tracer(node: ast.AST, tracer_names: Set[str]) -> bool:
    """Does ``node`` (the ``X`` of ``X.span(...)``) look like a tracer?"""
    if _is_get_tracer_call(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in tracer_names or "tracer" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "tracer" in node.attr.lower()
    return False


def _scope_nodes(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk one function scope, not descending into nested scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a separate scope, checked on its own
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.AST) -> Iterator[Tuple[str, List[ast.stmt]]]:
    """Every (name, body) scope of a module: the module itself plus
    each (possibly nested) function.  Class bodies are not scopes of
    their own here; their methods are."""
    if isinstance(tree, ast.Module):
        yield "<module>", tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node.body


@register_check
class SpanClosed(Check):
    name = "span-closed"
    description = (
        "spans from tracer.span()/start_trace() must be opened via "
        "'with', or bound to a name that a finally block closes — an "
        "unclosed span never records and silently breaks trace trees"
    )

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for scope_name, body in _scopes(ctx.tree):
            yield from self._check_scope(ctx, scope_name, body)

    def _check_scope(
        self, ctx: FileContext, scope_name: str, body: List[ast.stmt]
    ) -> Iterable[Finding]:
        tracer_names: Set[str] = set()
        for node in _scope_nodes(body):
            if isinstance(node, ast.Assign) and _is_get_tracer_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracer_names.add(target.id)

        with_ctx: Set[int] = set()  # id() of calls used as a with item
        returned: Set[int] = set()  # id() of calls handed to the caller
        bound: Dict[int, str] = {}  # id(call) -> bound name
        closed_names: Set[str] = set()  # names __exit__/close'd in a finally
        openers: List[ast.Call] = []

        for node in _scope_nodes(body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_ctx.add(id(item.context_expr))
            elif isinstance(node, ast.Return) and node.value is not None:
                returned.add(id(node.value))
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name):
                    bound[id(node.value)] = node.targets[0].id
            elif isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in _CLOSERS
                            and isinstance(sub.func.value, ast.Name)
                        ):
                            closed_names.add(sub.func.value.id)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _OPENERS
                and _receiver_is_tracer(node.func.value, tracer_names)
            ):
                openers.append(node)

        for ordinal, call in enumerate(
            sorted(openers, key=lambda c: (c.lineno, c.col_offset))
        ):
            if id(call) in with_ctx or id(call) in returned:
                continue
            name = bound.get(id(call))
            if name is not None and name in closed_names:
                continue
            opener = call.func.attr  # type: ignore[union-attr]
            if name is None:
                how = (
                    f"the span from '{opener}(...)' is never entered or "
                    f"closed — it will not record"
                )
            else:
                how = (
                    f"'{name}' holds an open span from '{opener}(...)' "
                    f"but no finally block calls '{name}.__exit__(...)'"
                )
            yield self.finding(
                ctx,
                call,
                key=f"{scope_name}:{opener}:{ordinal}",
                message=(
                    f"{how}; open spans with 'with', or close the bound "
                    f"name in a finally block (or mark the hand-off with "
                    f"'# staticcheck: ignore[span-closed]')"
                ),
            )
