"""The invariant-check registry: ``@register_check`` and the pass base.

The analyzer suite is extensible the same way optimizers, partitioners
and bench scenarios are: a check registers under a kebab-case rule name
in a :class:`repro.api.registry.Registry` and every consumer (the
``repro check --select`` flag, the report's rule table, the README
docs) resolves through that one table, so a new repo invariant becomes
a new rule without touching the runner::

    from repro.staticcheck import register_check, Check, Finding

    @register_check
    class NoSleepInHandlers(Check):
        name = "no-sleep-in-handlers"
        description = "request handlers must not call time.sleep()"

        def run(self, ctx):
            for node in ast.walk(ctx.tree):
                ...
                yield self.finding(ctx, node, key=..., message=...)

Checks come in two scopes:

* ``scope = "file"`` — ``run(ctx)`` is called once per parsed file;
* ``scope = "project"`` — ``run_project(ctxs)`` is called once with
  every parsed file, for rules that need cross-file state (the
  lock-acquisition-order graph, wire-contract totality).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Type, TypeVar

from ..api.registry import Registry
from .findings import Finding

__all__ = ["CHECKS", "register_check", "Check", "FileContext", "parse_file"]

C = TypeVar("C", bound="Check")

#: rule-name-addressable table of every analyzer pass.
CHECKS = Registry("static check")


def register_check(check_cls: Type[C]) -> Type[C]:
    """Register a :class:`Check` subclass under its ``name`` attribute."""
    return CHECKS.register(check_cls.name)(check_cls)


@dataclass
class FileContext:
    """One parsed source file handed to every selected check."""

    path: str  #: absolute filesystem path
    relpath: str  #: repo-relative posix path (finding identity)
    tree: ast.AST
    source: str

    @classmethod
    def from_source(cls, path: str, relpath: str, source: str) -> "FileContext":
        return cls(path=path, relpath=relpath, tree=ast.parse(source), source=source)


def parse_file(path: str, relpath: str) -> FileContext:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return FileContext.from_source(path, relpath, source)


class Check:
    """Base class for one analyzer pass (one rule name)."""

    name: str = ""
    description: str = ""
    scope: str = "file"  # "file" | "project"
    severity: str = "error"

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def run_project(self, ctxs: List[FileContext]) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        *,
        key: str,
        message: str,
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            key=key,
            severity=self.severity,
        )
