"""Findings, suppressions, baselines, and the ``STATICCHECK.json`` schema.

A finding is one rule violation at one source location, carried as a
dataclass everywhere in-process and serialized into a single
schema-versioned JSON document (``STATICCHECK.json``) for CI artifacts
and trend lines — the same load/validate/save shape as
``BENCH_<suite>.json`` (:mod:`repro.bench.runner`).

Two escape hatches keep the gate honest without blocking real work:

* **inline suppression** — ``# staticcheck: ignore[rule]`` (or
  ``ignore[rule-a,rule-b]``) on the flagged line, or on a standalone
  comment line directly above it, acknowledges a deliberate violation
  at that site.  The convention in this repo is to pair it with a
  one-line constraint comment saying *why* the unsynchronized access
  (or whatever the rule guards) is safe;
* **committed baseline** — a JSON file of finding *fingerprints*
  (stable across line-number drift) grandfathers pre-existing findings
  so the gate only fails on **new** ones.

``exit nonzero on new findings`` is the CLI contract: a finding that is
neither suppressed nor baselined fails ``repro check``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

__all__ = [
    "SCHEMA_VERSION",
    "Finding",
    "Suppressions",
    "load_baseline",
    "save_baseline",
    "baseline_fingerprints",
    "build_report",
    "validate_report",
    "save_report",
    "load_report",
]

#: schema of the STATICCHECK.json document; bump on incompatible change.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``key`` is the finding's *stable identity* within ``(rule, path)`` —
    e.g. ``"Coalescer._items:stats"`` for a lock-discipline finding —
    chosen by each check so the fingerprint survives unrelated edits
    moving the line around.
    """

    rule: str
    path: str  #: repo-relative posix path of the flagged file
    line: int
    col: int
    message: str
    key: str
    severity: str = "error"
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used for baseline matching."""
        blob = f"{self.rule}:{self.path}:{self.key}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "key": self.key,
            "severity": self.severity,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Finding":
        return cls(
            rule=str(d["rule"]),
            path=str(d["path"]),
            line=int(d["line"]),
            col=int(d.get("col", 0)),
            message=str(d["message"]),
            key=str(d["key"]),
            severity=str(d.get("severity", "error")),
            suppressed=bool(d.get("suppressed", False)),
            baselined=bool(d.get("baselined", False)),
        )

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


# -- inline suppressions ------------------------------------------------------

_SUPPRESS_RE = re.compile(r"#\s*staticcheck:\s*ignore\[([A-Za-z0-9_\-, *]+)\]")


class Suppressions:
    """Per-file map of ``# staticcheck: ignore[rule]`` comments.

    A suppression applies to findings on its own line, or — when the
    comment is the only thing on its line — to the first code line below
    the comment *block* it belongs to (so a multi-line constraint
    comment carrying the tag anywhere in it covers the statement under
    it).
    """

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        lines = source.splitlines()
        for lineno, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            self._by_line.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                # standalone comment: cover every following comment line
                # of the same block, then the first code line below it.
                cursor = lineno  # 0-based index of the next line
                while cursor < len(lines) and lines[cursor].lstrip().startswith("#"):
                    self._by_line.setdefault(cursor + 1, set()).update(rules)
                    cursor += 1
                self._by_line.setdefault(cursor + 1, set()).update(rules)

    def covers(self, line: int, rule: str) -> bool:
        rules = self._by_line.get(line)
        return bool(rules) and (rule in rules or "*" in rules)

    def __len__(self) -> int:
        return len(self._by_line)


# -- baseline -----------------------------------------------------------------


def baseline_fingerprints(findings: Iterable[Finding]) -> Dict[str, Any]:
    """Baseline document grandfathering ``findings`` (suppressed ones
    need no baseline entry and are skipped)."""
    entries = {}
    for f in findings:
        if f.suppressed:
            continue
        entries[f.fingerprint] = {"rule": f.rule, "path": f.path, "key": f.key}
    return {"schema_version": SCHEMA_VERSION, "fingerprints": entries}


def save_baseline(document: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_baseline(path: str) -> Set[str]:
    """The set of grandfathered fingerprints in a baseline file."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if not isinstance(document, dict):
        raise ValueError("staticcheck baseline must be a JSON object")
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema_version "
            f"{document.get('schema_version')!r}; this build reads "
            f"version {SCHEMA_VERSION}"
        )
    fingerprints = document.get("fingerprints")
    if not isinstance(fingerprints, dict):
        raise ValueError("staticcheck baseline missing 'fingerprints' object")
    return set(fingerprints)


# -- the STATICCHECK.json document --------------------------------------------


def _git_sha() -> str:
    from ..bench.runner import git_sha

    return git_sha()


def build_report(
    findings: List[Finding],
    *,
    roots: List[str],
    files_scanned: int,
    selected_rules: List[str],
    rule_descriptions: Dict[str, str],
) -> Dict[str, Any]:
    """Assemble the schema-versioned STATICCHECK.json document."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.key))
    new = [f for f in ordered if not f.suppressed and not f.baselined]
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.staticcheck",
        "git_sha": _git_sha(),
        "created_unix": int(time.time()),
        "roots": [p.replace(os.sep, "/") for p in roots],
        "selected_rules": sorted(selected_rules),
        "rules": {name: rule_descriptions.get(name, "") for name in selected_rules},
        "counts": {
            "files": files_scanned,
            "total": len(ordered),
            "suppressed": sum(1 for f in ordered if f.suppressed),
            "baselined": sum(1 for f in ordered if f.baselined),
            "new": len(new),
        },
        "findings": [f.to_dict() for f in ordered],
    }


def validate_report(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed document."""
    if not isinstance(report, dict):
        raise ValueError("staticcheck report must be a JSON object")
    if report.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported staticcheck schema_version "
            f"{report.get('schema_version')!r}; this build reads "
            f"version {SCHEMA_VERSION}"
        )
    for required in ("tool", "git_sha", "roots", "counts", "findings"):
        if required not in report:
            raise ValueError(f"staticcheck report missing key {required!r}")
    counts = report["counts"]
    if not isinstance(counts, dict):
        raise ValueError("staticcheck report 'counts' must be an object")
    for required in ("files", "total", "suppressed", "baselined", "new"):
        if not isinstance(counts.get(required), int):
            raise ValueError(f"staticcheck report counts missing {required!r}")
    if not isinstance(report["findings"], list):
        raise ValueError("staticcheck report 'findings' must be a list")
    for entry in report["findings"]:
        Finding.from_dict(entry)  # raises on malformed entries


def save_report(report: Dict[str, Any], path: str) -> None:
    """Validate and write ``report`` as pretty-printed JSON."""
    validate_report(report)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a STATICCHECK.json document."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    validate_report(report)
    return report
