"""repro.staticcheck — AST-based concurrency & protocol-invariant analyzer.

The serving stack is multi-threaded and multi-process; its hardest bugs
(lost wakeups, unguarded counters, lock-order inversions, transports
inventing error codes) are exactly the ones review misses and tests
catch late.  This package codifies the repo's concurrency and
wire-protocol invariants as machine-checked rules over the stdlib
``ast``, gated in CI by ``repro check``:

========================  ====================================================
rule                      what it enforces
========================  ====================================================
``lock-discipline``       fields written under a lock are never accessed
                          outside it; no unsynchronized multi-writer fields
``cond-wait-recheck``     timed Condition waits re-check the shutdown flag
``lock-order``            the cross-class lock-acquisition graph is acyclic
``wire-codes``            every constructed/branched error code is in
                          wire.py's closed ``ERR_*`` set
``wire-totality``         ``HTTP_STATUS`` and ``MUX_FRAME_EVENT`` are total
                          over that set
``no-builtin-hash``       no ``hash()`` in placement/canonical paths
``no-wallclock``          no wall clock / unseeded RNG in deterministic code
``atomic-write``          cache/spool/journal writes are temp+rename atomic
========================  ====================================================

Escape hatches: ``# staticcheck: ignore[rule]`` inline (paired with a
one-line constraint comment), or a committed fingerprint baseline for
grandfathered findings.  New rules plug in via
:func:`register_check` — the same registry idiom as optimizers and
bench scenarios.
"""

from .checkers import CHECKS, Check, FileContext, register_check
from .findings import (
    SCHEMA_VERSION,
    Finding,
    Suppressions,
    baseline_fingerprints,
    build_report,
    load_baseline,
    load_report,
    save_baseline,
    save_report,
    validate_report,
)
from .runner import (
    DEFAULT_ROOTS,
    analyze_paths,
    available_rules,
    iter_python_files,
    rule_descriptions,
    run_check,
)

__all__ = [
    "CHECKS",
    "Check",
    "DEFAULT_ROOTS",
    "FileContext",
    "Finding",
    "SCHEMA_VERSION",
    "Suppressions",
    "analyze_paths",
    "available_rules",
    "baseline_fingerprints",
    "build_report",
    "iter_python_files",
    "load_baseline",
    "load_report",
    "register_check",
    "rule_descriptions",
    "run_check",
    "save_baseline",
    "save_report",
    "validate_report",
]
