"""Registry-addressable lint passes for documented-but-unenforced rules.

Each of these rules existed before this module — as a comment, a README
warning, or a code-review convention born from a real bug.  Comments
don't gate merges; these passes do:

``no-builtin-hash``
    Builtin ``hash()`` is seeded per-process (``PYTHONHASHSEED``), so
    any value derived from it disagrees across workers and restarts.
    Ring placement, canonical forms, and cache keys must use the
    repo's sha256 helpers (the PR 7 rule that lived in a
    ``cluster/ring.py`` comment).  ``__hash__`` implementations are
    exempt — that is the one place builtin hashing semantics belong.

``no-wallclock``
    Deterministic and seeded code paths (canonical forms, workload
    generation, ring placement, sentinel generation, partitioning)
    must not read the wall clock (``time.time()``,
    ``datetime.now()``/``utcnow()``/``today()``) or the process-global
    unseeded ``random`` module: byte-reproducibility is a CI-gated
    contract (same spec + seed => identical bytes).  Use
    ``time.monotonic()``/``perf_counter()`` for durations and a seeded
    ``random.Random(seed)`` instance for randomness.

``atomic-write``
    Cache stores, spool directories, and journals are read concurrently
    by other threads and *processes*; a plain ``open(path, "w")`` write
    exposes torn half-files to every reader.  Writes in those modules
    must go through the temp-file + ``os.replace`` idiom (the
    ``atomic_write_json`` helper, or a local mkstemp/replace pair in
    the same function).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set, Tuple

from .checkers import Check, FileContext, register_check
from .findings import Finding

__all__ = ["NoBuiltinHash", "NoWallclock", "AtomicWrite"]

#: path fragments of deterministic / seeded code (the no-wallclock scope).
DETERMINISTIC_PATHS: Tuple[str, ...] = (
    "serving/canonical.py",
    "cluster/ring.py",
    "loadgen/workload.py",
    "loadgen/histogram.py",
    "core/partition.py",
    "sentinel/",
    "ir/",
)

#: path fragments of concurrently-read persistent state (atomic-write scope).
ATOMIC_WRITE_PATHS: Tuple[str, ...] = (
    "serving/cache.py",
    "serving/spool.py",
    "loadgen/journal.py",
    "cluster/hiercache.py",
)

#: functions that make a write in ATOMIC_WRITE_PATHS atomic when called
#: in the same enclosing function as the ``open(..., "w")``.
_ATOMIC_MARKERS = {"replace", "rename"}


def _path_in(relpath: str, fragments: Tuple[str, ...]) -> bool:
    return any(fragment in relpath for fragment in fragments)


def _enclosing_functions(tree: ast.AST) -> "dict[int, ast.AST]":
    """Map id(node) -> nearest enclosing function node (or the module)."""
    owner: "dict[int, ast.AST]" = {}

    def assign(scope: ast.AST, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else scope
            )
            owner[id(child)] = child_scope
            assign(child_scope, child)

    owner[id(tree)] = tree
    assign(tree, tree)
    return owner


@register_check
class NoBuiltinHash(Check):
    name = "no-builtin-hash"
    description = (
        "builtin hash() is PYTHONHASHSEED-randomized and never stable across "
        "processes; placement/canonical/cache keys must use sha256 helpers "
        "(__hash__ implementations are exempt)"
    )

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        owner = _enclosing_functions(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                continue
            scope = owner.get(id(node))
            if (
                isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
                and scope.name == "__hash__"
            ):
                continue
            scope_name = getattr(scope, "name", "<module>")
            yield self.finding(
                ctx,
                node,
                key=f"hash:{scope_name}",
                message=(
                    f"builtin hash() in {scope_name}() is randomized per "
                    f"process (PYTHONHASHSEED) — values derived from it "
                    f"disagree across workers and restarts; use the sha256 "
                    f"helpers (e.g. cluster.ring's placement hash or "
                    f"serving.canonical's digests) instead"
                ),
            )


@register_check
class NoWallclock(Check):
    name = "no-wallclock"
    description = (
        "deterministic/seeded code paths must not read the wall clock "
        "(time.time, datetime.now/utcnow/today) or the unseeded global "
        "random module; use monotonic clocks and seeded random.Random"
    )

    _WALLCLOCK_CALLS = {
        ("time", "time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
    }
    _SEEDED_RANDOM_OK = {"Random", "SystemRandom"}

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        if not _path_in(ctx.relpath, DETERMINISTIC_PATHS):
            return
        owner = _enclosing_functions(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            if not isinstance(base, ast.Name):
                continue
            scope_name = getattr(owner.get(id(node)), "name", "<module>")
            if (base.id, func.attr) in self._WALLCLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    key=f"wallclock:{base.id}.{func.attr}:{scope_name}",
                    message=(
                        f"{base.id}.{func.attr}() reads the wall clock inside "
                        f"a deterministic/seeded path ({scope_name}); use "
                        f"time.monotonic()/perf_counter() for durations, and "
                        f"keep timestamps out of reproducible artifacts"
                    ),
                )
            elif base.id == "random" and func.attr not in self._SEEDED_RANDOM_OK:
                yield self.finding(
                    ctx,
                    node,
                    key=f"unseeded:random.{func.attr}:{scope_name}",
                    message=(
                        f"random.{func.attr}() uses the process-global "
                        f"unseeded RNG inside a deterministic/seeded path "
                        f"({scope_name}); thread a seeded random.Random(seed) "
                        f"instance through instead"
                    ),
                )


@register_check
class AtomicWrite(Check):
    name = "atomic-write"
    description = (
        "file writes in cache/spool/journal modules must use the temp-file + "
        "os.replace idiom (atomic_write_json or a local mkstemp/replace pair); "
        "plain open(path, 'w') exposes torn files to concurrent readers"
    )

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        if not _path_in(ctx.relpath, ATOMIC_WRITE_PATHS):
            return
        owner = _enclosing_functions(ctx.tree)
        atomic_scopes = self._atomic_scopes(ctx.tree, owner)
        for node in ast.walk(ctx.tree):
            mode = self._write_open_mode(node)
            if mode is None:
                continue
            scope = owner.get(id(node))
            if id(scope) in atomic_scopes:
                continue
            scope_name = getattr(scope, "name", "<module>")
            yield self.finding(
                ctx,
                node,
                key=f"open:{scope_name}:{mode}",
                message=(
                    f"non-atomic write (open mode {mode!r}) in "
                    f"{scope_name}() of a concurrently-read store; write to "
                    f"a same-directory temp file and os.replace() it into "
                    f"place (see serving.spool.atomic_write_json)"
                ),
            )

    @staticmethod
    def _write_open_mode(node: ast.AST) -> Optional[str]:
        """The mode string when ``node`` is a writing open()/os.fdopen()."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        is_open = isinstance(func, ast.Name) and func.id == "open"
        is_fdopen = (
            isinstance(func, ast.Attribute)
            and func.attr == "fdopen"
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        )
        if not (is_open or is_fdopen):
            return None
        mode_node: Optional[ast.expr] = None
        if len(node.args) >= 2:
            mode_node = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode_node = kw.value
        if not (isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str)):
            return None  # default mode "r", or dynamic (out of scope)
        mode = mode_node.value
        return mode if any(flag in mode for flag in ("w", "a", "x", "+")) else None

    @staticmethod
    def _atomic_scopes(tree: ast.AST, owner: "dict[int, ast.AST]") -> Set[int]:
        """ids of function nodes that call os.replace/rename or an
        ``atomic*`` helper somewhere in their body."""
        scopes: Set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            marker = False
            if isinstance(func, ast.Attribute):
                if func.attr in _ATOMIC_MARKERS and isinstance(func.value, ast.Name):
                    marker = func.value.id == "os"
                else:
                    marker = func.attr.startswith("atomic")
            elif isinstance(func, ast.Name):
                marker = func.id.startswith("atomic")
            if marker:
                scope = owner.get(id(node))
                if scope is not None:
                    scopes.add(id(scope))
        return scopes
