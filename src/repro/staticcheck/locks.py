"""Lock-discipline analysis: guarded attributes, shutdown waits, lock order.

The serving stack is a pile of little monitors — classes owning one or
two ``threading.Lock``/``Condition`` objects and a handful of fields
the lock is supposed to guard.  The discipline is simple to state and
easy to erode in review: *if a field is ever written under a lock, every
thread-reachable access must hold that lock* (or carry an explicit
``# staticcheck: ignore[lock-discipline]`` with the one-line constraint
that makes the lock-free access safe).  This module infers that
discipline per class from the AST and flags erosions:

``lock-discipline``
    * **mixed access** — an instance attribute written under
      ``with self._lock:`` somewhere but read or written outside it in
      another thread-reachable method;
    * **unsynchronized multi-writer** — an attribute written from two
      or more methods of a lock-owning class with no lock held anywhere
      (the ``MuxServer.close()``/``start()`` shape from PR 8).

``cond-wait-recheck``
    A *timed* ``self._cond.wait(t)`` in a class whose ``close()``-style
    method sets a shutdown flag, where no enclosing ``if``/``while``
    test consults that flag: ``close()``'s ``notify_all`` can be spent
    waking the loop *before* it reaches the timed wait, and the thread
    then sleeps the window out (or forever, on respawned waits) holding
    pending work — the exact ``Coalescer.close()`` lost-wakeup from
    PR 8.

``lock-order``
    A cross-class lock-acquisition-order graph: acquiring ``B`` while
    holding ``A`` (lexically nested ``with``, or a call into a method
    that takes ``B`` — including through attributes whose class is
    inferred from ``self.x = ClassName(...)`` in ``__init__``) adds the
    edge ``A → B``.  A cycle means two threads can deadlock by
    acquiring the same locks in opposite orders.

Heuristics and conventions the model relies on:

* ``with self.X:`` on a bare instance attribute is treated as a lock
  acquisition even when ``X`` was assigned in a base class — inherited
  locks guard subclasses too;
* methods named ``*_locked`` run with their caller's lock held (the
  repo-wide convention); their accesses satisfy any guard;
* ``__init__``-like methods are single-threaded by construction and
  never produce findings;
* mutating calls (``self.items.append(...)``, ``self.memo.pop(...)``)
  and subscript stores count as writes, not reads;
* attributes holding internally synchronized objects
  (``threading.Event``, the ``queue`` classes) carry no discipline —
  wrapping a blocking ``queue.get()`` in the monitor lock would be a
  deadlock, not hygiene;
* nested ``def``/``lambda`` bodies are skipped: they execute on
  whatever thread calls them later, so the lexical lock context would
  be a lie in either direction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .checkers import Check, FileContext, register_check
from .findings import Finding

__all__ = [
    "ClassModel",
    "class_models",
    "LockDiscipline",
    "CondWaitRecheck",
    "LockOrder",
]

#: threading factories whose result makes an attribute a lock.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: factories whose result is *internally* synchronized: accesses through
#: these attributes are thread-safe by construction and carry no
#: lock-discipline obligations (taking a lock around a blocking
#: ``queue.get()`` would be a deadlock, not hygiene).
_SYNC_FACTORIES = {"Event", "Queue", "PriorityQueue", "LifoQueue", "SimpleQueue"}

#: method calls on an attribute that mutate the underlying container.
_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "put",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: single-threaded-by-construction methods: no findings, no guard inference.
_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__", "__del__"}

#: a method whose name contains one of these sets shutdown flags.
_CLOSE_HINTS = ("close", "stop", "shutdown", "drain")

#: sentinel lock name for ``*_locked`` methods (caller holds the lock).
_CALLER_HELD = "*"


@dataclass
class _Access:
    attr: str
    node: ast.AST
    write: bool
    locks: FrozenSet[str]
    method: str


@dataclass
class _Acquire:
    lock: str
    node: ast.AST
    held: FrozenSet[str]
    method: str


@dataclass
class _Call:
    receiver: Optional[str]  #: None for ``self.m()``, attr name for ``self.a.m()``
    method: str
    locks: FrozenSet[str]
    node: ast.AST
    caller: str


@dataclass
class _TimedWait:
    cond: str
    node: ast.AST
    guards: Tuple[ast.AST, ...]
    method: str


@dataclass
class ClassModel:
    """Everything the lock checks need to know about one class."""

    name: str
    node: ast.ClassDef
    relpath: str
    declared_locks: Dict[str, str] = field(default_factory=dict)  #: attr -> factory
    with_locks: Set[str] = field(default_factory=set)  #: attrs used as ``with self.X:``
    sync_attrs: Set[str] = field(default_factory=set)  #: internally synchronized
    attr_types: Dict[str, str] = field(default_factory=dict)  #: attr -> class name
    close_flags: Set[str] = field(default_factory=set)
    accesses: List[_Access] = field(default_factory=list)
    acquires: List[_Acquire] = field(default_factory=list)
    calls: List[_Call] = field(default_factory=list)
    timed_waits: List[_TimedWait] = field(default_factory=list)
    method_names: Set[str] = field(default_factory=set)

    @property
    def lock_attrs(self) -> Set[str]:
        return set(self.declared_locks) | self.with_locks

    def has_locks(self) -> bool:
        return bool(self.lock_attrs)

    def locks_acquired_by(self, method: str) -> Set[str]:
        return {a.lock for a in self.acquires if a.method == method}


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_factory(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        return isinstance(func.value, ast.Name) and func.value.id == "threading"
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _is_sync_factory(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SYNC_FACTORIES:
        return isinstance(func.value, ast.Name) and func.value.id in (
            "threading",
            "queue",
        )
    if isinstance(func, ast.Name):
        return func.id in _SYNC_FACTORIES
    return False


def _subtree_mentions_attr(node: ast.AST, attrs: Set[str]) -> bool:
    for sub in ast.walk(node):
        name = _is_self_attr(sub)
        if name is not None and name in attrs:
            return True
    return False


class _MethodWalker:
    """One pass over a method body tracking held locks and guard tests."""

    def __init__(self, model: ClassModel, method: str, caller_held: bool) -> None:
        self.model = model
        self.method = method
        self.base: Tuple[str, ...] = (_CALLER_HELD,) if caller_held else ()

    def walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt, self.base, ())

    def _visit(
        self, node: ast.AST, locks: Tuple[str, ...], guards: Tuple[ast.AST, ...]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # runs on another thread, later: lexical locks don't apply
        if isinstance(node, ast.ClassDef):
            return  # modelled separately
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locks
            for item in node.items:
                attr = _is_self_attr(item.context_expr)
                if attr is not None:
                    self.model.with_locks.add(attr)
                    self.model.acquires.append(
                        _Acquire(attr, item.context_expr, frozenset(inner), self.method)
                    )
                    inner = inner + (attr,)
                else:
                    self._visit(item.context_expr, locks, guards)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, locks, guards)
            for stmt in node.body:
                self._visit(stmt, inner, guards)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._visit(node.test, locks, guards)
            inner_guards = guards + (node.test,)
            for stmt in node.body:
                self._visit(stmt, locks, inner_guards)
            for stmt in node.orelse:
                self._visit(stmt, locks, inner_guards)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, locks, guards)
            return
        if isinstance(node, ast.Subscript):
            attr = _is_self_attr(node.value)
            if attr is not None:
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                self._record(attr, node.value, write, locks)
                self._visit(node.slice, locks, guards)
                return
        attr = _is_self_attr(node)
        if attr is not None:
            write = isinstance(node.ctx, (ast.Store, ast.Del))
            self._record(attr, node, write, locks)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks, guards)

    def _visit_call(
        self, node: ast.Call, locks: Tuple[str, ...], guards: Tuple[ast.AST, ...]
    ) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_attr = _is_self_attr(func.value)
            if receiver_attr is not None:
                # self.X.m(...): a call through an attribute
                if func.attr == "acquire":
                    self.model.acquires.append(
                        _Acquire(receiver_attr, node, frozenset(locks), self.method)
                    )
                elif func.attr == "wait" and (
                    node.args or any(k.arg == "timeout" for k in node.keywords)
                ):
                    self.model.timed_waits.append(
                        _TimedWait(receiver_attr, node, guards, self.method)
                    )
                write = func.attr in _MUTATOR_METHODS
                self._record(receiver_attr, func.value, write, locks)
                self.model.calls.append(
                    _Call(receiver_attr, func.attr, frozenset(locks), node, self.method)
                )
            elif isinstance(func.value, ast.Name) and func.value.id == "self":
                # self.m(...): a call to a sibling method
                self.model.calls.append(
                    _Call(None, func.attr, frozenset(locks), node, self.method)
                )
            else:
                self._visit(func.value, locks, guards)
        else:
            self._visit(func, locks, guards)
        for arg in node.args:
            self._visit(arg, locks, guards)
        for kw in node.keywords:
            self._visit(kw.value, locks, guards)

    def _record(
        self, attr: str, node: ast.AST, write: bool, locks: Tuple[str, ...]
    ) -> None:
        self.model.accesses.append(
            _Access(attr, node, write, frozenset(locks), self.method)
        )


def _build_model(cls: ast.ClassDef, relpath: str) -> ClassModel:
    model = ClassModel(name=cls.name, node=cls, relpath=relpath)
    methods = [
        stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # first pass: declared locks, attribute classes, close flags
    for method in methods:
        model.method_names.add(method.name)
        is_closer = any(hint in method.name for hint in _CLOSE_HINTS)
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            attr = _is_self_attr(target)
            if attr is None:
                continue
            if _is_lock_factory(value):
                factory = (
                    value.func.attr
                    if isinstance(value.func, ast.Attribute)
                    else value.func.id  # type: ignore[union-attr]
                )
                model.declared_locks[attr] = factory
            elif _is_sync_factory(value):
                model.sync_attrs.add(attr)
            elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                model.attr_types[attr] = value.func.id
            if (
                is_closer
                and isinstance(value, ast.Constant)
                and value.value is True
            ):
                model.close_flags.add(attr)
    # second pass: accesses, acquisitions, calls, waits per method
    for method in methods:
        if method.name in _EXEMPT_METHODS:
            continue  # single-threaded construction phase: nothing to check
        walker = _MethodWalker(
            model, method.name, caller_held=method.name.endswith("_locked")
        )
        walker.walk(method.body)
    return model


def class_models(ctx: FileContext) -> List[ClassModel]:
    """Every class model of ``ctx``, built once and cached on the context."""
    cached = getattr(ctx, "_staticcheck_lock_models", None)
    if cached is not None:
        return cached
    models = [
        _build_model(node, ctx.relpath)
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.ClassDef)
    ]
    ctx._staticcheck_lock_models = models  # type: ignore[attr-defined]
    return models


# -- the checks ---------------------------------------------------------------


@register_check
class LockDiscipline(Check):
    name = "lock-discipline"
    description = (
        "instance attributes written under a lock must not be accessed "
        "outside it in thread-reachable methods; lock-owning classes must "
        "not write the same attribute from several methods with no lock"
    )

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for model in class_models(ctx):
            if not model.has_locks():
                continue
            yield from self._mixed_access(ctx, model)
            yield from self._multi_writer(ctx, model)

    def _mixed_access(self, ctx: FileContext, model: ClassModel) -> Iterable[Finding]:
        lock_attrs = model.lock_attrs
        by_attr: Dict[str, List[_Access]] = {}
        for access in model.accesses:
            if access.attr not in lock_attrs and access.attr not in model.sync_attrs:
                by_attr.setdefault(access.attr, []).append(access)
        for attr, accesses in sorted(by_attr.items()):
            guards = set()
            for access in accesses:
                if access.write:
                    guards.update(access.locks - {_CALLER_HELD})
            if not guards:
                continue
            flagged_methods: Set[str] = set()
            for access in accesses:
                if _CALLER_HELD in access.locks or access.locks & guards:
                    continue
                if access.method in flagged_methods:
                    continue
                flagged_methods.add(access.method)
                kind = "written" if access.write else "read"
                yield self.finding(
                    ctx,
                    access.node,
                    key=f"{model.name}.{attr}:{access.method}",
                    message=(
                        f"'{model.name}.{attr}' is written under "
                        f"{self._lock_names(guards)} but {kind} without it in "
                        f"{access.method}(); hold the lock, or mark a "
                        f"deliberate lock-free access with "
                        f"'# staticcheck: ignore[lock-discipline]' and a "
                        f"one-line constraint comment"
                    ),
                )

    def _multi_writer(self, ctx: FileContext, model: ClassModel) -> Iterable[Finding]:
        lock_attrs = model.lock_attrs
        writers: Dict[str, Dict[str, _Access]] = {}
        ever_locked: Set[str] = set()
        for access in model.accesses:
            if access.attr in lock_attrs or access.attr in model.sync_attrs:
                continue
            if not access.write:
                continue
            if access.locks:
                ever_locked.add(access.attr)
            else:
                writers.setdefault(access.attr, {}).setdefault(access.method, access)
        for attr, by_method in sorted(writers.items()):
            if attr in ever_locked or len(by_method) < 2:
                continue
            first = min(by_method.values(), key=lambda a: getattr(a.node, "lineno", 0))
            methods = ", ".join(sorted(by_method))
            yield self.finding(
                ctx,
                first.node,
                key=f"{model.name}.{attr}:multi-writer",
                message=(
                    f"'{model.name}.{attr}' is written from several methods "
                    f"({methods}) with no lock held, in a class that owns "
                    f"{self._lock_names(model.lock_attrs)} — concurrent "
                    f"callers race on it (the MuxServer close()/start() "
                    f"shape); serialize the writes or mark the constraint "
                    f"with '# staticcheck: ignore[lock-discipline]'"
                ),
            )

    @staticmethod
    def _lock_names(locks: Set[str]) -> str:
        return " / ".join(f"'self.{name}'" for name in sorted(locks))


@register_check
class CondWaitRecheck(Check):
    name = "cond-wait-recheck"
    description = (
        "a timed Condition.wait() in a class with a shutdown flag must sit "
        "under an if/while test that re-checks the flag, or close()'s "
        "notification is spent before the wait and shutdown loses its wakeup"
    )

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for model in class_models(ctx):
            if not model.close_flags:
                continue
            conditions = {
                attr
                for attr, factory in model.declared_locks.items()
                if factory == "Condition"
            } | model.with_locks
            for wait in model.timed_waits:
                if wait.cond not in conditions:
                    continue
                if any(
                    _subtree_mentions_attr(guard, model.close_flags)
                    for guard in wait.guards
                ):
                    continue
                flags = ", ".join(f"self.{f}" for f in sorted(model.close_flags))
                yield self.finding(
                    ctx,
                    wait.node,
                    key=f"{model.name}.{wait.cond}:timed-wait:{wait.method}",
                    message=(
                        f"timed 'self.{wait.cond}.wait(...)' in "
                        f"{model.name}.{wait.method}() is not guarded by a "
                        f"test of the shutdown flag ({flags}): a close() "
                        f"racing this loop spends its notify before the wait "
                        f"and the thread sleeps through shutdown (the "
                        f"Coalescer.close() lost-wakeup); re-check the flag "
                        f"in the enclosing if/while"
                    ),
                )


@register_check
class LockOrder(Check):
    name = "lock-order"
    description = (
        "the cross-class lock-acquisition-order graph must be acyclic: "
        "taking B while holding A and A while holding B deadlocks two "
        "threads acquiring in opposite orders"
    )
    scope = "project"

    def run_project(self, ctxs: List[FileContext]) -> Iterable[Finding]:
        models: Dict[str, ClassModel] = {}
        for ctx in ctxs:
            for model in class_models(ctx):
                models.setdefault(model.name, model)
        ctx_by_path = {ctx.relpath: ctx for ctx in ctxs}
        # edges: (holder node) -> (acquired node), with one witness site
        edges: Dict[Tuple[str, str], Tuple[str, str, ast.AST, str]] = {}

        def add_edge(src: str, dst: str, relpath: str, node: ast.AST) -> None:
            if src != dst:
                edges.setdefault((src, dst), (src, dst, node, relpath))

        for model in models.values():
            # lexically nested acquisitions
            for acquire in model.acquires:
                dst = f"{model.name}.{acquire.lock}"
                for held in acquire.held:
                    if held == _CALLER_HELD:
                        continue
                    add_edge(
                        f"{model.name}.{held}", dst, model.relpath, acquire.node
                    )
            # calls made while holding a lock, into lock-taking methods
            for call in model.calls:
                if not call.locks or call.locks == {_CALLER_HELD}:
                    continue
                if call.receiver is None:
                    target_model: Optional[ClassModel] = models.get(model.name)
                else:
                    target_cls = model.attr_types.get(call.receiver)
                    target_model = models.get(target_cls) if target_cls else None
                if target_model is None:
                    continue
                for lock in target_model.locks_acquired_by(call.method):
                    dst = f"{target_model.name}.{lock}"
                    for held in call.locks:
                        if held == _CALLER_HELD:
                            continue
                        add_edge(
                            f"{model.name}.{held}", dst, model.relpath, call.node
                        )
        yield from self._cycles(edges, ctx_by_path)

    def _cycles(
        self,
        edges: Dict[Tuple[str, str], Tuple[str, str, ast.AST, str]],
        ctx_by_path: Dict[str, FileContext],
    ) -> Iterable[Finding]:
        graph: Dict[str, Set[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        for component in _tarjan_sccs(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            witness_edges = [
                edges[(src, dst)]
                for (src, dst) in sorted(edges)
                if src in component and dst in component
            ]
            sites = "; ".join(
                f"{src} -> {dst} at {relpath}:{getattr(node, 'lineno', '?')}"
                for src, dst, node, relpath in witness_edges
            )
            src, dst, node, relpath = witness_edges[0]
            ctx = ctx_by_path.get(relpath)
            if ctx is None:  # witness in an unscanned file; anchor at first ctx
                ctx = next(iter(ctx_by_path.values()))
            yield self.finding(
                ctx,
                node,
                key="|".join(members),
                message=(
                    f"potential lock-order inversion among "
                    f"{', '.join(members)}: acquisition edges form a cycle "
                    f"({sites}); pick one global order and acquire in it "
                    f"everywhere"
                ),
            )


def _tarjan_sccs(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Strongly connected components, iteratively (no recursion limit)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, Iterable[str]]] = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs
