"""Drive the analyzer suite over a source tree: ``repro check``.

The runner walks the requested roots, parses every ``*.py`` once,
applies the selected checks (file-scope per file, project-scope once
with every parsed file), then post-processes raw findings through the
two escape hatches — inline ``# staticcheck: ignore[rule]``
suppressions and the committed fingerprint baseline — and assembles the
schema-versioned ``STATICCHECK.json`` document.

A file that does not parse is itself a finding (rule ``parse-error``)
rather than a crash: the gate must fail loudly on a broken tree, not
skip it.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .checkers import CHECKS, Check, FileContext, parse_file
from .findings import (
    Finding,
    Suppressions,
    build_report,
    load_baseline,
)

# importing the rule modules registers every built-in check
from . import invariants as _invariants  # noqa: F401
from . import locks as _locks  # noqa: F401
from . import spans as _spans  # noqa: F401
from . import wire_contract as _wire_contract  # noqa: F401

__all__ = [
    "DEFAULT_ROOTS",
    "available_rules",
    "rule_descriptions",
    "iter_python_files",
    "analyze_paths",
    "run_check",
]

#: scanned when the CLI gets no explicit roots.
DEFAULT_ROOTS = ("src/repro",)

#: directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def available_rules() -> List[str]:
    """Every registered rule name, sorted."""
    return CHECKS.names()


def rule_descriptions() -> Dict[str, str]:
    return {name: CHECKS.resolve(name).description for name in CHECKS.names()}


def iter_python_files(roots: Sequence[str]) -> Iterable[str]:
    for root in roots:
        if os.path.isfile(root):
            if root.endswith(".py"):
                yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _relpath(path: str, base: Optional[str]) -> str:
    if base:
        try:
            rel = os.path.relpath(path, base)
            if not rel.startswith(".."):
                return rel.replace(os.sep, "/")
        except ValueError:
            pass
    return path.replace(os.sep, "/")


def _selected_checks(select: Optional[Sequence[str]]) -> List[Check]:
    names = list(select) if select else available_rules()
    return [CHECKS.resolve(name)() for name in names]


def analyze_paths(
    roots: Sequence[str],
    select: Optional[Sequence[str]] = None,
    base: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Run the selected checks; returns (raw findings, files scanned).

    ``base`` anchors the repo-relative paths findings carry (defaults
    to the current working directory), so fingerprints agree between a
    local run and CI regardless of absolute checkout location.
    """
    if base is None:
        base = os.getcwd()
    checks = _selected_checks(select)
    file_checks = [c for c in checks if c.scope == "file"]
    project_checks = [c for c in checks if c.scope == "project"]
    ctxs: List[FileContext] = []
    findings: List[Finding] = []
    files_scanned = 0
    for path in iter_python_files(roots):
        files_scanned += 1
        relpath = _relpath(path, base)
        try:
            ctx = parse_file(path, relpath)
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(
                    rule="parse-error",
                    path=relpath,
                    line=int(lineno),
                    col=0,
                    message=f"file does not parse: {exc}",
                    key="parse-error",
                )
            )
            continue
        ctxs.append(ctx)
        for check in file_checks:
            findings.extend(check.run(ctx))
    for check in project_checks:
        findings.extend(check.run_project(ctxs))
    suppressions = {ctx.relpath: Suppressions(ctx.source) for ctx in ctxs}
    resolved: List[Finding] = []
    for finding in findings:
        table = suppressions.get(finding.path)
        if table is not None and table.covers(finding.line, finding.rule):
            finding = dataclasses.replace(finding, suppressed=True)
        resolved.append(finding)
    return resolved, files_scanned


def run_check(
    roots: Sequence[str],
    select: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    base: Optional[str] = None,
) -> Dict[str, object]:
    """Analyze, apply the baseline, and build the report document."""
    findings, files_scanned = analyze_paths(roots, select=select, base=base)
    baselined: Set[str] = set()
    if baseline_path and os.path.exists(baseline_path):
        baselined = load_baseline(baseline_path)
    final: List[Finding] = []
    for finding in findings:
        if not finding.suppressed and finding.fingerprint in baselined:
            finding = dataclasses.replace(finding, baselined=True)
        final.append(finding)
    selected = list(select) if select else available_rules()
    return build_report(
        final,
        roots=list(roots),
        files_scanned=files_scanned,
        selected_rules=selected,
        rule_descriptions=rule_descriptions(),
    )
