"""Wire-contract checker: the error-code vocabulary stays closed and total.

:mod:`repro.api.wire` is the single source of truth for the endpoint
protocol's structured error codes: a small closed set of ``ERR_*``
string constants, plus per-transport mappings (``HTTP_STATUS`` for the
HTTP transport, ``MUX_FRAME_EVENT`` for the mux frame protocol) that
must be **total** over that set — a code with no mapping surfaces as an
unmapped 500/dead channel only under the error condition itself, which
is exactly when you cannot afford surprises.

This pass enforces the contract statically, from the AST, across every
transport package (``api/``, ``serving/``, ``mux/``, ``control/``,
``cluster/``):

``wire-codes``
    * ``EndpointError("some_literal", ...)`` whose code is not in the
      closed set — a transport inventing its own vocabulary;
    * ``EndpointError(ERR_X, ...)`` naming an ``ERR_*`` constant that
      ``wire.py`` does not define;
    * comparisons ``exc.code == "literal"`` (or ``in {...}``) against a
      string no server can ever send;
    * a module other than ``wire.py`` defining its own ``ERR_*``
      string constant.

``wire-totality``
    * an ``ERR_*`` code missing from ``HTTP_STATUS`` or
      ``MUX_FRAME_EVENT`` (or a mapping key that is not a code);
    * an HTTP status outside 100–599, or a frame event outside the
      known dispositions;
    * two ``ERR_*`` constants sharing one wire value.

The runtime halves of the same contract live in
``tests/api/test_wire_contract.py`` — the checker proves it about the
source, the test proves it about the imported module.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .checkers import Check, FileContext, register_check
from .findings import Finding

__all__ = ["WireCodes", "WireTotality", "wire_vocabulary"]

#: packages whose EndpointError constructions the checker audits.
TRANSPORT_PACKAGES = ("api/", "serving/", "mux/", "control/", "cluster/")

#: the file defining the closed set (relpath suffix).
WIRE_MODULE_SUFFIX = "api/wire.py"

#: frame dispositions a mux error code may map to (see wire.MUX_FRAME_EVENT).
FRAME_EVENTS = {"error", "retry"}


def _find_wire_ctx(ctxs: List[FileContext]) -> Optional[FileContext]:
    for ctx in ctxs:
        if ctx.relpath.endswith(WIRE_MODULE_SUFFIX):
            return ctx
    return None


def _module_dict_literal(
    tree: ast.AST, name: str
) -> Optional[Tuple[ast.AST, Dict[ast.AST, ast.AST]]]:
    """The ``{key: value}`` literal assigned to module-level ``name``."""
    for node in ast.walk(tree):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and target.id == name
            and isinstance(value, ast.Dict)
        ):
            return node, dict(zip(value.keys, value.values))
    return None


def wire_vocabulary(ctx: FileContext) -> Dict[str, str]:
    """``ERR_*`` constant name -> string value, parsed from wire.py's AST."""
    codes: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id.startswith("ERR_")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                codes[target.id] = node.value.value
    return codes


def _in_transport_package(relpath: str) -> bool:
    return any(f"/{pkg}" in relpath or relpath.startswith(pkg) for pkg in TRANSPORT_PACKAGES)


@register_check
class WireTotality(Check):
    name = "wire-totality"
    description = (
        "wire.py's HTTP_STATUS and MUX_FRAME_EVENT mappings must be total "
        "over the closed ERR_* set, with sane values and no duplicate codes"
    )
    scope = "project"

    def run_project(self, ctxs: List[FileContext]) -> Iterable[Finding]:
        ctx = _find_wire_ctx(ctxs)
        if ctx is None:
            return
        codes = wire_vocabulary(ctx)
        values: Dict[str, str] = {}
        for name, value in sorted(codes.items()):
            if value in values:
                yield self.finding(
                    ctx,
                    ctx.tree,
                    key=f"duplicate:{value}",
                    message=(
                        f"error codes {values[value]} and {name} share the "
                        f"wire value {value!r}; codes must be distinct so "
                        f"clients can branch on them"
                    ),
                )
            else:
                values[value] = name
        yield from self._mapping_total(
            ctx, codes, "HTTP_STATUS", self._check_http_value
        )
        yield from self._mapping_total(
            ctx, codes, "MUX_FRAME_EVENT", self._check_event_value
        )

    def _mapping_total(self, ctx, codes, mapping_name, value_check):
        found = _module_dict_literal(ctx.tree, mapping_name)
        if found is None:
            yield self.finding(
                ctx,
                ctx.tree,
                key=f"{mapping_name}:missing",
                message=(
                    f"wire.py defines no module-level {mapping_name} dict "
                    f"literal mapping every ERR_* code"
                ),
            )
            return
        node, entries = found
        seen: Set[str] = set()
        for key_node, value_node in entries.items():
            key_name = key_node.id if isinstance(key_node, ast.Name) else None
            if key_name is None or key_name not in codes:
                label = key_name or ast.dump(key_node)[:40]
                yield self.finding(
                    ctx,
                    key_node,
                    key=f"{mapping_name}:foreign:{label}",
                    message=(
                        f"{mapping_name} key {label} is not an ERR_* constant "
                        f"of the closed set"
                    ),
                )
                continue
            seen.add(key_name)
            yield from value_check(ctx, mapping_name, key_name, value_node)
        for missing in sorted(set(codes) - seen):
            yield self.finding(
                ctx,
                node,
                key=f"{mapping_name}:{missing}",
                message=(
                    f"{mapping_name} has no entry for {missing} "
                    f"({codes[missing]!r}); the mapping must be total over "
                    f"the closed error-code set"
                ),
            )

    def _check_http_value(self, ctx, mapping_name, key_name, value_node):
        if not (
            isinstance(value_node, ast.Constant)
            and isinstance(value_node.value, int)
            and 100 <= value_node.value <= 599
        ):
            yield self.finding(
                ctx,
                value_node,
                key=f"{mapping_name}:value:{key_name}",
                message=(
                    f"{mapping_name}[{key_name}] must be an integer HTTP "
                    f"status in 100..599"
                ),
            )

    def _check_event_value(self, ctx, mapping_name, key_name, value_node):
        if not (
            isinstance(value_node, ast.Constant)
            and value_node.value in FRAME_EVENTS
        ):
            yield self.finding(
                ctx,
                value_node,
                key=f"{mapping_name}:value:{key_name}",
                message=(
                    f"{mapping_name}[{key_name}] must be one of "
                    f"{sorted(FRAME_EVENTS)}"
                ),
            )


@register_check
class WireCodes(Check):
    name = "wire-codes"
    description = (
        "every error code a transport constructs or branches on must be a "
        "member of wire.py's closed ERR_* set; no transport invents codes"
    )
    scope = "project"

    def run_project(self, ctxs: List[FileContext]) -> Iterable[Finding]:
        wire_ctx = _find_wire_ctx(ctxs)
        if wire_ctx is None:
            return
        codes = wire_vocabulary(wire_ctx)
        code_values = set(codes.values())
        for ctx in ctxs:
            if not _in_transport_package(ctx.relpath):
                continue
            is_wire = ctx is wire_ctx
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_construction(
                        ctx, node, codes, code_values
                    )
                elif isinstance(node, ast.Compare):
                    yield from self._check_comparison(ctx, node, code_values)
                elif (
                    not is_wire
                    and isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                ):
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Name)
                        and target.id.startswith("ERR_")
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            key=f"minted:{target.id}",
                            message=(
                                f"{target.id} defines an error code outside "
                                f"wire.py; the wire vocabulary is closed — "
                                f"add the code to wire.py's ERR_* set (and "
                                f"its transport mappings) instead"
                            ),
                        )

    def _check_construction(self, ctx, node, codes, code_values):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "EndpointError" or not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value not in code_values:
                yield self.finding(
                    ctx,
                    first,
                    key=f"EndpointError:{first.value}",
                    message=(
                        f"EndpointError code {first.value!r} is not in "
                        f"wire.py's closed set; use an ERR_* constant (adding "
                        f"it to wire.py and its transport mappings if the "
                        f"vocabulary genuinely grows)"
                    ),
                )
            else:
                # in the set, but spelled as a loose literal: the
                # constant keeps construction sites greppable and safe
                # against typos the set lookup cannot catch at runtime.
                constant = next(k for k, v in codes.items() if v == first.value)
                yield self.finding(
                    ctx,
                    first,
                    key=f"EndpointError:literal:{first.value}",
                    message=(
                        f"EndpointError built from the string literal "
                        f"{first.value!r}; import and use wire.{constant}"
                    ),
                )
        elif isinstance(first, ast.Name) and first.id.startswith("ERR_"):
            if first.id not in codes:
                yield self.finding(
                    ctx,
                    first,
                    key=f"EndpointError:{first.id}",
                    message=(
                        f"EndpointError code constant {first.id} is not "
                        f"defined by wire.py; the closed set is: "
                        f"{', '.join(sorted(codes))}"
                    ),
                )

    def _check_comparison(self, ctx, node, code_values):
        operands = [node.left, *node.comparators]
        mentions_code_attr = any(
            isinstance(op, ast.Attribute) and op.attr == "code" for op in operands
        )
        if not mentions_code_attr:
            return
        literals: List[ast.Constant] = []
        for op in operands:
            if isinstance(op, ast.Constant) and isinstance(op.value, str):
                literals.append(op)
            elif isinstance(op, (ast.Set, ast.Tuple, ast.List)):
                literals.extend(
                    e
                    for e in op.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                )
        for literal in literals:
            if literal.value not in code_values:
                yield self.finding(
                    ctx,
                    literal,
                    key=f"compare:{literal.value}",
                    message=(
                        f"branch compares an error code against "
                        f"{literal.value!r}, which no transport can send — "
                        f"the closed set does not contain it"
                    ),
                )
