"""Distribution comparison utilities for the Fig. 5 / Fig. 11 evaluation.

Compares graph-statistic distributions of real vs generated subgraphs
with two-sample Kolmogorov–Smirnov tests and histogram overlap — the
quantitative versions of the paper's "very little statistical
difference between the two groups" reading of the density plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy import stats

from ..sentinel.features import FEATURE_NAMES, feature_matrix

__all__ = ["DistributionComparison", "compare_feature_distributions", "histogram_overlap"]


def histogram_overlap(a: np.ndarray, b: np.ndarray, bins: int = 12) -> float:
    """Overlap coefficient of two empirical distributions in [0, 1]."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi <= lo:
        return 1.0
    edges = np.linspace(lo, hi, bins + 1)
    pa, _ = np.histogram(a, bins=edges, density=False)
    pb, _ = np.histogram(b, bins=edges, density=False)
    pa = pa / pa.sum()
    pb = pb / pb.sum()
    return float(np.minimum(pa, pb).sum())


@dataclass
class DistributionComparison:
    """Per-feature KS statistic/p-value and histogram overlap."""

    feature: str
    ks_statistic: float
    p_value: float
    overlap: float
    real_mean: float
    generated_mean: float

    def summary(self) -> str:
        return (
            f"{self.feature:<24s} KS={self.ks_statistic:.3f} p={self.p_value:.3f} "
            f"overlap={self.overlap:.2f} mean(real)={self.real_mean:.2f} "
            f"mean(gen)={self.generated_mean:.2f}"
        )


def compare_feature_distributions(
    real_graphs: Sequence, generated_graphs: Sequence
) -> Dict[str, DistributionComparison]:
    """Fig. 5 comparison: one row per graph statistic."""
    real = feature_matrix(real_graphs)
    gen = feature_matrix(generated_graphs)
    if real.shape[0] < 2 or gen.shape[0] < 2:
        raise ValueError("need at least 2 graphs on each side")
    out: Dict[str, DistributionComparison] = {}
    for j, name in enumerate(FEATURE_NAMES):
        ks, p = stats.ks_2samp(real[:, j], gen[:, j])
        out[name] = DistributionComparison(
            feature=name,
            ks_statistic=float(ks),
            p_value=float(p),
            overlap=histogram_overlap(real[:, j], gen[:, j]),
            real_mean=float(real[:, j].mean()),
            generated_mean=float(gen[:, j].mean()),
        )
    return out
