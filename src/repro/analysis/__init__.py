"""Evaluation analytics: distribution stats and search-space math."""

from .stats import DistributionComparison, compare_feature_distributions, histogram_overlap
from .search_space import TradeoffRow, format_sci, optimizer_overhead, recovery_cost

__all__ = [
    "DistributionComparison",
    "compare_feature_distributions",
    "histogram_overlap",
    "TradeoffRow",
    "recovery_cost",
    "optimizer_overhead",
    "format_sci",
]
