"""Search-space arithmetic for the confidentiality tables (Fig. 6/9)."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TradeoffRow", "recovery_cost", "optimizer_overhead", "format_sci"]


def recovery_cost(n: int, k: int) -> float:
    """Exhaustive adversary cost O((k+1)^n) — Fig. 9, row 1."""
    if n < 0 or k < 0:
        raise ValueError("n and k must be non-negative")
    return float(k + 1) ** n


def optimizer_overhead(k: int) -> int:
    """Per-subgraph optimizer workload multiplier O(k) — Fig. 9, row 2.

    Each real subgraph drags k sentinels through the optimizer, so the
    compile effort is (k+1)x the unprotected pipeline's.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    return k + 1


def format_sci(x: float) -> str:
    """Format like the paper's tables: '1.23 x 10^21' (or plain if small)."""
    if x == 0:
        return "0"
    if x < 1e4:
        return f"{x:.3g}"
    exp = int(math.floor(math.log10(x)))
    mant = x / 10**exp
    return f"{mant:.2f}e{exp}"


@dataclass
class TradeoffRow:
    """One (n, k) operating point of the Fig. 9 tradeoff table."""

    n: int
    k: int

    @property
    def recovery(self) -> float:
        return recovery_cost(self.n, self.k)

    @property
    def overhead(self) -> int:
        return optimizer_overhead(self.k)

    def summary(self) -> str:
        return (
            f"n={self.n:3d} k={self.k:3d} recovery={format_sci(self.recovery):>10s} "
            f"optimizer-overhead={self.overhead}x"
        )
