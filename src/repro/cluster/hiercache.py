"""Three-tier hierarchical optimization cache for fleet workers.

The flat :class:`~repro.serving.cache.OptimizationCache` gives a fleet
worker two tiers: its private memory LRU over one disk directory shared
by every worker.  That shape has a scaling problem the hierarchical
GPU parameter server literature (PAPERS.md) names directly: the shared
store is the *largest and slowest* tier, so it should be the tier of
last resort, yet a flat layout makes it the worker's only disk tier —
every memory miss pays the shared store's contention (N workers
hammering one directory tree) even for payloads this worker itself
optimized minutes ago.

:class:`HierarchicalCache` layers three tiers the way that paper tiers
HBM / DRAM / SSD:

1. **memory** — the per-worker LRU (hottest, smallest, private);
2. **local** — a per-worker disk shard (private, uncontended; holds
   everything this worker optimized or was routed repeatedly);
3. **shared** — the fleet-wide backing store (largest; what makes N
   workers one logical cache and survives worker restarts).

Lookups descend; hits **promote** the payload into every tier above the
one that hit, so the second lookup is a memory hit no matter where the
first one landed.  Writes go **through** all three tiers, so a payload
optimized anywhere is immediately visible fleet-wide.  Payloads are
content-addressed and immutable (the key embeds canonical digest +
backend + config), so tiers can never disagree about a key's value —
promotion and write-through need no invalidation protocol.

Per-tier hit counters surface through :meth:`tier_stats` into
``metrics()["cache_tiers"]``, loadtest reports and the autoscaler's
:class:`~repro.control.signals.ServiceSignals` — the memory-tier hit
rate is the router's locality scorecard (ring routing should beat
round-robin on it; CI's ``cluster-smoke`` job asserts exactly that).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from ..obs.metrics import MetricsRegistry
from ..serving.cache import OptimizationCache

__all__ = ["HierarchicalCache"]


class HierarchicalCache(OptimizationCache):
    """Per-worker memory LRU over a per-worker disk shard over a shared
    backing store.  A drop-in :class:`OptimizationCache` (the serving
    tier only calls ``get``/``put``/``stats``/``tier_stats``).

    Parameters
    ----------
    shard_dir:
        This worker's private disk shard (the middle tier).  Each
        worker must use its own directory; the fleet spawner derives
        one per worker under ``<cache_dir>/shards/``.
    shared_dir:
        The fleet-wide backing store (the bottom tier) — the same
        directory a flat fleet cache would use, so existing stores are
        readable in place.
    max_memory_entries:
        Memory-LRU bound, as on the base class.
    """

    def __init__(
        self,
        shard_dir: str,
        shared_dir: str,
        max_memory_entries: int = 256,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if os.path.abspath(shard_dir) == os.path.abspath(shared_dir):
            raise ValueError(
                "shard_dir and shared_dir must differ (a shard equal to "
                "the backing store is just the flat two-tier cache)"
            )
        super().__init__(
            cache_dir=shard_dir,
            max_memory_entries=max_memory_entries,
            registry=registry,
        )
        self.shared_dir = shared_dir
        os.makedirs(os.path.join(shared_dir, "objects"), exist_ok=True)
        # shared-tier hits and promotions ride the base class's single
        # cache_events_total counter as extra events: one instrument,
        # one lock, so tier_stats() reads all tiers in one atomic
        # snapshot (the old split — base counters under self._lock,
        # shared counters under a second tier lock — let a snapshot
        # observe a lookup's memory-side effect without its tier-side
        # effect, i.e. hit rates that do not sum to 1).

    # -- lookup / store -----------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Descend memory -> local shard -> shared store; promote hits."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self._events.inc(event="memory_hit")
                return payload
        payload = self._read_disk(key)  # local shard
        if payload is not None:
            with self._lock:
                self._events.inc(event="disk_hit")
                self._remember_locked(key, payload)  # promote: shard -> memory
            return payload
        payload = self._read_object(self.object_path_in(self.shared_dir, key))
        with self._lock:
            if payload is None:
                self._events.inc(event="miss")
                return None
            self._remember_locked(key, payload)  # promote: shared -> memory
        self._events.inc(event="shared_hit")
        self._events.inc(event="promotion")
        # promote: shared -> local shard, so this worker's next memory
        # eviction of the key refills from its private, uncontended tier.
        self._write_disk(key, payload)
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Write through every tier: memory, local shard, shared store."""
        super().put(key, payload)  # memory + local shard
        self._write_object(self.object_path_in(self.shared_dir, key), payload)

    # -- bookkeeping --------------------------------------------------------
    def tier_stats(self) -> Dict[str, Any]:
        """Per-tier counters (``metrics()["cache_tiers"]`` block).

        ``lookups`` = memory_hits + local_hits + shared_hits + misses;
        the three hit-rate fields are each tier's share of all lookups,
        so ``memory_hit_rate`` is directly comparable across routing
        policies (the router's locality scorecard).
        """
        events = self._events.values(label="event")
        with self._lock:
            memory_entries = len(self._memory)
        memory_hits = events.get("memory_hit", 0)
        local_hits = events.get("disk_hit", 0)
        shared_hits = events.get("shared_hit", 0)
        misses = events.get("miss", 0)
        promotions = events.get("promotion", 0)
        lookups = memory_hits + local_hits + shared_hits + misses
        return {
            "memory_hits": memory_hits,
            "local_hits": local_hits,
            "shared_hits": shared_hits,
            "misses": misses,
            "promotions": promotions,
            "memory_entries": memory_entries,
            "memory_hit_rate": memory_hits / lookups if lookups else 0.0,
            "local_hit_rate": local_hits / lookups if lookups else 0.0,
            "shared_hit_rate": shared_hits / lookups if lookups else 0.0,
        }

    def stats(self):
        """Flat :class:`CacheStats` view: shared hits count as disk hits
        (they are hits — the flat hit-rate must not read a shared hit
        as a miss just because the layout grew a tier)."""
        base = super().stats()
        shared = self._events.value(event="shared_hit")
        from ..serving.cache import CacheStats

        return CacheStats(
            memory_hits=base.memory_hits,
            disk_hits=base.disk_hits + shared,
            misses=base.misses,
            puts=base.puts,
            evictions=base.evictions,
            memory_entries=base.memory_entries,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalCache(shard={self.cache_dir!r}, "
            f"shared={self.shared_dir!r}, {len(self)} hot entries)"
        )
