"""Digest-routed fleet proxy: locality, fleet-wide dedup, failover.

:class:`RouterEndpoint` replaces round-robin :class:`~repro.loadgen.
fleet.FleetEndpoint` as the default fleet proxy.  Round-robin treats
workers as interchangeable, but with a content-addressed cache they are
not: each worker's memory LRU is a private hot set, so spraying a
repeated manifest across N workers turns N-1 of its arrivals into cold
memory misses and — when the repeats are *concurrent* — into N separate
optimizer runs, because the PR 2 dedup guarantee lives inside one
process.  The router restores both properties at fleet scope:

* **locality** — each submit routes by the sealed manifest's bucket
  digest over a :class:`~repro.cluster.ring.ConsistentHashRing`, so a
  repeated manifest always lands on the worker already holding its
  optimized form in memory, and an autoscaler resize only re-homes
  ~1/N of the digest space (the rest of the fleet stays hot).
* **fleet-wide in-flight dedup** — a router-level in-flight table keyed
  by the same digest attaches concurrent identical submissions to one
  job: one worker optimizes, every attached waiter shares the one
  receipt.  Duplicates that race through *different* router clients
  still collapse on the worker's own scheduler, because ring placement
  sends equal digests to the same worker — routing is what makes the
  per-process dedup guarantee a fleet guarantee.
* **failover** — when the ring's primary for a digest is marked down or
  retired (draining), the submit walks the ring's preference order to
  the next live worker instead of failing or waiting.
* **live re-sharding** — membership changes (the ``fleet:PATH`` state
  file the autoscaler rewrites) rebuild the ring in place; in-flight
  jobs keep routing to the worker that owns them.

The routing key is the manifest's ``bucket_digest`` — the digest-table
hash sealed into every manifest — rather than the WL canonical hash:
it is already computed at seal time (routing must not cost a multi-
second canonicalization per submit), and the repeats that matter for
locality and dedup are resubmissions of the same sealed payload, which
share it by construction.  A *renamed* but structurally identical
bucket hashes elsewhere; it still resolves through the shared cache
tier, whose keys are canonical, so placement never affects results —
only which memory LRU gets warm.  Fleet receipts therefore stay
byte-identical to a single worker's (the PR 5 invariant): routing
decides *where* deterministic content-addressed work runs, never what
it produces.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..api.endpoint import OptimizerEndpoint, _seal
from ..loadgen.fleet import FleetEndpoint, _Member
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceContext, get_tracer
from .ring import DEFAULT_VNODES, ConsistentHashRing

__all__ = ["RouterEndpoint"]


class _RoutedJob:
    """One in-flight routed job and every submission attached to it."""

    __slots__ = (
        "key", "job_id", "member", "waiters", "fetching",
        "done", "receipt", "error", "cond", "trace",
    )

    def __init__(
        self,
        key: str,
        job_id: str,
        member: _Member,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.key = key
        self.job_id = job_id
        self.member = member
        self.trace = trace
        self.waiters = 1
        self.fetching = False
        self.done = False
        self.receipt: Any = None
        self.error: Optional[BaseException] = None
        self.cond = threading.Condition()


class RouterEndpoint(FleetEndpoint):
    """Consistent-hash routed fleet proxy (the default fleet front).

    Inherits membership management, mark-down bookkeeping, metrics
    aggregation and lifecycle from :class:`FleetEndpoint`; replaces its
    round-robin placement with ring placement plus a fleet-wide
    in-flight table.  Thread safe under the same contract.
    """

    transport = "fleet"
    routing = "ring"

    def __init__(
        self,
        endpoints: Sequence[OptimizerEndpoint],
        urls: Optional[Sequence[str]] = None,
        endpoint_factory: Optional[Callable[[str], OptimizerEndpoint]] = None,
        vnodes: int = DEFAULT_VNODES,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(endpoints, urls=urls, endpoint_factory=endpoint_factory)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._routing_events = self.registry.counter(
            "router_events_total", "routing decisions by event"
        )
        # ring ids: the worker URL when known, else a positional id
        # (in-process fleets) — stable for the member's lifetime.
        self._ids: Dict[str, _Member] = {}
        for i, member in enumerate(self._members):
            member_id = member.url if member.url is not None else f"w{i}"
            self._ids[member_id] = member
        self._ring = ConsistentHashRing(self._ids, vnodes=vnodes)
        #: digest -> live _RoutedJob; entries leave on terminal outcomes.
        self._inflight: Dict[str, _RoutedJob] = {}
        #: job id -> _RoutedJob (receipt sharing among attached waiters).
        self._routed: Dict[str, _RoutedJob] = {}

    # -- membership ----------------------------------------------------------
    def set_members(self, urls: Sequence[str]) -> None:
        """Reshape membership and re-shard the ring in one step."""
        super().set_members(urls)
        with self._lock:
            known = {m.url: m for m in self._members if m.url is not None}
            wanted = [u for u in dict.fromkeys(urls) if u in known]
            for url in wanted:
                self._ids[url] = known[url]
            self._ring.set_members(wanted)

    # -- routing -------------------------------------------------------------
    def _route(self, key: str) -> List[_Member]:
        """Submit-eligible members in ring preference order for ``key``.

        Falls back to every non-retired member (optimistically, as the
        round-robin front does) when all preferred members are marked
        down — a fleet-wide outage should fail on a real connection
        attempt, not on bookkeeping.
        """
        with self._lock:
            order = [
                self._ids[member_id]
                for member_id in self._ring.preference(key)
                if member_id in self._ids
            ]
            eligible = [m for m in order if m.up and not m.retired]
            if not eligible:
                eligible = [m for m in order if not m.retired]
            if not eligible:
                eligible = [m for m in self._members if not m.retired]
            if not eligible:
                raise ConnectionError("fleet has no live workers")
            return eligible

    # -- OptimizerEndpoint ----------------------------------------------------
    def submit(self, manifest) -> str:
        sealed = _seal(manifest)
        key = sealed.bucket_digest
        tracer = get_tracer()
        ctx = tracer.current()
        # attach to an identical in-flight submission, wherever in the
        # fleet it is running: same digest -> same job, one optimization.
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.waiters += 1
                self._routing_events.inc(event="dedup_hit")
                winner = entry.trace
                job_id = entry.job_id
            else:
                winner = None
                job_id = None
        if job_id is not None:
            # the deduped waiter's trace links to the winning job's
            # span, so cross-trace joins stay visible after stitching.
            if ctx is not None and winner is not None and winner.trace_id != ctx.trace_id:
                tracer.link(ctx, winner)
            return job_id
        last_exc: Optional[Exception] = None
        for attempt, member in enumerate(self._route(key)):
            try:
                job_id = member.endpoint.submit(sealed)
            except ConnectionError as exc:
                self.mark_down(member)
                last_exc = exc
                continue
            entry = _RoutedJob(key, job_id, member, trace=ctx)
            with self._lock:
                self._routing_events.inc(event="routed")
                if attempt:
                    self._routing_events.inc(attempt, event="failover")
                raced = self._inflight.get(key)
                if raced is None or raced.done:
                    self._inflight[key] = entry
                self._routed[job_id] = entry
                self._jobs[job_id] = [member, True]
                member.submitted += 1
                member.in_flight += 1
                busy = sum(1 for m in self._members if m.in_flight > 0)
                self.max_busy_workers = max(self.max_busy_workers, busy)
            return job_id
        raise last_exc if last_exc is not None else ConnectionError(
            "fleet has no live workers"
        )

    def await_receipt(self, job_id: str, timeout: Optional[float] = None):
        with self._lock:
            entry = self._routed.get(job_id)
        if entry is None:
            # not one of ours (or already fully claimed): the base
            # routing table gives the structured unknown-job error.
            return super().await_receipt(job_id, timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with entry.cond:
                if entry.done:
                    return self._claim(entry)
                if not entry.fetching:
                    entry.fetching = True
                    break  # this thread becomes the fetcher
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} not finished within {timeout:g}s"
                    )
                entry.cond.wait(remaining)
        # fetcher path: exactly one physical await per job at a time —
        # receipts are claimed once server-side, so concurrent attached
        # waiters must share the one fetch instead of racing for it.
        remaining = None if deadline is None else deadline - time.monotonic()
        try:
            receipt = entry.member.endpoint.await_receipt(
                job_id, timeout=remaining
            )
        except (TimeoutError, ConnectionError):
            # transient: hand the fetcher role to the next waiter and
            # free the busy slot (an abandoned wait must not pin it).
            with entry.cond:
                entry.fetching = False
                entry.cond.notify_all()
            self._release_slot(job_id, forget=False)
            raise
        except Exception as exc:
            with entry.cond:
                entry.done = True
                entry.error = exc
                entry.fetching = False
                entry.cond.notify_all()
            with self._lock:
                if self._inflight.get(entry.key) is entry:
                    del self._inflight[entry.key]
            self._release_slot(job_id, forget=True)
            return self._claim(entry)
        with entry.cond:
            entry.done = True
            entry.receipt = receipt
            entry.fetching = False
            entry.cond.notify_all()
        with self._lock:
            if self._inflight.get(entry.key) is entry:
                del self._inflight[entry.key]
        self._release_slot(job_id, forget=False)
        return self._claim(entry)

    def _claim(self, entry: _RoutedJob) -> Any:
        """Deliver the shared outcome to one waiter; drop the job's
        bookkeeping when the last attached waiter has claimed it."""
        with self._lock:
            entry.waiters -= 1
            if entry.waiters <= 0:
                self._routed.pop(entry.job_id, None)
                self._jobs.pop(entry.job_id, None)
        if entry.error is not None:
            raise entry.error
        return entry.receipt

    def metrics(self) -> Dict[str, Any]:
        base = super().metrics()
        with self._lock:
            base["routing"] = {
                "policy": self.routing,
                "vnodes": self._ring.vnodes,
                "ring_members": self._ring.members,
                "routed_total": self._routing_events.value(event="routed"),
                "dedup_hits": self._routing_events.value(event="dedup_hit"),
                "failover_total": self._routing_events.value(event="failover"),
                "in_flight_table": len(self._inflight),
            }
        return base
