"""Consistent-hash ring: stable digest -> worker placement.

The sharded fleet's routing problem is the classic one: map a stream of
content keys (canonical bucket digests) onto a changing set of workers
so that (a) the same key always lands on the same worker while
membership holds — a repeated graph arrives where its optimized form is
already hot in that worker's memory LRU — and (b) a resize moves as few
keys as possible.  Hashing ``key % N`` fails (b) catastrophically:
growing N to N+1 remaps ~all keys and every worker goes cold at once.

:class:`ConsistentHashRing` is the textbook fix.  Each worker id is
hashed onto ``vnodes`` points of a 64-bit circle; a key routes to the
first worker point clockwise of the key's own hash.  Adding or removing
one of N workers then remaps only the arc segments that worker owned —
~1/N of the key space in expectation (``tests/cluster/test_ring.py``
proves the fraction) — and virtual nodes keep per-worker load balanced
by averaging each worker over many small arcs instead of one big one.

Hashes come from sha256 over the id/key strings, never from Python's
``hash()`` — placement must be identical across processes and runs
(PYTHONHASHSEED randomizes ``hash()``), because a client restarted
mid-deployment has to agree with every other client about where a
digest lives.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["ConsistentHashRing"]

#: default virtual nodes per member.  64 keeps the max/mean per-worker
#: load ratio around ~1.25 for small fleets while membership changes
#: stay cheap (a resize inserts/removes 64 sorted points).
DEFAULT_VNODES = 64


def _point(blob: str) -> int:
    """A stable 64-bit ring position for ``blob``."""
    return int.from_bytes(
        hashlib.sha256(blob.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Virtual-node consistent hashing over string member ids.

    Not thread-safe on its own: the :class:`~repro.cluster.router.
    RouterEndpoint` serializes membership changes and lookups under its
    own lock, and tests drive it single-threaded.
    """

    def __init__(
        self, members: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        #: sorted (point, member) pairs — the ring itself.
        self._points: List[Tuple[int, str]] = []
        self._members: List[str] = []
        for member in members:
            self.add(member)

    # -- membership ----------------------------------------------------------
    def __contains__(self, member: str) -> bool:
        return member in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> List[str]:
        """Current member ids (insertion order, not ring order)."""
        return list(self._members)

    def add(self, member: str) -> None:
        """Place ``member`` on the ring (idempotent)."""
        if member in self._members:
            return
        self._members.append(member)
        for replica in range(self.vnodes):
            pair = (_point(f"{member}#{replica}"), member)
            bisect.insort(self._points, pair)

    def remove(self, member: str) -> None:
        """Take ``member`` off the ring (idempotent)."""
        if member not in self._members:
            return
        self._members.remove(member)
        self._points = [p for p in self._points if p[1] != member]

    def set_members(self, members: Sequence[str]) -> None:
        """Reshape membership to exactly ``members`` (order-insensitive:
        placement depends only on the member *set*)."""
        wanted = list(dict.fromkeys(members))
        for member in [m for m in self._members if m not in wanted]:
            self.remove(member)
        for member in wanted:
            self.add(member)

    # -- placement -----------------------------------------------------------
    def primary(self, key: str) -> str:
        """The member owning ``key``: first ring point clockwise of it."""
        owners = self.preference(key, 1)
        if not owners:
            raise LookupError("ring has no members")
        return owners[0]

    def preference(self, key: str, n: Optional[int] = None) -> List[str]:
        """The first ``n`` *distinct* members clockwise of ``key``.

        The head is the primary; the tail is the failover order the
        router walks when the primary is draining or down.  ``n=None``
        returns every member.  Deterministic for a fixed membership.
        """
        if not self._points:
            return []
        if n is None:
            n = len(self._members)
        start = bisect.bisect_right(self._points, (_point(key), "\uffff"))
        order: List[str] = []
        seen = set()
        for i in range(len(self._points)):
            member = self._points[(start + i) % len(self._points)][1]
            if member not in seen:
                seen.add(member)
                order.append(member)
                if len(order) >= n:
                    break
        return order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConsistentHashRing({len(self._members)} members x "
            f"{self.vnodes} vnodes)"
        )
