"""Locality-aware distributed cache/compute tier for the serving fleet.

Three pieces turn the PR 5/6 fleet from "N interchangeable workers over
one shared cache" into a sharded tier:

* :class:`~repro.cluster.ring.ConsistentHashRing` — stable digest ->
  worker placement; a resize remaps only ~1/N of the key space.
* :class:`~repro.cluster.router.RouterEndpoint` — the default fleet
  proxy: ring-routed submits, a fleet-wide in-flight dedup table, and
  next-on-ring failover.
* :class:`~repro.cluster.hiercache.HierarchicalCache` — per-worker
  memory LRU over a per-worker disk shard over the shared backing
  store, with promote-on-hit, write-through and per-tier counters.
"""

from .hiercache import HierarchicalCache
from .ring import ConsistentHashRing
from .router import RouterEndpoint

__all__ = ["ConsistentHashRing", "HierarchicalCache", "RouterEndpoint"]
