"""Graph-statistic features used throughout sentinel generation.

The four statistics of §4.1.2 / Fig. 5: average degree, clustering
coefficient, diameter, and graph size.  Computed on the *undirected*
view of the node-level dependency graph (matching how GraphRNN sees
topologies) so real and generated graphs are featurized identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

import networkx as nx
import numpy as np

from ..ir.graph import Graph

__all__ = ["GraphFeatures", "FEATURE_NAMES", "graph_features", "feature_matrix", "as_undirected"]

FEATURE_NAMES = ("average_degree", "clustering_coefficient", "diameter", "num_nodes")

GraphLike = Union[Graph, nx.Graph, nx.DiGraph]


def as_undirected(graph: GraphLike) -> nx.Graph:
    """Undirected topology view of an IR graph or a networkx graph."""
    if isinstance(graph, Graph):
        g = graph.to_networkx().to_undirected()
    elif isinstance(graph, nx.DiGraph):
        g = graph.to_undirected()
    elif isinstance(graph, nx.Graph):
        g = graph.copy()
    else:
        raise TypeError(f"cannot featurize {type(graph).__name__}")
    g.remove_edges_from(nx.selfloop_edges(g))
    return g


@dataclass(frozen=True)
class GraphFeatures:
    """The Fig. 5 feature vector for one graph."""

    average_degree: float
    clustering_coefficient: float
    diameter: float
    num_nodes: float

    def as_array(self) -> np.ndarray:
        return np.array(
            [self.average_degree, self.clustering_coefficient, self.diameter, self.num_nodes],
            dtype=float,
        )


def graph_features(graph: GraphLike) -> GraphFeatures:
    """Compute the four Fig. 5 statistics.

    Disconnected graphs use the diameter of their largest connected
    component (generated topologies are connected by construction, but
    partitioned real subgraphs occasionally are not).
    """
    g = as_undirected(graph)
    n = g.number_of_nodes()
    if n == 0:
        return GraphFeatures(0.0, 0.0, 0.0, 0.0)
    avg_degree = 2.0 * g.number_of_edges() / n
    clustering = nx.average_clustering(g) if n > 1 else 0.0
    if n == 1:
        diam = 0.0
    elif nx.is_connected(g):
        diam = float(nx.diameter(g))
    else:
        largest = max(nx.connected_components(g), key=len)
        sub = g.subgraph(largest)
        diam = float(nx.diameter(sub)) if len(largest) > 1 else 0.0
    return GraphFeatures(avg_degree, clustering, diam, float(n))


def feature_matrix(graphs: Iterable[GraphLike]) -> np.ndarray:
    """Stack features of many graphs into an [N, 4] array."""
    rows: List[np.ndarray] = [graph_features(g).as_array() for g in graphs]
    if not rows:
        return np.zeros((0, len(FEATURE_NAMES)))
    return np.vstack(rows)
