"""The random-opcode baseline of Fig. 6.

"Random opcodes on PROTEUS-generated topologies": take sampled
topologies and assign operators uniformly at random, respecting only
dataflow arity (not shapes, not semantics).  This is the straw
obfuscator the learning-based adversary defeats — specificity near 1.0,
search space collapsing to single digits — demonstrating that sentinel
*quality* (Algorithm 2) is what provides the protection.

Random-opcode graphs generally are not executable (shapes disagree), so
they are represented as opcode-annotated DAGs (the adversary's input
format) rather than IR graphs.
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx
import numpy as np

from .constraints import BINARY_OPS, UNARY_OPS

__all__ = ["random_opcode_graph", "random_opcode_sentinels"]


def random_opcode_graph(dag: nx.DiGraph, rng: np.random.Generator) -> nx.DiGraph:
    """Annotate a topology with uniformly random (arity-legal) opcodes."""
    out = nx.DiGraph()
    out.add_nodes_from(dag.nodes())
    out.add_edges_from(dag.edges())
    for v in out.nodes():
        indeg = out.in_degree(v)
        pool: Sequence[str] = UNARY_OPS if indeg <= 1 else BINARY_OPS
        out.nodes[v]["op_type"] = pool[int(rng.integers(0, len(pool)))]
    return out


def random_opcode_sentinels(
    topologies: Sequence[nx.DiGraph], k: int, seed: int = 0
) -> List[nx.DiGraph]:
    """Generate ``k`` random-opcode sentinels from a topology pool."""
    rng = np.random.default_rng(seed)
    out: List[nx.DiGraph] = []
    for _ in range(k):
        topo = topologies[int(rng.integers(0, len(topologies)))]
        out.append(random_opcode_graph(topo, rng))
    return out
