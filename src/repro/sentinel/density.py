"""Feature-space density estimation (the ESTIMATEDENSITY of Algorithm 1).

Importance sampling in Algorithm 1 needs the density ``p(x)`` of the
generated-topology pool D in graph-feature space so that in-band samples
can be reweighted by ``1/p`` into a uniform distribution.  We use a
Gaussian KDE with per-dimension standardization; degenerate dimensions
(zero variance — e.g. all candidate graphs share a clustering
coefficient of 0) are dropped from the estimate rather than crashing
the factorization.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

__all__ = ["FeatureDensity"]


class FeatureDensity:
    """Gaussian KDE over graph-feature vectors with robust fallbacks."""

    def __init__(self, samples: np.ndarray, bw_method: Optional[float] = None) -> None:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[0] < 2:
            raise ValueError("need an [N>=2, D] sample matrix")
        self.mean = samples.mean(axis=0)
        self.std = samples.std(axis=0)
        self.active = self.std > 1e-9
        self._n_active = int(self.active.sum())
        if self._n_active == 0:
            self._kde = None  # all mass at one point: uniform over it
        else:
            z = (samples[:, self.active] - self.mean[self.active]) / self.std[self.active]
            try:
                self._kde = stats.gaussian_kde(z.T, bw_method=bw_method)
            except np.linalg.LinAlgError:
                # nearly collinear features: fall back to a product of 1-D KDEs
                self._kde = [stats.gaussian_kde(z[:, j]) for j in range(z.shape[1])]

    def __call__(self, x: np.ndarray) -> float:
        """Density at one feature vector (in original, unstandardized units)."""
        x = np.asarray(x, dtype=float)
        if self._kde is None:
            return 1.0
        z = (x[self.active] - self.mean[self.active]) / self.std[self.active]
        if isinstance(self._kde, list):
            dens = 1.0
            for j, kde in enumerate(self._kde):
                dens *= float(kde(z[j])[0])
            return max(dens, 1e-12)
        return max(float(self._kde(z.reshape(-1, 1))[0]), 1e-12)

    def standardize(self, x: np.ndarray) -> np.ndarray:
        """Feature vector in per-dimension std units (degenerate dims = 0)."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        out[self.active] = (x[self.active] - self.mean[self.active]) / self.std[self.active]
        return out
