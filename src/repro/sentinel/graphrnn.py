"""GraphRNN-lite: an autoregressive graph topology generator in numpy.

The paper uses GraphRNN (You et al., 2018) to learn realistic DL-graph
topologies.  GraphRNN's essential mechanism is: order nodes by BFS,
then autoregressively emit each new node's adjacency vector to the
previous ``M`` nodes.  We reproduce that mechanism with a tabular
conditional model instead of an RNN (torch is unavailable offline —
see DESIGN.md):

* the **first** connection of each new node is drawn from an empirical
  offset distribution (offset 1 = previous node, 2 = one before, ...),
  conditioned on a coarse position bucket (early/mid/late in the BFS);
* **additional** connections are independent Bernoullis per offset with
  empirically estimated rates (these create the skip/residual edges and
  the occasional high-fan-in join);
* graph **size** is sampled from the training size distribution.

DL computational graphs are dominated by exactly these statistics
(chain edges + sparse skips), which is why the tabular model's samples
match real topologies distributionally (verified in the Fig. 5 bench).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import networkx as nx
import numpy as np

from .features import as_undirected

__all__ = ["GraphRNNLite", "bfs_adjacency_sequences"]

_POSITION_BUCKETS = 3


def _position_bucket(i: int, n: int) -> int:
    """Coarse BFS-position bucket (early / mid / late)."""
    if n <= 1:
        return 0
    frac = i / (n - 1)
    return min(_POSITION_BUCKETS - 1, int(frac * _POSITION_BUCKETS))


def bfs_adjacency_sequences(
    g: nx.Graph, window: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """BFS-ordered adjacency vectors: one length-``window`` 0/1 row per node.

    Row ``i`` marks which of the previous ``window`` nodes (offset 1 =
    immediately previous) node ``i`` connects to.  Matches GraphRNN's
    sequence encoding with a random BFS start for augmentation.
    """
    nodes = list(g.nodes())
    if not nodes:
        return []
    start = nodes[int(rng.integers(0, len(nodes)))]
    order: List = []
    for comp in nx.connected_components(g):
        comp_start = start if start in comp else next(iter(comp))
        order.extend(nx.bfs_tree(g.subgraph(comp), comp_start).nodes())
    index = {node: i for i, node in enumerate(order)}
    rows: List[np.ndarray] = []
    for i, node in enumerate(order):
        row = np.zeros(window, dtype=np.int8)
        for nbr in g.neighbors(node):
            j = index[nbr]
            if j < i and i - j <= window:
                row[i - j - 1] = 1
        rows.append(row)
    return rows


class GraphRNNLite:
    """Tabular autoregressive topology model (see module docstring)."""

    def __init__(self, window: int = 12, smoothing: float = 0.5) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.smoothing = smoothing
        self._fitted = False

    # -- training --------------------------------------------------------------
    def fit(self, graphs: Iterable, seed: int = 0) -> "GraphRNNLite":
        """Estimate the model from real topologies (IR graphs or nx graphs)."""
        rng = np.random.default_rng(seed)
        first_counts = np.full((_POSITION_BUCKETS, self.window), self.smoothing)
        extra_counts = np.full(self.window, self.smoothing)
        extra_trials = np.full(self.window, 2.0 * self.smoothing)
        sizes: List[int] = []
        n_graphs = 0
        for graph in graphs:
            g = as_undirected(graph)
            if g.number_of_nodes() < 2:
                continue
            n_graphs += 1
            sizes.append(g.number_of_nodes())
            rows = bfs_adjacency_sequences(g, self.window, rng)
            n = len(rows)
            for i, row in enumerate(rows[1:], start=1):
                bucket = _position_bucket(i, n)
                nz = np.flatnonzero(row)
                if nz.size == 0:
                    continue
                first = nz[0]
                first_counts[bucket, first] += 1
                eligible = min(i, self.window)
                extra_trials[:eligible] += 1
                extra_counts[nz[1:]] += 1
        if n_graphs == 0:
            raise ValueError("no usable training graphs (need >= 2 nodes each)")
        self.first_probs = first_counts / first_counts.sum(axis=1, keepdims=True)
        self.extra_rates = np.clip(extra_counts / extra_trials, 0.0, 0.5)
        self.sizes = np.asarray(sizes, dtype=int)
        self._fitted = True
        return self

    # -- sampling ----------------------------------------------------------------
    def sample_size(self, rng: np.random.Generator) -> int:
        """Draw a graph size from the (jittered) empirical distribution."""
        self._check_fitted()
        base = int(rng.choice(self.sizes))
        jitter = int(rng.integers(-2, 3))
        return max(2, base + jitter)

    def sample(self, rng: np.random.Generator, n_nodes: Optional[int] = None) -> nx.Graph:
        """Generate one undirected topology autoregressively."""
        self._check_fitted()
        n = n_nodes if n_nodes is not None else self.sample_size(rng)
        if n < 1:
            raise ValueError("n_nodes must be >= 1")
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for i in range(1, n):
            bucket = _position_bucket(i, n)
            eligible = min(i, self.window)
            probs = self.first_probs[bucket, :eligible].copy()
            total = probs.sum()
            if total <= 0:
                first = 0
            else:
                first = int(rng.choice(eligible, p=probs / total))
            g.add_edge(i, i - 1 - first)
            extra = rng.random(eligible) < self.extra_rates[:eligible]
            for offset in np.flatnonzero(extra):
                if offset != first:
                    g.add_edge(i, i - 1 - int(offset))
        return g

    def sample_many(
        self, count: int, seed: int = 0, sizes: Optional[Sequence[int]] = None
    ) -> List[nx.Graph]:
        """Generate a pool of ``count`` topologies (the sampler's D set)."""
        rng = np.random.default_rng(seed)
        out: List[nx.Graph] = []
        for i in range(count):
            n = sizes[i % len(sizes)] if sizes else None
            out.append(self.sample(rng, n_nodes=n))
        return out

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("GraphRNNLite must be fit() before sampling")
