"""A small finite-domain constraint solver (the offline stand-in for Z3).

Algorithm 2 uses an SMT solver purely as an *enumerator*: "repeatedly
query the solver to find syntactically valid operator assignments ...
exclude the solution from being returned in a subsequent iteration".
This module provides exactly that contract for finite domains:

* variables are assigned in a fixed order (for operator population:
  topological order, so parents are decided before children);
* domains may be **dynamic** — computed from the partial assignment,
  which is how shape constraints stay arc-consistent by construction;
* :meth:`CSPSolver.solutions` lazily enumerates distinct complete
  assignments via depth-first search with backtracking, which subsumes
  Z3's add-blocking-clause loop;
* an expansion budget bounds worst-case search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence

__all__ = ["CSPSolver", "CSPBudgetExhausted"]

Assignment = Dict[Hashable, object]
DomainFn = Callable[[Hashable, Assignment], Sequence[object]]
ConstraintFn = Callable[[Hashable, object, Assignment], bool]


class CSPBudgetExhausted(RuntimeError):
    """Raised when the search's node-expansion budget runs out."""


@dataclass
class _Stats:
    expansions: int = 0
    backtracks: int = 0
    solutions: int = 0


class CSPSolver:
    """Backtracking enumerator over dynamically domained variables.

    Parameters
    ----------
    variables:
        Assignment order.  For graph problems use topological order so
        dynamic domains can depend on already-assigned predecessors.
    domain_fn:
        ``domain_fn(var, partial_assignment)`` returns candidate values
        for ``var``.  Returning an empty sequence triggers backtracking.
    constraints:
        Optional extra checks ``(var, value, partial_assignment) -> bool``
        applied to each candidate (dynamic domains usually encode all
        constraints already).
    budget:
        Maximum node expansions for one enumeration run.
    """

    def __init__(
        self,
        variables: Sequence[Hashable],
        domain_fn: DomainFn,
        constraints: Optional[Sequence[ConstraintFn]] = None,
        budget: int = 20_000,
    ) -> None:
        if not variables:
            raise ValueError("need at least one variable")
        self.variables = list(variables)
        self.domain_fn = domain_fn
        self.constraints = list(constraints or ())
        self.budget = budget
        self.stats = _Stats()

    def _consistent(self, var: Hashable, value: object, assignment: Assignment) -> bool:
        return all(c(var, value, assignment) for c in self.constraints)

    def solutions(self, max_solutions: Optional[int] = None) -> Iterator[Assignment]:
        """Lazily yield complete assignments (each a fresh dict).

        Stops after ``max_solutions`` (None = exhaust the space) or when
        the expansion budget is hit (yielding whatever was found first —
        the budget is a soft cap, not an error, mirroring a solver
        timeout in Algorithm 2's loop condition).
        """
        self.stats = _Stats()
        assignment: Assignment = {}
        yield from self._search(0, assignment, max_solutions)

    def _search(
        self, depth: int, assignment: Assignment, max_solutions: Optional[int]
    ) -> Iterator[Assignment]:
        if max_solutions is not None and self.stats.solutions >= max_solutions:
            return
        if depth == len(self.variables):
            self.stats.solutions += 1
            yield dict(assignment)
            return
        if self.stats.expansions >= self.budget:
            return
        var = self.variables[depth]
        for value in self.domain_fn(var, assignment):
            if self.stats.expansions >= self.budget:
                return
            self.stats.expansions += 1
            if not self._consistent(var, value, assignment):
                continue
            assignment[var] = value
            yield from self._search(depth + 1, assignment, max_solutions)
            del assignment[var]
            if max_solutions is not None and self.stats.solutions >= max_solutions:
                return
        self.stats.backtracks += 1

    def first_solution(self) -> Optional[Assignment]:
        """Convenience: the first solution or None."""
        for sol in self.solutions(max_solutions=1):
            return sol
        return None
