"""Algorithm 3: induce an acyclic orientation on an undirected graph.

GraphRNN-style generators emit undirected topologies; DL computational
graphs are DAGs.  The paper orients edges by (1) finding the endpoints
of the graph's diameter, (2) BFS from one endpoint recording visit
order, and (3) pointing every edge from the smaller to the larger BFS
order.  The result is always acyclic because BFS order is a total
order over the vertices.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import networkx as nx

__all__ = ["diameter_endpoints", "induce_orientation"]


def diameter_endpoints(g: nx.Graph) -> Tuple[Hashable, Hashable]:
    """An (approximate) diameter endpoint pair via double-sweep BFS.

    Two BFS sweeps give the exact diameter on trees and an excellent
    approximation on general graphs — and, importantly for Algorithm 3,
    a consistent "far apart" start node.
    """
    if g.number_of_nodes() == 0:
        raise ValueError("empty graph has no diameter")
    start = next(iter(sorted(g.nodes())))
    dist = nx.single_source_shortest_path_length(g, start)
    u = max(dist, key=lambda k: (dist[k], str(k)))
    dist_u = nx.single_source_shortest_path_length(g, u)
    v = max(dist_u, key=lambda k: (dist_u[k], str(k)))
    return u, v


def induce_orientation(g: nx.Graph) -> nx.DiGraph:
    """Orient the edges of ``g`` into a DAG (paper Algorithm 3).

    Node attributes are preserved.  Disconnected graphs are handled by
    running the BFS sweep per component (orders are disjoint, so edges
    never cross components).
    """
    out = nx.DiGraph()
    out.add_nodes_from(g.nodes(data=True))
    order: Dict[Hashable, int] = {}
    offset = 0
    for comp in nx.connected_components(g):
        sub = g.subgraph(comp)
        u, _ = diameter_endpoints(sub)
        for i, node in enumerate(nx.bfs_tree(sub, u).nodes()):
            order[node] = offset + i
        offset += len(comp)
    for a, b in g.edges():
        if order[a] < order[b]:
            out.add_edge(a, b)
        else:
            out.add_edge(b, a)
    return out
