"""Algorithm 1: sample sentinel topologies statistically similar to a
protected subgraph.

Given the protected subgraph ``G`` and a pool ``D`` of generated
topologies, the sampler:

1. estimates the pool's density ``p(x)`` in graph-feature space;
2. places a uniform band of width ``beta`` (in standardized feature
   units) around ``G``'s features, at a *random offset*
   ``alpha ~ U[0, beta]^d`` so that ``G`` is not detectably centered;
3. accepts pool topologies whose features fall inside the band, with
   importance weight ``1/p(x)`` so accepted samples are uniform over
   the band rather than following ``D``'s density.

Accepted topologies are returned as DAGs (via Algorithm 3 orientation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from .density import FeatureDensity
from .features import feature_matrix, graph_features
from .orientation import induce_orientation

__all__ = ["TopologySampler", "SampledTopology"]


@dataclass
class SampledTopology:
    """One accepted sentinel topology with its sampling metadata."""

    dag: nx.DiGraph
    features: np.ndarray
    weight: float  # importance weight 1/p(x)


class TopologySampler:
    """SAMPLETOPOLOGIES (Algorithm 1) over a fixed pool of topologies."""

    def __init__(self, pool: Sequence[nx.Graph]) -> None:
        if len(pool) < 2:
            raise ValueError("topology pool must contain at least 2 graphs")
        self.pool = list(pool)
        self._features = feature_matrix(self.pool)
        self.density = FeatureDensity(self._features)
        # pool is immutable: precompute per-topology density/standardized
        # coordinates once (sample() is called per protected subgraph).
        self._pool_density = np.array([self.density(f) for f in self._features])
        self._pool_z = np.vstack([self.density.standardize(f) for f in self._features])

    def sample(
        self,
        protected,
        beta: float,
        rng: np.random.Generator,
        max_results: Optional[int] = None,
    ) -> List[SampledTopology]:
        """Return pool topologies statistically indistinguishable from
        ``protected`` (an IR graph or nx graph), oriented into DAGs."""
        if beta <= 0:
            raise ValueError("beta must be positive")
        x_g = self.density.standardize(graph_features(protected).as_array())
        # Band [l, r] of width beta containing x_g at a random position.
        alpha = rng.uniform(0.0, beta, size=x_g.shape)
        lo = x_g - alpha
        hi = lo + beta

        accepted: List[SampledTopology] = []
        densities = self._pool_density
        z = self._pool_z
        in_band = np.all((z >= lo - 1e-12) & (z <= hi + 1e-12), axis=1)
        idxs = np.flatnonzero(in_band)
        if idxs.size == 0:
            return []
        # Importance sampling: accept index i with prob proportional to
        # 1/p(x_i), normalized so the largest weight is accepted surely.
        weights = 1.0 / densities[idxs]
        probs = weights / weights.max()
        order = rng.permutation(idxs.size)
        for j in order:
            if max_results is not None and len(accepted) >= max_results:
                break
            if rng.random() <= probs[j]:
                i = int(idxs[j])
                dag = induce_orientation(self.pool[i])
                accepted.append(
                    SampledTopology(dag=dag, features=self._features[i], weight=float(weights[j]))
                )
        return accepted

    def sample_at_least(
        self,
        protected,
        beta: float,
        rng: np.random.Generator,
        count: int,
        max_widenings: int = 4,
    ) -> List[SampledTopology]:
        """Sample until at least ``count`` topologies are found, widening
        the band (doubling beta) when the pool is locally sparse.

        Widening trades some statistical tightness for availability —
        the alternative (duplicating topologies) is strictly worse for
        confidentiality.  Resamples with replacement only as a last
        resort.
        """
        results: List[SampledTopology] = []
        width = beta
        for _ in range(max_widenings + 1):
            results = self.sample(protected, width, rng, max_results=None)
            if len(results) >= count:
                return results[:count]
            width *= 2.0
        while len(results) < count and results:
            results.append(results[int(rng.integers(0, len(results)))])
        if not results:
            # pathological pool: orient arbitrary pool members
            for i in rng.permutation(len(self.pool))[:count]:
                g = self.pool[int(i)]
                results.append(
                    SampledTopology(
                        dag=induce_orientation(g),
                        features=graph_features(g).as_array(),
                        weight=1.0,
                    )
                )
        return results[:count]
