"""Sentinel-subgraph generation (paper §4.1.2)."""

from .features import FEATURE_NAMES, GraphFeatures, as_undirected, feature_matrix, graph_features
from .orientation import diameter_endpoints, induce_orientation
from .graphrnn import GraphRNNLite, bfs_adjacency_sequences
from .density import FeatureDensity
from .topology_sampler import SampledTopology, TopologySampler
from .opseq_model import START, OpSequenceModel
from .constraints import BINARY_OPS, SOURCE_SHAPES, UNARY_OPS, NodeChoice, candidate_choices
from .csp import CSPBudgetExhausted, CSPSolver
from .operator_population import PopulatedGraph, assign_operators, materialize_assignment
from .perturbation import PerturbationError, perturb_subgraph
from .random_baseline import random_opcode_graph, random_opcode_sentinels
from .generator import SentinelGenerator, build_subgraph_database, default_sentinel_source

__all__ = [
    "GraphFeatures",
    "FEATURE_NAMES",
    "graph_features",
    "feature_matrix",
    "as_undirected",
    "induce_orientation",
    "diameter_endpoints",
    "GraphRNNLite",
    "bfs_adjacency_sequences",
    "FeatureDensity",
    "TopologySampler",
    "SampledTopology",
    "OpSequenceModel",
    "START",
    "NodeChoice",
    "candidate_choices",
    "UNARY_OPS",
    "BINARY_OPS",
    "SOURCE_SHAPES",
    "CSPSolver",
    "CSPBudgetExhausted",
    "assign_operators",
    "materialize_assignment",
    "PopulatedGraph",
    "perturb_subgraph",
    "PerturbationError",
    "random_opcode_graph",
    "random_opcode_sentinels",
    "SentinelGenerator",
    "build_subgraph_database",
    "default_sentinel_source",
]
