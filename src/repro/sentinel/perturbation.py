"""Perturbation-based sentinels: minor modifications over a real subgraph.

Paper §4.1.2 ("Minor Modifications over Popular Models"): when the
protected model resembles a well-known architecture, Proteus also
builds sentinels by adding/removing nodes in the real topology and
re-populating only the perturbed region, preserving the opcodes of
unperturbed nodes.  Each perturbed graph is re-validated through shape
inference, so the output is always a syntactically correct sentinel.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..ir.graph import Graph, Value
from ..ir.node import Node
from ..ir.shape_inference import infer_shapes
from ..ir.validate import validate_graph

__all__ = ["perturb_subgraph", "PerturbationError"]


class PerturbationError(RuntimeError):
    """Raised when no valid perturbation could be produced."""


_ACTIVATIONS = ("Relu", "LeakyRelu", "Sigmoid", "Tanh", "HardSwish", "HardSigmoid", "Erf")

#: shape-preserving unary ops insertable on any float edge.
_INSERTABLE_ANYRANK = ("Relu", "Tanh", "Sigmoid", "Abs", "Neg", "Erf", "HardSwish")


def _insert_unary(graph: Graph, rng: np.random.Generator) -> bool:
    """Insert a shape-preserving op on a random internal edge."""
    candidates = []
    for node in graph.nodes:
        for inp in node.inputs:
            if graph.is_initializer(inp):
                continue
            t = graph.value_types.get(inp)
            if t is None or t.dtype.value not in ("float32", "float64"):
                continue
            candidates.append((node, inp))
    if not candidates:
        return False
    consumer, value = candidates[int(rng.integers(0, len(candidates)))]
    t = graph.value_types[value]
    options: List[str] = list(_INSERTABLE_ANYRANK)
    new_name = graph.fresh_node_name("pert_ins")
    out_name = graph.fresh_value_name(f"{new_name}_out")
    op = options[int(rng.integers(0, len(options)))]
    new_node = Node(new_name, op, [value], [out_name])
    if t.rank == 4 and rng.random() < 0.5:
        # occasionally insert a same-channel conv for structural (not just
        # pointwise) perturbation
        c = t.shape[1]
        w_name = graph.fresh_value_name(f"{new_name}_w")
        graph.add_initializer(
            w_name, (np.random.default_rng(int(rng.integers(0, 2**31))).standard_normal((c, c, 3, 3)) * 0.05).astype(np.float32)
        )
        new_node = Node(
            new_name,
            "Conv",
            [value, w_name],
            [out_name],
            {"kernel_shape": (3, 3), "strides": (1, 1), "pads": 1, "group": 1},
        )
    graph.add_node(new_node)
    consumer.replace_input(value, out_name)
    graph._invalidate()
    return True


def _delete_unary(graph: Graph, rng: np.random.Generator) -> bool:
    """Remove a unary shape-preserving node, rewiring its consumers."""
    removable = []
    for node in graph.nodes:
        if len(node.outputs) != 1 or graph.is_graph_output(node.outputs[0]):
            continue
        data_inputs = [i for i in node.inputs if not graph.is_initializer(i)]
        if len(data_inputs) != 1:
            continue
        in_t = graph.value_types.get(data_inputs[0])
        out_t = graph.value_types.get(node.outputs[0])
        if in_t is None or out_t is None or in_t.shape != out_t.shape:
            continue
        removable.append((node, data_inputs[0]))
    if not removable:
        return False
    node, data_in = removable[int(rng.integers(0, len(removable)))]
    graph.remove_node(node)
    graph.replace_all_uses(node.outputs[0], data_in)
    return True


def _swap_activation(graph: Graph, rng: np.random.Generator) -> bool:
    """Replace one activation opcode with a different one."""
    acts = [n for n in graph.nodes if n.op_type in _ACTIVATIONS]
    if not acts:
        return False
    node = acts[int(rng.integers(0, len(acts)))]
    others = [a for a in _ACTIVATIONS if a != node.op_type]
    node.op_type = others[int(rng.integers(0, len(others)))]
    node.attrs = {}
    graph._invalidate()
    return True


_PERTURBATIONS = (_insert_unary, _delete_unary, _swap_activation)


def perturb_subgraph(
    real: Graph,
    rng: np.random.Generator,
    n_edits: Optional[int] = None,
    max_attempts: int = 8,
    name: str = "sentinel_perturbed",
) -> Graph:
    """Produce one perturbation-based sentinel from a real subgraph.

    Applies 1–3 random structural edits and re-validates; retries with a
    fresh clone when an edit sequence produces an invalid graph.
    """
    for _ in range(max_attempts):
        g = real.clone()
        g.name = name
        if not g.value_types:
            infer_shapes(g)
        edits = n_edits if n_edits is not None else int(rng.integers(1, 4))
        applied = 0
        for _ in range(edits * 3):
            if applied >= edits:
                break
            fn = _PERTURBATIONS[int(rng.integers(0, len(_PERTURBATIONS)))]
            try:
                if fn(g, rng):
                    applied += 1
                    infer_shapes(g)
            except Exception:
                break
        if applied == 0:
            continue
        try:
            infer_shapes(g)
            g.outputs = [Value(v.name, g.value_types[v.name]) for v in g.outputs]
            validate_graph(g)
            return g
        except Exception:
            continue
    raise PerturbationError(
        f"could not produce a valid perturbation of {real.name!r} "
        f"in {max_attempts} attempts"
    )
