"""The orchestrating sentinel generator (paper Fig. 1, step 2).

``SentinelGenerator`` wires the whole §4.1.2 pipeline together:

* a **subgraph database** of real subgraphs, built by partitioning a
  corpus of real models (the paper's "Model Subgraph Database");
* a **GraphRNN-lite** topology model fit on the database's topologies,
  used to pre-generate a pool of realistic undirected topologies;
* the **Algorithm 1 sampler** that picks pool topologies statistically
  similar to each protected subgraph;
* the **Algorithm 2 populator** (CSP + likelihood model) that fills
  sampled topologies with syntactically correct, semantically likely
  operators;
* the **perturbation** path for popular-model lookalikes.

``generate(real, k, seed)`` is the interface the Proteus core consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.registry import register_sentinel_strategy, resolve_sentinel_strategy
from ..ir.graph import Graph
from .graphrnn import GraphRNNLite
from .operator_population import assign_operators
from .opseq_model import OpSequenceModel
from .perturbation import PerturbationError, perturb_subgraph
from .topology_sampler import TopologySampler

__all__ = ["SentinelGenerator", "build_subgraph_database", "default_sentinel_source"]


def build_subgraph_database(
    corpus: Sequence[Graph],
    target_subgraph_size: int = 8,
    seed: int = 0,
    trials: int = 4,
) -> List[Graph]:
    """Partition corpus models into the real-subgraph training database."""
    from ..core.partition import karger_stein_partition
    from ..core.subgraph import extract_subgraph
    from ..ir.shape_inference import infer_shapes

    database: List[Graph] = []
    for model in corpus:
        infer_shapes(model)
        n = max(1, model.num_nodes // target_subgraph_size)
        partition = karger_stein_partition(model, n, trials=trials, seed=seed)
        for idx, cluster in enumerate(partition.clusters):
            sub, _ = extract_subgraph(model, cluster, idx)
            database.append(sub)
    return database


class SentinelGenerator:
    """Generates sentinel subgraphs for protected subgraphs.

    Parameters
    ----------
    database:
        Real subgraphs used to train the topology and likelihood models.
        For leave-one-out evaluation, exclude the protected model's
        subgraphs here.
    strategy:
        ``"generate"`` (Alg. 1 + Alg. 2), ``"perturb"``, or ``"mixed"``.
    beta:
        Feature-band width for Algorithm 1.
    pool_size:
        Number of GraphRNN-lite topologies pre-generated for sampling.
    """

    def __init__(
        self,
        database: Sequence[Graph],
        strategy: str = "mixed",
        beta: float = 0.35,
        pool_size: int = 192,
        max_solutions: int = 16,
        likelihood_percentile: float = 50.0,
        seed: int = 0,
    ) -> None:
        if strategy not in ("generate", "perturb", "mixed"):
            raise ValueError(f"unsupported strategy {strategy!r}")
        if not database:
            raise ValueError("sentinel generator needs a non-empty subgraph database")
        self.database = list(database)
        self.strategy = strategy
        self.beta = beta
        self.max_solutions = max_solutions
        self.likelihood_percentile = likelihood_percentile

        self.topology_model = GraphRNNLite().fit(self.database, seed=seed)
        self.pool = self.topology_model.sample_many(pool_size, seed=seed + 1)
        self.sampler = TopologySampler(self.pool)
        vocab = sorted({n.op_type for g in self.database for n in g.nodes})
        self.seq_model = OpSequenceModel(vocab).fit(self.database)

    # -- public API --------------------------------------------------------
    def generate(self, real: Graph, k: int, seed: int = 0) -> List[Graph]:
        """Produce ``k`` sentinel graphs for the protected subgraph ``real``."""
        if k <= 0:
            return []
        rng = np.random.default_rng(seed)
        if self.strategy == "perturb":
            n_generated = 0
        elif self.strategy == "generate":
            n_generated = k
        else:
            n_generated = k - k // 2
        sentinels: List[Graph] = []
        if n_generated > 0:
            sentinels.extend(self._generated(real, n_generated, rng))
        while len(sentinels) < k:
            try:
                sentinels.append(
                    perturb_subgraph(real, rng, name=f"sentinel_p{len(sentinels)}")
                )
            except PerturbationError:
                # fall back to the generative path for stubborn subgraphs
                extra = self._generated(real, 1, rng)
                if not extra:
                    raise
                sentinels.extend(extra)
        return sentinels[:k]

    # -- internals -----------------------------------------------------------
    def _generated(self, real: Graph, count: int, rng: np.random.Generator) -> List[Graph]:
        """Algorithm 1 + Algorithm 2 sentinels, with perturbation fallback."""
        from ..ir.dtypes import DataType

        hints = [
            v.type
            for v in real.inputs
            if v.type is not None
            and v.type.dtype in (DataType.FLOAT32, DataType.FLOAT64)
            and v.type.shape
        ]
        topologies = self.sampler.sample_at_least(real, self.beta, rng, count * 2)
        out: List[Graph] = []
        for topo in topologies:
            if len(out) >= count:
                break
            populated = assign_operators(
                topo.dag,
                self.seq_model,
                rng,
                input_type_hints=hints or None,
                pct=self.likelihood_percentile,
                max_solutions=self.max_solutions,
            )
            if not populated:
                continue
            pick = populated[int(rng.integers(0, len(populated)))]
            pick.graph.name = f"sentinel_g{len(out)}"
            out.append(pick.graph)
        while len(out) < count:
            try:
                out.append(perturb_subgraph(real, rng, name=f"sentinel_f{len(out)}"))
            except PerturbationError:
                break
        return out


# -- registered sentinel strategies -----------------------------------------
#
# Each strategy is a registry entry mapping a ProteusConfig to a trained
# SentinelSource; the CLI derives its --strategy choices from this table
# and third parties add strategies with @register_sentinel_strategy.

_DEFAULT_CACHE: Dict[Tuple[int, str, float, int], SentinelGenerator] = {}


def _zoo_generator(config, strategy: str) -> SentinelGenerator:
    """Build (and cache) a generator trained on the bundled model zoo.

    The cache key covers every config field that affects the trained
    models, so distinct configurations get distinct generators.
    """
    key = (config.target_subgraph_size, strategy, config.beta, config.seed)
    if key in _DEFAULT_CACHE:
        return _DEFAULT_CACHE[key]
    from ..models.zoo import CNN_MODELS, TRANSFORMER_MODELS, build_model

    corpus = [build_model(m) for m in CNN_MODELS + TRANSFORMER_MODELS]
    database = build_subgraph_database(
        corpus, target_subgraph_size=config.target_subgraph_size, seed=config.seed
    )
    gen = SentinelGenerator(
        database,
        strategy=strategy,
        beta=config.beta,
        max_solutions=config.max_solver_solutions,
        likelihood_percentile=config.likelihood_percentile,
        seed=config.seed,
    )
    _DEFAULT_CACHE[key] = gen
    return gen


@register_sentinel_strategy("generate")
def _generate_source(config) -> SentinelGenerator:
    """Algorithm 1 + Algorithm 2 sentinels only (§4.1.2)."""
    return _zoo_generator(config, "generate")


@register_sentinel_strategy("perturb")
def _perturb_source(config) -> SentinelGenerator:
    """Perturbation-only sentinels (the popular-model path)."""
    return _zoo_generator(config, "perturb")


@register_sentinel_strategy("mixed")
def _mixed_source(config) -> SentinelGenerator:
    """Half generated, half perturbed (the paper's standard setting)."""
    return _zoo_generator(config, "mixed")


@register_sentinel_strategy("random")
def _random_source(config) -> SentinelGenerator:
    """Executable stand-in for the Fig. 6 random-opcode baseline.

    True random-opcode sentinels are not executable IR (see
    :mod:`repro.sentinel.random_baseline`, used directly by the adversary
    evaluation); the pipeline therefore falls back to the mixed
    generator, matching the seed behaviour.
    """
    return _zoo_generator(config, "mixed")


def default_sentinel_source(config) -> SentinelGenerator:
    """The sentinel source for ``config`` (resolved through the registry)."""
    return resolve_sentinel_strategy(config.sentinel_strategy)(config)
