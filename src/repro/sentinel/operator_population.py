"""Algorithm 2: ASSIGNOPERATORS — populate a topology with DL operators.

Given a sentinel topology (a DAG from Algorithm 1), enumerate
syntactically valid operator assignments with the CSP solver (the Z3
stand-in), score each complete assignment with the operator-sequence
likelihood model, and keep the top percentile — "operator assignments
that are both syntactically valid and semantically likely".

The returned assignments are *materialized*: each is a complete,
shape-inferred, executable IR graph with freshly synthesized weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..ir.dtypes import DataType, TensorType, numpy_dtype
from ..ir.graph import Graph, Value
from ..ir.node import Node
from ..ir.shape_inference import infer_shapes
from ..ir.validate import validate_graph
from .constraints import SOURCE_SHAPES, NodeChoice, candidate_choices
from .csp import CSPSolver
from .opseq_model import OpSequenceModel

__all__ = ["PopulatedGraph", "assign_operators", "materialize_assignment"]

#: branching cap: candidates kept per node after likelihood ordering.
_MAX_BRANCH = 6


@dataclass
class PopulatedGraph:
    """A materialized operator assignment with its semantic likelihood."""

    graph: Graph
    logprob: float


def _topo_nodes(dag: nx.DiGraph) -> List:
    return list(nx.topological_sort(dag))


def _source_types(
    dag: nx.DiGraph,
    rng: np.random.Generator,
    hints: Optional[Sequence[TensorType]],
) -> Dict[object, TensorType]:
    """Pick an input tensor type for every in-degree-0 node.

    Types come from the protected subgraph's own input signature when
    available (the statistically honest choice), falling back to the
    realistic shape pool.  Later sources reuse the first source's type
    with high probability so downstream merges are satisfiable.
    """
    sources = [v for v in dag.nodes() if dag.in_degree(v) == 0]
    out: Dict[object, TensorType] = {}
    pool: List[TensorType] = list(hints or [])
    if not pool:
        rank_key = rng.choice(list(SOURCE_SHAPES))
        shapes = SOURCE_SHAPES[rank_key]
        pool = [TensorType(DataType.FLOAT32, shapes[int(rng.integers(0, len(shapes)))])]
    primary = pool[int(rng.integers(0, len(pool)))]
    for i, s in enumerate(sources):
        if i == 0 or rng.random() < 0.8:
            out[s] = primary
        else:
            out[s] = pool[int(rng.integers(0, len(pool)))]
    return out


def assign_operators(
    dag: nx.DiGraph,
    seq_model: OpSequenceModel,
    rng: np.random.Generator,
    input_type_hints: Optional[Sequence[TensorType]] = None,
    pct: float = 50.0,
    max_solutions: int = 32,
    budget: int = 8_000,
    temperature: float = 0.6,
) -> List[PopulatedGraph]:
    """Enumerate, score and materialize operator assignments for ``dag``.

    Parameters mirror Algorithm 2's ``(G, pct, max_solns)`` with the
    solver budget and likelihood temperature exposed for tuning.
    Returns the top-``pct`` assignments by likelihood, best first; an
    empty list means the topology is unsatisfiable within budget.
    """
    if dag.number_of_nodes() == 0:
        return []
    order = _topo_nodes(dag)
    position = {v: i for i, v in enumerate(order)}
    src_types = _source_types(dag, rng, input_type_hints)

    def parents_of(v) -> List:
        return sorted(dag.predecessors(v), key=position.__getitem__)

    def domain(var, assignment) -> List[NodeChoice]:
        parents = parents_of(var)
        if parents:
            parent_types = [assignment[p].out_type for p in parents]
            parent_ops = [assignment[p].op_type for p in parents]
        else:
            parent_types = [src_types[var]]
            parent_ops = []
        cands = candidate_choices(parent_types, rng)
        # likelihood-guided value ordering with Gumbel noise for diversity
        scored: List[Tuple[float, NodeChoice]] = []
        for c in cands:
            if parent_ops:
                lp = float(
                    np.mean([seq_model.edge_logprob(p, c.op_type) for p in parent_ops])
                )
            else:
                lp = seq_model.source_logprob(c.op_type)
            c.logprob = lp
            gumbel = -math.log(-math.log(max(rng.random(), 1e-12)))
            scored.append((lp + temperature * gumbel, c))
        scored.sort(key=lambda t: -t[0])
        return [c for _, c in scored[:_MAX_BRANCH]]

    solver = CSPSolver(order, domain, budget=budget)
    edges = [(a, b) for a, b in dag.edges()]
    sources = [v for v in order if dag.in_degree(v) == 0]

    solutions: List[Tuple[float, Dict]] = []
    for assignment in solver.solutions(max_solutions=max_solutions):
        ops = {v: assignment[v].op_type for v in order}
        lp = seq_model.assignment_logprob(edges, ops, sources)
        solutions.append((lp, assignment))
    if not solutions:
        return []
    solutions.sort(key=lambda t: -t[0])
    keep = max(1, int(math.ceil(len(solutions) * pct / 100.0)))
    out: List[PopulatedGraph] = []
    for lp, assignment in solutions[:keep]:
        graph = materialize_assignment(dag, assignment, src_types, rng)
        out.append(PopulatedGraph(graph=graph, logprob=lp))
    return out


def materialize_assignment(
    dag: nx.DiGraph,
    assignment: Dict,
    src_types: Dict[object, TensorType],
    rng: np.random.Generator,
    name: str = "sentinel",
) -> Graph:
    """Build the concrete IR graph for one operator assignment."""
    order = _topo_nodes(dag)
    position = {v: i for i, v in enumerate(order)}
    value_of: Dict[object, str] = {}
    inputs: List[Value] = []
    nodes: List[Node] = []
    initializers: Dict[str, np.ndarray] = {}

    for i, v in enumerate(order):
        choice: NodeChoice = assignment[v]
        parents = sorted(dag.predecessors(v), key=position.__getitem__)
        if parents:
            data_inputs = [value_of[p] for p in parents]
        else:
            in_name = f"in{len(inputs)}"
            inputs.append(Value(in_name, src_types[v]))
            data_inputs = [in_name]
        param_names: List[str] = []
        for j, shape in enumerate(choice.param_shapes):
            pname = f"w{i}_{j}"
            dtype = numpy_dtype(choice.out_type.dtype)
            if choice.op_type == "Pow":
                # non-integer exponents NaN on negative bases; real graphs
                # overwhelmingly use x^2
                arr = np.asarray(2.0, dtype=dtype)
            elif shape == ():
                arr = np.asarray(abs(rng.standard_normal()) + 0.5, dtype=dtype)
            else:
                arr = (rng.standard_normal(shape) * 0.05).astype(dtype)
                if choice.op_type == "BatchNormalization" and j == 3:
                    arr = np.abs(arr) + 0.5  # variance must be positive
                if choice.op_type == "Div":
                    arr = np.abs(arr) + 0.5  # avoid division blowups
            initializers[pname] = arr
            param_names.append(pname)
        all_inputs = (
            data_inputs[: choice.param_position]
            + param_names
            + data_inputs[choice.param_position :]
        )
        nodes.append(Node(f"op{i}", choice.op_type, all_inputs, [f"t{i}"], choice.attrs))
        value_of[v] = f"t{i}"

    sinks = [v for v in order if dag.out_degree(v) == 0]
    graph = Graph(
        name,
        inputs=inputs,
        outputs=[Value(value_of[s]) for s in sinks],
        nodes=nodes,
        initializers=initializers,
    )
    infer_shapes(graph)
    graph.outputs = [Value(v.name, graph.value_types[v.name]) for v in graph.outputs]
    validate_graph(graph)
    return graph
