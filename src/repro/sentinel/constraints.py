"""Syntactic constraints for operator population (the Z3 rule set).

This module is the GENERATERULESET of Algorithm 2: for each topology
node it proposes candidate operator choices — opcode + attributes +
parameter (weight) shapes — that are *syntactically valid* given the
node's dataflow in-degree and its parents' tensor types.  Validity is
certified by running the IR's own shape inference on each candidate, so
the constraint system is exactly as strict as the compiler front-end.

A :class:`NodeChoice` is a fully concrete decision: executing it needs
no further information beyond the parents' values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.dtypes import TensorType
from ..ir.node import Node
from ..ir.shape_inference import ShapeInferenceError, infer_node_types

__all__ = ["NodeChoice", "candidate_choices", "UNARY_OPS", "BINARY_OPS", "SOURCE_SHAPES"]

#: opcodes assignable to nodes with one dataflow input (possibly plus
#: synthesized parameter initializers).
UNARY_OPS: Tuple[str, ...] = (
    "Conv",
    "MaxPool",
    "AveragePool",
    "GlobalAveragePool",
    "BatchNormalization",
    "LayerNormalization",
    "Relu",
    "LeakyRelu",
    "Sigmoid",
    "HardSigmoid",
    "HardSwish",
    "Tanh",
    "Erf",
    "Clip",
    "Softmax",
    "Sqrt",
    "Exp",
    "Neg",
    "Abs",
    "ReduceMean",
    "ReduceSum",
    "MatMul",
    "Gemm",
    "Add",
    "Mul",
    "Sub",
    "Div",
    "Pow",
    "Flatten",
    "Reshape",
    "Transpose",
)

#: opcodes assignable to nodes with two dataflow inputs.
BINARY_OPS: Tuple[str, ...] = ("Add", "Mul", "Sub", "Div", "Concat", "MatMul")

#: realistic source (subgraph-input) shapes by rank class.
SOURCE_SHAPES: Dict[str, Tuple[Tuple[int, ...], ...]] = {
    "4d": ((1, 16, 32, 32), (1, 32, 16, 16), (1, 64, 8, 8), (1, 96, 8, 8), (1, 128, 4, 4)),
    "3d": ((1, 32, 64), (1, 32, 128), (1, 16, 64)),
    "2d": ((1, 128), (1, 256)),
}


@dataclass
class NodeChoice:
    """One concrete operator decision for a topology node."""

    op_type: str
    attrs: Dict[str, object]
    param_shapes: Tuple[Tuple[int, ...], ...]  # synthesized initializer shapes
    param_position: int  # index where params splice into the input list
    out_type: TensorType
    logprob: float = 0.0
    extras: Dict[str, object] = field(default_factory=dict)

    def input_types(self, parent_types: Sequence[TensorType]) -> List[TensorType]:
        """Full input-type list (parents + params) in node order."""
        types = list(parent_types)
        params = [TensorType(self.out_type.dtype, s) for s in self.param_shapes]
        return types[: self.param_position] + params + types[self.param_position :]


def _validated(
    op_type: str,
    attrs: Dict[str, object],
    parent_types: Sequence[TensorType],
    param_shapes: Sequence[Tuple[int, ...]] = (),
    param_position: Optional[int] = None,
) -> Optional[NodeChoice]:
    """Run shape inference on a candidate; None when syntactically invalid."""
    pos = len(parent_types) if param_position is None else param_position
    choice = NodeChoice(
        op_type=op_type,
        attrs=dict(attrs),
        param_shapes=tuple(tuple(s) for s in param_shapes),
        param_position=pos,
        out_type=parent_types[0],  # placeholder, replaced below
    )
    probe = Node(
        "_probe",
        op_type,
        [f"i{k}" for k in range(len(parent_types) + len(param_shapes))],
        ["_o"],
        attrs,
    )
    try:
        out = infer_node_types(probe, choice.input_types(parent_types))
    except (ShapeInferenceError, KeyError, ValueError):
        return None
    choice.out_type = out[0]
    return choice


def _channel_options(c: int, rng: np.random.Generator) -> List[int]:
    opts = sorted({max(1, c // 2), c, min(512, 2 * c)})
    rng.shuffle(opts)
    return opts


def _unary_candidates(
    op: str, x: TensorType, rng: np.random.Generator
) -> List[NodeChoice]:
    """Candidate attribute/parameter configurations for a unary op."""
    out: List[NodeChoice] = []

    def add(attrs: Dict[str, object], params: Sequence[Tuple[int, ...]] = ()) -> None:
        c = _validated(op, attrs, [x], params)
        if c is not None:
            out.append(c)

    if op == "Conv":
        if x.rank == 4:
            cin = x.shape[1]
            for m in _channel_options(cin, rng)[:2]:
                k = int(rng.choice([1, 3, 3, 5]))
                stride = int(rng.choice([1, 1, 2]))
                add(
                    {"kernel_shape": (k, k), "strides": (stride, stride), "pads": k // 2, "group": 1},
                    [(m, cin, k, k), (m,)],
                )
            # depthwise variant
            k = 3
            add(
                {"kernel_shape": (k, k), "strides": (1, 1), "pads": 1, "group": cin},
                [(cin, 1, k, k), (cin,)],
            )
    elif op in ("MaxPool", "AveragePool"):
        if x.rank == 4:
            k = int(rng.choice([2, 3, 3]))
            stride = int(rng.choice([1, 2]))
            add({"kernel_shape": (k, k), "strides": (stride, stride), "pads": k // 2})
    elif op == "GlobalAveragePool":
        add({})
    elif op == "BatchNormalization":
        if x.rank >= 2:
            c = x.shape[1]
            add({"epsilon": 1e-5}, [(c,), (c,), (c,), (c,)])
    elif op == "LayerNormalization":
        if x.rank >= 1 and x.shape:
            d = x.shape[-1]
            add({"axis": -1, "epsilon": 1e-5}, [(d,), (d,)])
    elif op in ("Relu", "LeakyRelu", "Sigmoid", "HardSigmoid", "HardSwish", "Tanh",
                "Erf", "Sqrt", "Exp", "Neg", "Abs"):
        add({})
    elif op == "Clip":
        add({"min": 0.0, "max": 6.0})
    elif op == "Softmax":
        add({"axis": -1})
    elif op in ("ReduceMean", "ReduceSum"):
        if x.rank >= 2:
            axes = (2, 3) if x.rank == 4 else (-1,)
            add({"axes": axes, "keepdims": 1})
    elif op == "MatMul":
        if x.rank >= 2:
            k_dim = x.shape[-1]
            for n in _channel_options(k_dim, rng)[:2]:
                add({}, [(k_dim, n)])
    elif op == "Gemm":
        if x.rank == 2:
            k_dim = x.shape[1]
            for n in _channel_options(k_dim, rng)[:2]:
                add(
                    {"alpha": 1.0, "beta": 1.0, "transA": 0, "transB": 0},
                    [(k_dim, n), (n,)],
                )
    elif op in ("Add", "Mul", "Sub", "Div", "Pow"):
        # parameterized elementwise: bias / scale / scalar constant
        if op == "Pow":
            add({}, [()])
        elif x.rank == 4:
            add({}, [(x.shape[1], 1, 1)])
        elif x.rank >= 1 and x.shape:
            add({}, [(x.shape[-1],)])
        add({}, [()])
    elif op == "Flatten":
        if x.rank > 2:
            add({"axis": 1})
    elif op == "Reshape":
        if x.rank == 4 and x.shape[2] == x.shape[3] and x.shape[1] > 1:
            # channel split: [N, C, H, W] -> [N, C/2, 2, H, W] style merge
            add({"shape": (x.shape[0], -1, x.shape[2] * x.shape[3])})
        elif x.rank == 3:
            add({"shape": (x.shape[0], -1)})
    elif op == "Transpose":
        if x.rank == 3:
            add({"perm": (0, 2, 1)})
        elif x.rank == 4:
            add({"perm": (0, 1, 3, 2)})
    return out


def _binary_candidates(
    op: str, parent_types: Sequence[TensorType], rng: np.random.Generator
) -> List[NodeChoice]:
    out: List[NodeChoice] = []
    attrs: Dict[str, object]
    if op == "Concat":
        for axis in (1, -1):
            c = _validated("Concat", {"axis": axis}, parent_types)
            if c is not None:
                out.append(c)
                break
    else:
        attrs = {}
        c = _validated(op, attrs, parent_types)
        if c is not None:
            out.append(c)
    return out


def candidate_choices(
    parent_types: Sequence[TensorType],
    rng: np.random.Generator,
    allowed_unary: Sequence[str] = UNARY_OPS,
    allowed_binary: Sequence[str] = BINARY_OPS,
) -> List[NodeChoice]:
    """All syntactically valid choices for a node with the given parents.

    Non-float parents (int64 token ids) admit no tensor-math candidates:
    sentinel bodies are float dataflow, like the real subgraph bodies
    they imitate.
    """
    from ..ir.dtypes import DataType

    if any(t.dtype not in (DataType.FLOAT32, DataType.FLOAT64) for t in parent_types):
        return []
    choices: List[NodeChoice] = []
    if len(parent_types) == 1:
        for op in allowed_unary:
            choices.extend(_unary_candidates(op, parent_types[0], rng))
    else:
        for op in allowed_binary:
            if op == "Concat" or len(parent_types) == 2:
                choices.extend(_binary_candidates(op, parent_types, rng))
    return choices
