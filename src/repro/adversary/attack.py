"""The learning-based attack protocol and search-space arithmetic (§5.3.2).

The adversary's task: for each of the ``n`` buckets, decide which of the
``k+1`` subgraphs is real.  With a classifier emitting sentinel
confidence ``y``, it fixes a decision boundary ``gamma`` and eliminates
graphs with ``y >= gamma``.  It must not eliminate any real subgraph
(that would remove the true model from its search space), so we grant
the pessimistic assumption of §A.6: the adversary magically knows the
*minimum* workable ``gamma`` — just above the highest confidence the
classifier assigns to any real subgraph.

With sensitivity forced to 1, each bucket retains the real subgraph
plus ``(1 - beta) * k`` surviving sentinels, so the remaining search
space is ``[1 + (1 - beta) k]^n`` (Fig. 6's "Candidates" column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .gnn import GNNClassifier, encode_graph
from .opgraph import to_opgraph

__all__ = ["AttackReport", "run_attack", "search_space_size"]


def search_space_size(n: int, k: int, specificity: float) -> float:
    """``[1 + (1 - specificity) * k] ** n`` — candidates after elimination."""
    if not 0.0 <= specificity <= 1.0:
        raise ValueError("specificity must be in [0, 1]")
    per_bucket = 1.0 + (1.0 - specificity) * k
    return per_bucket**n


@dataclass
class AttackReport:
    """Outcome of one attack on one protected model (a Fig. 6 row)."""

    model_name: str
    n: int
    k: int
    gamma: float  # minimal threshold keeping every real subgraph
    sensitivity: float  # real subgraphs kept (1.0 by construction of gamma)
    specificity: float  # sentinels eliminated at gamma
    candidates: float  # [1 + (1-specificity) k]^n
    real_scores: List[float]
    sentinel_scores: List[float]

    @property
    def log10_candidates(self) -> float:
        return math.log10(self.candidates) if self.candidates > 0 else float("-inf")

    def summary(self) -> str:
        return (
            f"{self.model_name}: n={self.n} k={self.k} gamma={self.gamma:.3f} "
            f"specificity={self.specificity:.3f} candidates={self.candidates:.2e}"
        )


def run_attack(
    model: GNNClassifier,
    real_subgraphs: Sequence,
    sentinel_groups: Sequence[Sequence],
    model_name: str = "protected",
) -> AttackReport:
    """Attack one protected model.

    Parameters
    ----------
    real_subgraphs:
        The ``n`` real subgraphs (IR graphs or opcode DAGs).
    sentinel_groups:
        For each real subgraph, its ``k`` sentinels.
    """
    if len(real_subgraphs) != len(sentinel_groups):
        raise ValueError("one sentinel group per real subgraph required")
    n = len(real_subgraphs)
    ks = {len(g) for g in sentinel_groups}
    if len(ks) != 1:
        raise ValueError(f"ragged sentinel groups: {sorted(ks)}")
    k = ks.pop()

    real_scores = model.predict_proba(
        [encode_graph(to_opgraph(g), model.vocab_index) for g in real_subgraphs]
    )
    sentinel_scores = model.predict_proba(
        [
            encode_graph(to_opgraph(s), model.vocab_index)
            for group in sentinel_groups
            for s in group
        ]
    )
    # minimal gamma keeping alpha = 1: just above the worst real score.
    gamma = float(np.nextafter(real_scores.max(), np.inf)) if n else 1.0
    eliminated = sentinel_scores >= gamma
    specificity = float(eliminated.mean()) if sentinel_scores.size else 0.0
    return AttackReport(
        model_name=model_name,
        n=n,
        k=k,
        gamma=gamma,
        sensitivity=1.0,
        specificity=specificity,
        candidates=search_space_size(n, k, specificity),
        real_scores=[float(s) for s in real_scores],
        sentinel_scores=[float(s) for s in sentinel_scores],
    )
