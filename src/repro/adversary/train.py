"""Training loop for the GNN adversary: Adam + binary cross-entropy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .gnn import GNNClassifier, GraphEncoding, encode_graph
from .opgraph import LabeledDataset, opcode_vocabulary

__all__ = ["AdamState", "TrainResult", "train_classifier", "evaluate_classifier"]


class AdamState:
    """Adam moment buffers over a parameter dict."""

    def __init__(self, params: Dict[str, np.ndarray], lr: float = 1e-2,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8) -> None:
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        self.t += 1
        for k, g in grads.items():
            self.m[k] = self.beta1 * self.m[k] + (1 - self.beta1) * g
            self.v[k] = self.beta2 * self.v[k] + (1 - self.beta2) * g * g
            m_hat = self.m[k] / (1 - self.beta1**self.t)
            v_hat = self.v[k] / (1 - self.beta2**self.t)
            params[k] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass
class TrainResult:
    """Trained classifier + the loss curve (for convergence checks)."""

    model: GNNClassifier
    losses: List[float]
    encodings: List[GraphEncoding]


def _bce(prob: float, label: float) -> float:
    p = min(max(prob, 1e-9), 1 - 1e-9)
    return -(label * np.log(p) + (1 - label) * np.log(1 - p))


def train_classifier(
    dataset: LabeledDataset,
    epochs: int = 60,
    lr: float = 1e-2,
    batch_size: int = 16,
    embed_dim: int = 24,
    hidden_dim: int = 32,
    seed: int = 0,
    vocab: Optional[Sequence[str]] = None,
) -> TrainResult:
    """Train a GNN sentinel-vs-real classifier on ``dataset``.

    Gradients are averaged over minibatches of whole graphs (graphs have
    heterogeneous sizes, so batching is at graph granularity).
    """
    if len(dataset) < 2:
        raise ValueError("dataset too small to train on")
    vocab = tuple(vocab) if vocab is not None else opcode_vocabulary([dataset])
    model = GNNClassifier(vocab, embed_dim=embed_dim, hidden_dim=hidden_dim, seed=seed)
    encodings = [encode_graph(g, model.vocab_index) for g in dataset.graphs]
    labels = np.asarray(dataset.labels, dtype=float)
    adam = AdamState(model.params, lr=lr)
    rng = np.random.default_rng(seed)
    losses: List[float] = []
    n = len(encodings)
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            grads: Dict[str, np.ndarray] = {
                k: np.zeros_like(v) for k, v in model.params.items()
            }
            for i in batch:
                prob, cache = model.forward(encodings[i])
                epoch_loss += _bce(prob, labels[i])
                g = model.backward(encodings[i], cache, prob, labels[i])
                for k in grads:
                    grads[k] += g[k] / len(batch)
            adam.step(model.params, grads)
        losses.append(epoch_loss / n)
    return TrainResult(model=model, losses=losses, encodings=encodings)


def evaluate_classifier(
    model: GNNClassifier, dataset: LabeledDataset
) -> Dict[str, float]:
    """Accuracy / sensitivity / specificity at threshold 0.5."""
    encs = [encode_graph(g, model.vocab_index) for g in dataset.graphs]
    probs = model.predict_proba(encs)
    labels = np.asarray(dataset.labels)
    preds = (probs >= 0.5).astype(int)
    acc = float((preds == labels).mean())
    real_mask = labels == 0
    fake_mask = labels == 1
    sensitivity = float((preds[real_mask] == 0).mean()) if real_mask.any() else float("nan")
    specificity = float((preds[fake_mask] == 1).mean()) if fake_mask.any() else float("nan")
    return {"accuracy": acc, "sensitivity": sensitivity, "specificity": specificity}
