"""Dataset construction for adversary experiments (§5.3.2 protocol).

"We task PROTEUS with protecting one model at a time ... we test the
adversary on the protected model after training the classifier model on
the remaining models."  This module builds those leave-one-out splits:
real subgraphs come from partitioning zoo models; fakes come either
from the full Proteus sentinel pipeline or from the random-opcode
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ir.graph import Graph
from ..sentinel.generator import SentinelGenerator, build_subgraph_database
from ..sentinel.random_baseline import random_opcode_sentinels
from ..sentinel.orientation import induce_orientation
from .opgraph import LabeledDataset, to_opgraph

__all__ = ["LeaveOneOutData", "build_leave_one_out", "subgraphs_of"]


def subgraphs_of(model: Graph, target_size: int = 8, seed: int = 0) -> List[Graph]:
    """Partition one model into its real subgraphs."""
    return build_subgraph_database([model], target_subgraph_size=target_size, seed=seed)


@dataclass
class LeaveOneOutData:
    """Everything one Fig. 6 row needs for one protected model."""

    protected_name: str
    train: LabeledDataset  # real+fake subgraphs of the *other* models
    protected_reals: List[Graph]  # the protected model's real subgraphs
    protected_sentinel_groups: List[List]  # k fakes per real subgraph


def build_leave_one_out(
    protected_name: str,
    corpus: Dict[str, Graph],
    k: int,
    mode: str = "proteus",
    target_size: int = 8,
    train_fakes_per_real: int = 2,
    seed: int = 0,
    generator: Optional[SentinelGenerator] = None,
) -> LeaveOneOutData:
    """Build train/attack data for one protected model.

    Parameters
    ----------
    mode:
        ``"proteus"`` — fakes from the full sentinel pipeline;
        ``"random"`` — fakes with random opcodes (the Fig. 6 baseline).
    generator:
        Optional pre-built generator (must be trained without the
        protected model) to avoid refitting per call.
    """
    if protected_name not in corpus:
        raise KeyError(f"{protected_name!r} not in corpus")
    if mode not in ("proteus", "random"):
        raise ValueError(f"mode must be 'proteus' or 'random', got {mode!r}")
    rng = np.random.default_rng(seed)

    others = {name: g for name, g in corpus.items() if name != protected_name}
    train_reals: List[Graph] = []
    for _name, g in sorted(others.items()):
        train_reals.extend(subgraphs_of(g, target_size, seed=seed))

    if generator is None:
        gen_db = list(train_reals)
        generator = SentinelGenerator(gen_db, strategy="mixed", seed=seed)

    def make_fakes(real: Graph, count: int) -> List:
        if mode == "proteus":
            return generator.generate(real, count, seed=int(rng.integers(0, 2**31)))
        topos = [induce_orientation(t) for t in generator.pool[:64]]
        return random_opcode_sentinels(topos, count, seed=int(rng.integers(0, 2**31)))

    train_fakes: List = []
    for real in train_reals:
        train_fakes.extend(make_fakes(real, train_fakes_per_real))
    train = LabeledDataset.from_parts(train_reals, train_fakes)

    protected_reals = subgraphs_of(corpus[protected_name], target_size, seed=seed)
    groups: List[List] = [make_fakes(real, k) for real in protected_reals]
    return LeaveOneOutData(
        protected_name=protected_name,
        train=train,
        protected_reals=protected_reals,
        protected_sentinel_groups=groups,
    )
