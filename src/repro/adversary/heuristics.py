"""Heuristic "expert" classifiers — the scripted stand-in for the user
survey (§5.3.3 / A.8).

The survey asks ML researchers to eyeball 20 graphs and label each real
or fake.  What a human expert can check by inspection is exactly what
these heuristics encode: does the degree profile look like a DL graph,
do operator bigrams look plausible, is the Conv/BN/activation rhythm
right, do channel counts follow power-of-two-ish conventions.  A panel
of such experts scoring ~50% accuracy reproduces the survey's finding
that visual inspection cannot separate Proteus sentinels from real
subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from ..sentinel.features import graph_features
from ..sentinel.opseq_model import OpSequenceModel
from .opgraph import to_opgraph

__all__ = ["HeuristicExpert", "expert_panel", "run_survey"]

_ACTIVATIONS = {"Relu", "LeakyRelu", "Sigmoid", "HardSigmoid", "HardSwish", "Tanh", "Clip", "Gelu", "Erf"}


@dataclass
class HeuristicExpert:
    """One scripted expert: scores a graph, higher = more likely fake."""

    name: str
    score_fn: Callable[[nx.DiGraph], float]
    threshold: float

    def classify(self, graph) -> int:
        """1 = judged fake (sentinel), 0 = judged real."""
        return int(self.score_fn(to_opgraph(graph)) > self.threshold)


def _ops(g: nx.DiGraph) -> List[str]:
    return [g.nodes[v]["op_type"] for v in g.nodes()]


def _degree_expert(g: nx.DiGraph) -> float:
    """DL graphs are sparse chains: penalize unusual degree statistics."""
    f = graph_features(g)
    score = 0.0
    if f.average_degree > 2.6 or f.average_degree < 1.0:
        score += 1.0
    if f.clustering_coefficient > 0.25:
        score += 1.0
    indegs = [d for _, d in g.in_degree()]
    if indegs and max(indegs) > 4:
        score += 1.0
    return score


def _rhythm_expert(g: nx.DiGraph) -> float:
    """Check the conv/norm/activation cadence of vision graphs."""
    ops = _ops(g)
    n = len(ops)
    if n == 0:
        return 1.0
    convs = sum(1 for o in ops if o in ("Conv", "FusedConv"))
    acts = sum(1 for o in ops if o in _ACTIVATIONS)
    score = 0.0
    # back-to-back identical activations are suspicious
    order = list(nx.topological_sort(g))
    for a, b in g.edges():
        if g.nodes[a]["op_type"] in _ACTIVATIONS and g.nodes[a]["op_type"] == g.nodes[b]["op_type"]:
            score += 1.0
    if convs and acts == 0:
        score += 0.5
    if acts > convs + 4:
        score += 0.5
    del order
    return score


def _rare_op_expert(g: nx.DiGraph) -> float:
    """Flag ops rare in exported models or rare op mixtures."""
    ops = _ops(g)
    rare = {"Neg", "Abs", "Exp", "Log", "Pow"}
    mix_vision = any(o in ("Conv", "MaxPool") for o in ops)
    mix_text = any(o in ("LayerNormalization", "Softmax", "Gather") for o in ops)
    score = sum(0.7 for o in ops if o in rare)
    if mix_vision and mix_text:
        score += 1.0
    return score


def _make_bigram_expert(reference: Sequence) -> Callable[[nx.DiGraph], float]:
    """An expert who memorized common operator sequences of public models."""
    from ..ir.graph import Graph

    ir_refs = [g for g in reference if isinstance(g, Graph)]
    vocab = sorted({n.op_type for g in ir_refs for n in g.nodes}) or ["Conv"]
    model = OpSequenceModel(vocab).fit(ir_refs)

    def score(g: nx.DiGraph) -> float:
        total, count = 0.0, 0
        for a, b in g.edges():
            total += model.edge_logprob(g.nodes[a]["op_type"], g.nodes[b]["op_type"])
            count += 1
        if count == 0:
            return 0.0
        return -(total / count)  # high negative log-likelihood = fake-looking

    return score


def expert_panel(reference: Sequence, n_experts: int = 13, seed: int = 0) -> List[HeuristicExpert]:
    """A panel of ``n_experts`` scripted survey participants.

    Experts differ in which heuristic they lean on and how aggressive
    their threshold is — mirroring inter-rater variance in the survey.
    """
    rng = np.random.default_rng(seed)
    bigram = _make_bigram_expert(reference)
    base: List[Tuple[str, Callable[[nx.DiGraph], float], float]] = [
        ("degree", _degree_expert, 0.5),
        ("rhythm", _rhythm_expert, 0.5),
        ("rare-ops", _rare_op_expert, 1.0),
        ("bigram", bigram, 4.0),
    ]
    panel: List[HeuristicExpert] = []
    for i in range(n_experts):
        name, fn, thr = base[i % len(base)]
        jitter = float(rng.normal(0.0, 0.3))
        panel.append(HeuristicExpert(f"{name}-{i}", fn, max(0.1, thr + jitter)))
    return panel


def run_survey(
    panel: Sequence[HeuristicExpert],
    graphs: Sequence,
    labels: Sequence[int],
) -> Dict[str, float]:
    """Run the §A.8 survey: per-expert accuracy over a graph panel.

    Returns mean/min/max accuracy across experts (paper reports 52%
    mean over 13 participants).
    """
    if len(graphs) != len(labels):
        raise ValueError("graphs and labels length mismatch")
    accs = []
    for expert in panel:
        preds = [expert.classify(g) for g in graphs]
        accs.append(float(np.mean([p == l for p, l in zip(preds, labels)])))
    return {
        "mean_accuracy": float(np.mean(accs)),
        "min_accuracy": float(np.min(accs)),
        "max_accuracy": float(np.max(accs)),
        "n_experts": float(len(panel)),
    }
