"""Adversarial evaluation: the GNN attack (§5.3.2) and heuristics (§5.3.3)."""

from .opgraph import LabeledDataset, opcode_vocabulary, to_opgraph
from .gnn import GNNClassifier, GraphEncoding, encode_graph
from .train import AdamState, TrainResult, evaluate_classifier, train_classifier
from .attack import AttackReport, run_attack, search_space_size
from .dataset import LeaveOneOutData, build_leave_one_out, subgraphs_of
from .heuristics import HeuristicExpert, expert_panel, run_survey

__all__ = [
    "LabeledDataset",
    "to_opgraph",
    "opcode_vocabulary",
    "GNNClassifier",
    "GraphEncoding",
    "encode_graph",
    "train_classifier",
    "evaluate_classifier",
    "TrainResult",
    "AdamState",
    "AttackReport",
    "run_attack",
    "search_space_size",
    "LeaveOneOutData",
    "build_leave_one_out",
    "subgraphs_of",
    "HeuristicExpert",
    "expert_panel",
    "run_survey",
]
