"""Numpy GraphSAGE classifier (paper Fig. 7) with manual backprop.

Architecture, exactly as the paper describes: operator embedding →
SAGEConv graph convolutions (learning local-neighbourhood features) →
mean node reduction into a graph representation → linear head →
probability that the graph is a sentinel.

SAGEConv (Hamilton et al., 2018) layer::

    h_v' = relu(W_self h_v + W_neigh mean_{u in N(v)} h_u + b)

Neighbourhoods are undirected (both dataflow directions), matching the
torch-geometric default the artifact uses.  Everything is dense numpy —
subgraphs have tens of nodes, so dense [n, n] aggregation matrices are
the vectorized-sane choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

__all__ = ["GNNClassifier", "GraphEncoding", "encode_graph"]


@dataclass
class GraphEncoding:
    """Preprocessed inputs for one graph: opcode ids + aggregation matrix."""

    op_ids: np.ndarray  # [n] int
    agg: np.ndarray  # [n, n] row-normalized undirected adjacency


def encode_graph(g: nx.DiGraph, vocab_index: Dict[str, int]) -> GraphEncoding:
    """Encode an opcode-annotated DAG for the classifier.

    Unknown opcodes map to a shared OOV id (the last vocab slot).
    """
    nodes = list(g.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    oov = len(vocab_index)
    op_ids = np.array(
        [vocab_index.get(g.nodes[v]["op_type"], oov) for v in nodes], dtype=np.int64
    )
    agg = np.zeros((n, n))
    for a, b in g.edges():
        ia, ib = index[a], index[b]
        agg[ia, ib] = 1.0
        agg[ib, ia] = 1.0
    deg = agg.sum(axis=1, keepdims=True)
    np.divide(agg, deg, out=agg, where=deg > 0)
    return GraphEncoding(op_ids=op_ids, agg=agg)


class GNNClassifier:
    """Two-layer GraphSAGE + mean reduction + linear head, in numpy."""

    def __init__(
        self,
        vocab: Sequence[str],
        embed_dim: int = 24,
        hidden_dim: int = 32,
        n_layers: int = 2,
        seed: int = 0,
    ) -> None:
        if n_layers < 1:
            raise ValueError("need at least one SAGE layer")
        self.vocab: Tuple[str, ...] = tuple(vocab)
        self.vocab_index: Dict[str, int] = {op: i for i, op in enumerate(self.vocab)}
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.n_layers = n_layers
        rng = np.random.default_rng(seed)
        v = len(self.vocab) + 1  # +1 OOV row

        def glorot(shape):
            scale = np.sqrt(6.0 / sum(shape))
            return rng.uniform(-scale, scale, size=shape)

        self.params: Dict[str, np.ndarray] = {"embed": glorot((v, embed_dim))}
        d_in = embed_dim
        for layer in range(n_layers):
            self.params[f"w_self{layer}"] = glorot((d_in, hidden_dim))
            self.params[f"w_neigh{layer}"] = glorot((d_in, hidden_dim))
            self.params[f"b{layer}"] = np.zeros(hidden_dim)
            d_in = hidden_dim
        self.params["w_out"] = glorot((hidden_dim, 1))
        self.params["b_out"] = np.zeros(1)

    # -- forward --------------------------------------------------------------
    def forward(self, enc: GraphEncoding) -> Tuple[float, Dict[str, np.ndarray]]:
        """Sentinel probability for one graph, plus a backprop cache."""
        cache: Dict[str, np.ndarray] = {}
        x = self.params["embed"][enc.op_ids]  # [n, d]
        cache["x0"] = x
        for layer in range(self.n_layers):
            neigh = enc.agg @ x
            z = (
                x @ self.params[f"w_self{layer}"]
                + neigh @ self.params[f"w_neigh{layer}"]
                + self.params[f"b{layer}"]
            )
            h = np.maximum(z, 0.0)
            cache[f"neigh{layer}"] = neigh
            cache[f"z{layer}"] = z
            cache[f"x{layer + 1}"] = h
            x = h
        g_repr = x.mean(axis=0)  # mean node reduction
        logit = float(g_repr @ self.params["w_out"][:, 0] + self.params["b_out"][0])
        cache["g_repr"] = g_repr
        cache["logit"] = np.array([logit])
        prob = 1.0 / (1.0 + np.exp(-logit))
        return prob, cache

    def predict_proba(self, encodings: Sequence[GraphEncoding]) -> np.ndarray:
        """Sentinel probabilities for a batch of graphs."""
        return np.array([self.forward(e)[0] for e in encodings])

    # -- backward ---------------------------------------------------------------
    def backward(
        self, enc: GraphEncoding, cache: Dict[str, np.ndarray], prob: float, label: float
    ) -> Dict[str, np.ndarray]:
        """Gradients of BCE(prob, label) w.r.t. every parameter."""
        grads: Dict[str, np.ndarray] = {}
        n = enc.op_ids.shape[0]
        dlogit = prob - label  # d BCE / d logit for sigmoid outputs
        g_repr = cache["g_repr"]
        grads["w_out"] = (g_repr * dlogit)[:, None]
        grads["b_out"] = np.array([dlogit])
        dg = self.params["w_out"][:, 0] * dlogit  # [hidden]
        dx = np.tile(dg / n, (n, 1))  # gradient through mean reduction
        for layer in reversed(range(self.n_layers)):
            z = cache[f"z{layer}"]
            dz = dx * (z > 0)
            x_prev = cache[f"x{layer}"]
            neigh = cache[f"neigh{layer}"]
            grads[f"w_self{layer}"] = x_prev.T @ dz
            grads[f"w_neigh{layer}"] = neigh.T @ dz
            grads[f"b{layer}"] = dz.sum(axis=0)
            dx_prev = dz @ self.params[f"w_self{layer}"].T
            dneigh = dz @ self.params[f"w_neigh{layer}"].T
            dx_prev += enc.agg.T @ dneigh
            dx = dx_prev
        dembed = np.zeros_like(self.params["embed"])
        np.add.at(dembed, enc.op_ids, dx)
        grads["embed"] = dembed
        return grads

    # -- persistence helpers for tests -----------------------------------------------
    def get_params(self) -> Dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self.params.items()}

    def set_params(self, params: Dict[str, np.ndarray]) -> None:
        for k in self.params:
            self.params[k] = params[k].copy()
