"""The adversary's view of a subgraph: an opcode-annotated DAG.

The optimizer party (and hence the adversary) sees anonymized graphs —
operator types, attributes and connectivity, but no meaningful names.
For classification, the relevant signal is (opcode, topology), which we
capture as a networkx DiGraph whose nodes carry an ``op_type``
attribute.  Both real subgraphs and sentinels convert to this format;
the random-opcode baseline produces it natively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx

from ..ir.graph import Graph

__all__ = ["to_opgraph", "LabeledDataset", "opcode_vocabulary"]


def to_opgraph(graph: "Graph | nx.DiGraph") -> nx.DiGraph:
    """Convert an IR graph (or pass through a DiGraph) to adversary format."""
    if isinstance(graph, nx.DiGraph):
        for v in graph.nodes():
            if "op_type" not in graph.nodes[v]:
                raise ValueError(f"node {v!r} lacks an op_type attribute")
        return graph
    return graph.to_networkx()  # nodes carry op_type already


@dataclass
class LabeledDataset:
    """Binary-labelled graphs: label 1 = sentinel (fake), 0 = real."""

    graphs: List[nx.DiGraph]
    labels: List[int]

    def __post_init__(self) -> None:
        if len(self.graphs) != len(self.labels):
            raise ValueError("graphs and labels length mismatch")

    def __len__(self) -> int:
        return len(self.graphs)

    @classmethod
    def from_parts(
        cls, reals: Sequence, fakes: Sequence
    ) -> "LabeledDataset":
        graphs = [to_opgraph(g) for g in reals] + [to_opgraph(g) for g in fakes]
        labels = [0] * len(reals) + [1] * len(fakes)
        return cls(graphs, labels)

    def merged_with(self, other: "LabeledDataset") -> "LabeledDataset":
        return LabeledDataset(self.graphs + other.graphs, self.labels + other.labels)


def opcode_vocabulary(datasets: Sequence[LabeledDataset]) -> Tuple[str, ...]:
    """Sorted opcode vocabulary over one or more datasets."""
    ops = set()
    for ds in datasets:
        for g in ds.graphs:
            for v in g.nodes():
                ops.add(g.nodes[v]["op_type"])
    return tuple(sorted(ops))
