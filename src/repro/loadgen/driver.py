"""Replay a workload against an optimizer endpoint, concurrently.

The driver is the *model-owner side* of a load test: it materializes the
workload's distinct (model, variant) pairs as sealed bucket manifests
(setup, untimed), then replays the request schedule against any
:class:`~repro.api.endpoint.OptimizerEndpoint` — in-process, spool
directory, HTTP server or multi-process fleet — with a thread pool of
``spec.clients`` callers:

* closed-loop workloads: every caller issues its next request the
  moment the previous receipt lands;
* open-loop workloads (poisson/bursty): a dispatcher thread releases
  each request at its scheduled arrival offset; when the service falls
  behind, arrivals queue behind the in-flight ceiling instead of
  backing off (the open-loop point), which shows up as submit drift
  (``submitted_s`` - ``scheduled_s``) on top of per-request latency.

Per request it records submit→receipt latency into a fixed-bucket
:class:`~repro.loadgen.histogram.LatencyHistogram` and tallies
structured error codes; a sampler thread snapshots the endpoint's
``metrics()`` every ``sample_interval`` seconds so reports can plot
cache-hit rate and goodput *over time*, not just at the end.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..api.manifest import BucketManifest
from ..api.wire import EndpointError
from ..obs.trace import get_tracer
from .histogram import LatencyHistogram
from .workload import Workload

__all__ = [
    "RequestOutcome",
    "LoadTestResult",
    "build_workload_manifests",
    "run_loadtest",
]

#: error tags for failures that are not structured EndpointErrors.
ERROR_TIMEOUT = "timeout"
ERROR_CONNECTION = "connection_error"
ERROR_CLIENT = "client_error"


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one replayed request."""

    index: int
    model: str
    variant: int
    scheduled_s: float  # planned arrival offset
    submitted_s: float  # actual submit offset from test start
    latency_s: Optional[float] = None  # submit -> receipt; None on failure
    error: Optional[str] = None  # structured code; None on success

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class LoadTestResult:
    """Everything one replay measured (the report builder's input)."""

    workload: Workload
    endpoint_uri: str
    transport: str
    started_unix: float
    duration_s: float
    outcomes: List[RequestOutcome]
    histogram: LatencyHistogram
    error_codes: Dict[str, int]
    max_in_flight: int
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    final_metrics: Optional[Dict[str, Any]] = None
    #: request index -> receipt, populated only with ``keep_receipts``.
    receipts: Dict[int, Any] = field(default_factory=dict)
    #: the endpoint's client-side backpressure tally (sheds seen,
    #: retries performed, submits given up on) — how much admission
    #: control shaped this replay.  See OptimizerEndpoint.client_stats.
    client_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        """Requests that ultimately failed as ``overloaded`` (graceful
        sheds — the service said "not now", not "broken")."""
        return self.error_codes.get("overloaded", 0)

    @property
    def succeeded(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return len(self.outcomes) - self.succeeded

    @property
    def throughput_rps(self) -> float:
        return self.succeeded / self.duration_s if self.duration_s > 0 else 0.0


def build_workload_manifests(
    workload: Workload,
) -> Dict[Tuple[str, int], BucketManifest]:
    """Sealed manifests for every distinct (model, variant) pair.

    Obfuscation seed = ``spec.seed + variant``, so the artifacts are a
    pure function of the workload — two drivers replaying the same
    ``workload.json`` submit byte-identical buckets.
    """
    from ..api.clients import ModelOwner
    from ..core import ProteusConfig
    from ..models import build_model

    spec = workload.spec
    manifests: Dict[Tuple[str, int], BucketManifest] = {}
    for model, variant in workload.distinct_buckets:
        owner = ModelOwner(
            ProteusConfig(
                k=spec.k,
                target_subgraph_size=spec.subgraph_size,
                seed=spec.seed + variant,
            )
        )
        result = owner.obfuscate(build_model(model))
        manifests[(model, variant)] = BucketManifest.from_bucket(result.bucket)
    return manifests


class _ConcurrencyGauge:
    """Thread-safe in-flight counter that remembers its high-water mark."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.current = 0
        self.peak = 0

    def __enter__(self) -> "_ConcurrencyGauge":
        with self._lock:
            self.current += 1
            self.peak = max(self.peak, self.current)
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self.current -= 1


def _error_tag(exc: BaseException) -> str:
    if isinstance(exc, EndpointError):
        return exc.code
    if isinstance(exc, TimeoutError):
        return ERROR_TIMEOUT
    if isinstance(exc, ConnectionError):
        return ERROR_CONNECTION
    return ERROR_CLIENT


def _sample(endpoint, t_s: float) -> Optional[Dict[str, Any]]:
    """One timeline point from the endpoint's normalized counters."""
    try:
        metrics = endpoint.metrics()
    except Exception:  # a flaky metrics call must never fail the test
        return None
    counters = metrics.get("counters") if isinstance(metrics, dict) else None
    if not isinstance(counters, dict):
        counters = {}
    optimized = counters.get("entries_optimized", 0)
    hits = counters.get("entry_cache_hits", 0)
    return {
        "t_s": round(t_s, 3),
        "counters": {k: int(v) for k, v in counters.items()},
        "cache_hit_rate": (hits / optimized) if optimized else None,
    }


def run_loadtest(
    workload: Workload,
    endpoint: Union[str, Any],
    *,
    request_timeout: float = 120.0,
    sample_interval: float = 0.5,
    keep_receipts: bool = False,
    progress: Optional[Callable[[int, int, RequestOutcome], None]] = None,
) -> LoadTestResult:
    """Replay ``workload`` against ``endpoint`` and measure it.

    ``endpoint`` is an open :class:`OptimizerEndpoint` or an endpoint
    URI (opened — and closed — by the driver).  Setup (model building,
    obfuscation, manifest sealing) happens before the clock starts.
    """
    from ..api.endpoint import open_endpoint

    owned = isinstance(endpoint, str)
    uri = endpoint if owned else getattr(endpoint, "base_url", type(endpoint).__name__)
    if owned:
        options: Dict[str, Any] = {}
        if endpoint.startswith("local:"):
            # a load test without a cache would measure the optimizer,
            # not the service; remote endpoints configure caching
            # server-side, so give the in-process one the same footing.
            # Worker threads likewise track the offered concurrency
            # (capped like the CLI default) instead of the library
            # default of 2, which a loadtest would instantly saturate.
            from ..serving import OptimizationCache

            options["cache"] = OptimizationCache()
            options["workers"] = min(max(workload.spec.clients, 2), 8)
        endpoint = open_endpoint(endpoint, **options)
        # preflight an endpoint we opened ourselves: a dead host or a
        # protocol mismatch should fail the whole test up front (the
        # CLI's exit 4), not as N identical entries in the error tally.
        negotiate = getattr(endpoint, "negotiate", None)
        if negotiate is not None:
            try:
                negotiate()
            except Exception:
                endpoint.close()
                raise
    try:
        return _run(
            workload,
            endpoint,
            uri=str(uri),
            request_timeout=request_timeout,
            sample_interval=sample_interval,
            keep_receipts=keep_receipts,
            progress=progress,
        )
    finally:
        if owned:
            endpoint.close()


def _run(
    workload: Workload,
    endpoint,
    *,
    uri: str,
    request_timeout: float,
    sample_interval: float,
    keep_receipts: bool,
    progress: Optional[Callable[[int, int, RequestOutcome], None]],
) -> LoadTestResult:
    manifests = build_workload_manifests(workload)

    histogram = LatencyHistogram()
    outcomes: List[Optional[RequestOutcome]] = [None] * len(workload.requests)
    error_codes: Dict[str, int] = {}
    receipts: Dict[int, Any] = {}
    gauge = _ConcurrencyGauge()
    record_lock = threading.Lock()
    done_count = [0]

    started_unix = time.time()
    t0 = time.perf_counter()

    def one_request(request) -> None:
        submitted = time.perf_counter() - t0
        latency: Optional[float] = None
        error: Optional[str] = None
        tracer = get_tracer()
        try:
            # the root span is the client tier; the rpc child is the
            # transport tier and covers BOTH submit and await — the wire
            # carries the rpc context, so every server-side span hangs
            # under it and per-tier exclusive times sum to ~wall latency.
            with gauge, tracer.start_trace("request", "client") as root:
                root.tag("model", request.model)
                root.tag("variant", request.variant)
                with tracer.span("rpc", "transport"):
                    job_id = endpoint.submit(
                        manifests[(request.model, request.variant)]
                    )
                    receipt = endpoint.await_receipt(
                        job_id, timeout=request_timeout
                    )
            latency = (time.perf_counter() - t0) - submitted
            if keep_receipts:
                receipts[request.index] = receipt
        except Exception as exc:  # tally every failure, keep replaying
            error = _error_tag(exc)
        outcome = RequestOutcome(
            index=request.index,
            model=request.model,
            variant=request.variant,
            scheduled_s=request.offset_s,
            submitted_s=round(submitted, 6),
            latency_s=latency,
            error=error,
        )
        with record_lock:
            outcomes[request.index] = outcome
            if latency is not None:
                histogram.record(latency)
            if error is not None:
                error_codes[error] = error_codes.get(error, 0) + 1
            done_count[0] += 1
            done = done_count[0]
        if progress is not None:
            progress(done, len(workload.requests), outcome)

    # -- metrics sampler (daemon; exits with the stop event) ----------------
    stop = threading.Event()
    timeline: List[Dict[str, Any]] = []

    def sampler() -> None:
        while not stop.wait(sample_interval):
            point = _sample(endpoint, time.perf_counter() - t0)
            if point is not None:
                timeline.append(point)

    sampler_thread: Optional[threading.Thread] = None
    if sample_interval > 0:
        sampler_thread = threading.Thread(
            target=sampler, name="loadgen-sampler", daemon=True
        )
        sampler_thread.start()

    try:
        with ThreadPoolExecutor(
            max_workers=workload.spec.clients, thread_name_prefix="loadgen-client"
        ) as pool:
            if workload.spec.arrival == "closed":
                futures = [pool.submit(one_request, r) for r in workload.requests]
            else:
                futures = []
                for request in workload.requests:  # already offset-ordered
                    delay = request.offset_s - (time.perf_counter() - t0)
                    if delay > 0:
                        time.sleep(delay)
                    futures.append(pool.submit(one_request, request))
            for fut in futures:
                fut.result()  # one_request never raises; this is a join
    finally:
        stop.set()
        if sampler_thread is not None:
            sampler_thread.join(timeout=5.0)

    duration = time.perf_counter() - t0
    final_point = _sample(endpoint, duration)
    if final_point is not None:
        timeline.append(final_point)

    try:
        final_metrics = endpoint.metrics()
    except Exception:
        final_metrics = None
    try:
        client_stats = dict(endpoint.client_stats())
    except Exception:
        client_stats = {}

    assert all(o is not None for o in outcomes)
    return LoadTestResult(
        workload=workload,
        endpoint_uri=uri,
        transport=getattr(endpoint, "transport", "unknown"),
        started_unix=started_unix,
        duration_s=duration,
        outcomes=[o for o in outcomes if o is not None],
        histogram=histogram,
        error_codes=error_codes,
        max_in_flight=gauge.peak,
        timeline=timeline,
        final_metrics=final_metrics,
        receipts=receipts,
        client_stats=client_stats,
    )
