"""A multi-process serving fleet: scale-out on real process boundaries.

Thread-based workers inside one ``OptimizationServer`` share a GIL; to
measure *scale-out* the way a deployment would, the fleet spawns N
independent ``repro serve --http 0`` **processes** (each its own
interpreter, scheduler and socket) that share one on-disk
content-addressed :class:`~repro.serving.cache.OptimizationCache` —
the cache's atomic object store is already multi-process safe, and
cache keys embed backend + config, so sharing is sound.

In front of the workers sits :class:`FleetEndpoint`, a round-robin
proxy implementing the ordinary
:class:`~repro.api.endpoint.OptimizerEndpoint` protocol: ``submit``
places each job on the next worker, ``status``/``await_receipt`` route
by job id, ``metrics`` aggregates, and the endpoint tracks how many
workers had jobs in flight simultaneously (``max_busy_workers``) — the
number a 1-vs-N loadtest compares to prove real concurrency happened.

Because every worker runs the same deterministic optimizer over
content-addressed work, a fleet replay's receipts are byte-identical to
a single worker's: scale-out changes *when* receipts arrive, never what
is in them.

``repro serve --http 0 --workers N`` builds one of these from the CLI;
``open_endpoint("http://h:p1,http://h:p2")`` opens a client for it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
from typing import Any, Dict, List, Optional, Sequence, Union

from ..api.endpoint import HttpEndpoint, OptimizerEndpoint
from ..api.wire import ERR_UNKNOWN_JOB, EndpointError

__all__ = ["FleetEndpoint", "ServingFleet"]

#: counters aggregated across workers into the fleet's metrics().
_COUNTER_KEYS = (
    "submitted_total",
    "completed_total",
    "failed_total",
    "entries_optimized",
    "entry_cache_hits",
)


class FleetEndpoint(OptimizerEndpoint):
    """Round-robin proxy over several endpoints (usually HTTP workers).

    Owns the member endpoints: ``close()`` closes them.  Thread safe —
    the loadgen driver calls it from many client threads at once.
    """

    transport = "fleet"

    def __init__(self, endpoints: Sequence[OptimizerEndpoint]) -> None:
        if not endpoints:
            raise ValueError("a fleet endpoint needs at least one worker")
        self._endpoints: List[OptimizerEndpoint] = list(endpoints)
        self._lock = threading.Lock()
        self._next = 0
        # job id -> [worker index, occupies-an-in-flight-slot].  The
        # slot is released on *any* await_receipt outcome — including a
        # timeout the caller may never retry — while the routing entry
        # survives timeouts so a later re-await still finds its worker.
        self._jobs: Dict[str, List] = {}
        self._in_flight = [0] * len(self._endpoints)
        self._submitted = [0] * len(self._endpoints)
        self.max_busy_workers = 0

    def __len__(self) -> int:
        return len(self._endpoints)

    # -- routing ------------------------------------------------------------
    def _pick(self) -> int:
        with self._lock:
            index = self._next % len(self._endpoints)
            self._next += 1
        return index

    def _worker_for(self, job_id: str) -> int:
        with self._lock:
            try:
                return self._jobs[job_id][0]
            except KeyError:
                raise EndpointError(
                    ERR_UNKNOWN_JOB, f"unknown job id {job_id!r} (not submitted here)"
                ) from None

    def _release_slot(self, job_id: str, *, forget: bool) -> None:
        """Release the job's in-flight slot (idempotent); optionally drop
        its routing entry (terminal outcomes only)."""
        with self._lock:
            entry = self._jobs.get(job_id)
            if entry is not None and entry[1]:
                entry[1] = False
                self._in_flight[entry[0]] -= 1
            if forget:
                self._jobs.pop(job_id, None)

    # -- OptimizerEndpoint ----------------------------------------------------
    def submit(self, manifest) -> str:
        index = self._pick()
        job_id = self._endpoints[index].submit(manifest)
        with self._lock:
            self._jobs[job_id] = [index, True]
            self._submitted[index] += 1
            self._in_flight[index] += 1
            busy = sum(1 for n in self._in_flight if n > 0)
            self.max_busy_workers = max(self.max_busy_workers, busy)
        return job_id

    def negotiate(self) -> None:
        """Preflight every worker that supports negotiation; raises
        ConnectionError/EndpointError if any worker is unusable."""
        for endpoint in self._endpoints:
            negotiate = getattr(endpoint, "negotiate", None)
            if negotiate is not None:
                negotiate()

    def status(self, job_id: str):
        return self._endpoints[self._worker_for(job_id)].status(job_id)

    def await_receipt(self, job_id: str, timeout: Optional[float] = None):
        index = self._worker_for(job_id)
        try:
            receipt = self._endpoints[index].await_receipt(job_id, timeout=timeout)
        except (TimeoutError, ConnectionError):
            # transient: the worker may still hold (or later produce)
            # the receipt.  Free the slot so an abandoned job cannot
            # inflate the busy-worker gauge forever, but keep the
            # routing entry so a retry still reaches the right worker.
            self._release_slot(job_id, forget=False)
            raise
        except Exception:
            self._release_slot(job_id, forget=True)  # failed terminally
            raise
        self._release_slot(job_id, forget=True)
        return receipt

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            submitted = list(self._submitted)
            in_flight = list(self._in_flight)
            max_busy = self.max_busy_workers
        workers = []
        counters = {key: 0 for key in _COUNTER_KEYS}
        for endpoint in self._endpoints:
            try:
                m = endpoint.metrics()
            except Exception as exc:  # a down worker must not hide the rest
                m = {"error": f"{type(exc).__name__}: {exc}"}
            workers.append(m)
            worker_counters = m.get("counters") if isinstance(m, dict) else None
            if isinstance(worker_counters, dict):
                for key in _COUNTER_KEYS:
                    counters[key] += int(worker_counters.get(key, 0))
        return {
            "transport": self.transport,
            "workers": len(self._endpoints),
            "submitted_per_worker": submitted,
            "in_flight_per_worker": in_flight,
            "max_busy_workers": max_busy,
            "counters": counters,
            "backends": workers,
        }

    def close(self) -> None:
        for endpoint in self._endpoints:
            endpoint.close()


class ServingFleet:
    """N ``repro serve --http 0`` worker processes behind one endpoint.

    Workers bind ephemeral ports and announce themselves with the
    ``{"endpoint": URL}`` JSON line the serve CLI already prints, so
    spawning is just reading one line of stdout per worker.  Pass a
    ``cache_dir`` to share one on-disk optimization cache across the
    fleet (recommended — it is what makes N workers behave like one
    bigger server instead of N cold ones).
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        optimizer: str = "ortlike",
        cache_dir: Optional[str] = None,
        jobs: int = 2,
        host: str = "127.0.0.1",
        startup_timeout: float = 60.0,
        extra_args: Sequence[str] = (),
        capture_stderr: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("fleet needs at least 1 worker")
        self.workers = workers
        self.optimizer = optimizer
        self.cache_dir = cache_dir
        self.jobs = jobs
        self.host = host
        self.startup_timeout = startup_timeout
        self.extra_args = list(extra_args)
        #: True spools worker stderr to temp files, surfaced only when a
        #: worker fails to start (tests/benchmarks stay quiet but
        #: debuggable); False inherits this process's stderr so
        #: operators see worker logs live (the CLI path).
        self.capture_stderr = capture_stderr
        self.urls: List[str] = []
        self._procs: List[subprocess.Popen] = []
        self._stderr_spools: List[Any] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    def _spawn_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # make `python -m repro` work from a source checkout (tests run
        # with pythonpath=src from pyproject, which subprocesses miss).
        src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _stderr_tail(self, index: int, limit: int = 2000) -> str:
        """The captured tail of worker ``index``'s stderr (diagnostics)."""
        if index >= len(self._stderr_spools):
            return ""
        spool = self._stderr_spools[index]
        try:
            spool.flush()
            size = spool.seek(0, os.SEEK_END)
            spool.seek(max(0, size - limit))
            return spool.read().decode("utf-8", "replace").strip()
        except (OSError, ValueError):
            return ""

    def _read_banner(self, proc: subprocess.Popen, index: int) -> str:
        """The worker's endpoint URL, from its first stdout line."""
        banner: List[Optional[str]] = [None]

        def read() -> None:
            assert proc.stdout is not None
            banner[0] = proc.stdout.readline()

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout=self.startup_timeout)
        line = banner[0]
        if reader.is_alive() or not line:
            tail = self._stderr_tail(index)
            raise RuntimeError(
                f"fleet worker (pid {proc.pid}) did not announce an endpoint "
                f"within {self.startup_timeout:g}s"
                + (f"; its stderr ended with:\n{tail}" if tail else "")
            )
        try:
            return str(json.loads(line)["endpoint"])
        except (ValueError, KeyError, TypeError) as exc:
            raise RuntimeError(
                f"fleet worker printed an unparseable banner {line!r}: {exc}"
            ) from None

    def start(self) -> List[str]:
        """Spawn every worker; returns their endpoint URLs."""
        if self._started:
            return self.urls
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--http",
            "0",
            "--host",
            self.host,
            "--optimizer",
            self.optimizer,
            "-j",
            str(self.jobs),
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", self.cache_dir]
        command += self.extra_args
        env = self._spawn_env()
        try:
            for _ in range(self.workers):
                if self.capture_stderr:
                    spool = tempfile.TemporaryFile()
                    self._stderr_spools.append(spool)
                    stderr = spool
                else:
                    stderr = None  # inherit: operators see worker logs
                proc = subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=stderr,
                    env=env,
                    text=True,
                )
                self._procs.append(proc)
            self.urls = [
                self._read_banner(proc, i) for i, proc in enumerate(self._procs)
            ]
        except Exception:
            self.close()
            raise
        self._started = True
        return self.urls

    def endpoint(self, timeout: float = 30.0) -> FleetEndpoint:
        """A round-robin client over every live worker."""
        if not self._started:
            self.start()
        return FleetEndpoint(
            [HttpEndpoint(url, timeout=timeout) for url in self.urls]
        )

    def poll(self) -> List[Optional[int]]:
        """Per-worker exit codes (None = still running)."""
        return [proc.poll() for proc in self._procs]

    def close(self, timeout: float = 10.0) -> None:
        """Terminate every worker (escalating to kill on a slow exit)."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=timeout)
            if proc.stdout is not None:
                proc.stdout.close()
        for spool in self._stderr_spools:
            try:
                spool.close()
            except OSError:
                pass
        self._stderr_spools.clear()
        self._procs.clear()
        self.urls = []
        self._started = False

    def __enter__(self) -> "ServingFleet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_fleet_endpoint(
    uris: Union[str, Sequence[str]], *, timeout: float = 30.0, optimizer: Optional[str] = None
) -> FleetEndpoint:
    """A FleetEndpoint from comma-separated (or listed) worker URLs."""
    if isinstance(uris, str):
        uris = [part.strip() for part in uris.split(",") if part.strip()]
    if not uris:
        raise ValueError("fleet endpoint needs at least one worker URL")
    bad = [u for u in uris if not u.startswith(("http://", "https://"))]
    if bad:
        raise ValueError(f"fleet workers must be http(s) URLs, got {bad}")
    return FleetEndpoint(
        [HttpEndpoint(u, timeout=timeout, optimizer=optimizer) for u in uris]
    )
