"""A multi-process serving fleet: scale-out on real process boundaries.

Thread-based workers inside one ``OptimizationServer`` share a GIL; to
measure *scale-out* the way a deployment would, the fleet spawns N
independent ``repro serve --http 0`` **processes** (each its own
interpreter, scheduler and socket) that share one on-disk
content-addressed :class:`~repro.serving.cache.OptimizationCache` —
the cache's atomic object store is already multi-process safe, and
cache keys embed backend + config, so sharing is sound.

In front of the workers sits a fleet proxy implementing the ordinary
:class:`~repro.api.endpoint.OptimizerEndpoint` protocol: ``submit``
places each job on a worker, ``status``/``await_receipt`` route by job
id, ``metrics`` aggregates, and the endpoint tracks how many workers
had jobs in flight simultaneously (``max_busy_workers``) — the number
a 1-vs-N loadtest compares to prove real concurrency happened.  The
default proxy is the ring-routed
:class:`~repro.cluster.router.RouterEndpoint` (digest locality +
fleet-wide dedup); :class:`FleetEndpoint` here is its round-robin base
and remains available via ``routing="round_robin"``.

Membership is **dynamic**: the autoscaler
(:class:`~repro.control.autoscaler.FleetAutoscaler`) adds and removes
workers at runtime, so the fleet publishes its live worker URLs to an
atomically rewritten *state file* (``--fleet-state PATH``), and
``open_endpoint("fleet:PATH")`` opens a client that follows membership
changes — new workers join its round-robin within a poll interval,
retired ones stop receiving submits while in-flight jobs still route
back.  A worker that dies mid-fleet is marked down on the first
connection failure and its submit retried on a live sibling, instead of
1/N of traffic hanging until timeout.

Because every worker runs the same deterministic optimizer over
content-addressed work, a fleet replay's receipts are byte-identical to
a single worker's: scale-out changes *when* receipts arrive, never what
is in them.

``repro serve --http 0 --workers N`` builds one of these from the CLI;
``open_endpoint("http://h:p1,http://h:p2")`` opens a static client for
it, ``open_endpoint("fleet:PATH")`` a membership-following one.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..api.endpoint import HttpEndpoint, OptimizerEndpoint
from ..api.wire import ERR_UNKNOWN_JOB, EndpointError

__all__ = [
    "FleetEndpoint",
    "ServingFleet",
    "open_fleet_endpoint",
    "open_fleet_state_endpoint",
]

#: counters aggregated across workers into the fleet's metrics().
_COUNTER_KEYS = (
    "submitted_total",
    "completed_total",
    "failed_total",
    "entries_optimized",
    "entry_cache_hits",
)

#: client-stats keys aggregated across workers (see
#: OptimizerEndpoint.client_stats).
_CLIENT_STAT_KEYS = ("shed_total", "retried_total", "gave_up_total")

#: URL schemes a fleet member may announce; dispatched by
#: :func:`_endpoint_for_url`.
_WORKER_SCHEMES = ("http://", "https://", "mux://")


def _endpoint_for_url(
    url: str, timeout: float = 30.0, optimizer: Optional[str] = None
) -> OptimizerEndpoint:
    """The right client for one worker URL, by scheme.

    Fleet proxies route by manifest digest, not by transport, so
    ``http(s)://`` and ``mux://`` members mix freely in one ring.
    """
    if url.startswith("mux://"):
        from ..mux.client import MuxEndpoint  # here: keeps fleet import-light

        return MuxEndpoint(url, timeout=timeout, optimizer=optimizer)
    return HttpEndpoint(url, timeout=timeout, optimizer=optimizer)

#: hierarchical-cache tier counters summed across workers (rates are
#: recomputed from the sums; see HierarchicalCache.tier_stats).
_TIER_COUNTER_KEYS = (
    "memory_hits",
    "local_hits",
    "shared_hits",
    "misses",
    "promotions",
    "memory_entries",
)


class _Member:
    """One fleet worker as the endpoint sees it.

    ``up`` goes False on a connection failure (submits skip it until a
    membership refresh lists it again); ``retired`` means the worker was
    removed from the fleet — no new submits ever, but jobs already
    routed there still reach it for status/receipt.
    """

    __slots__ = ("endpoint", "url", "up", "retired", "submitted", "in_flight")

    def __init__(self, endpoint: OptimizerEndpoint, url: Optional[str] = None) -> None:
        self.endpoint = endpoint
        self.url = url
        self.up = True
        self.retired = False
        self.submitted = 0
        self.in_flight = 0


class FleetEndpoint(OptimizerEndpoint):
    """Round-robin proxy over several endpoints (usually HTTP workers).

    Owns the member endpoints: ``close()`` closes them.  Thread safe —
    the loadgen driver calls it from many client threads at once, and a
    state-file watcher may be reshaping membership concurrently.
    """

    transport = "fleet"

    def __init__(
        self,
        endpoints: Sequence[OptimizerEndpoint],
        urls: Optional[Sequence[str]] = None,
        endpoint_factory: Optional[Callable[[str], OptimizerEndpoint]] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("a fleet endpoint needs at least one worker")
        if urls is not None and len(urls) != len(endpoints):
            raise ValueError("urls must parallel endpoints")
        self._members: List[_Member] = [
            _Member(endpoint, None if urls is None else urls[i])
            for i, endpoint in enumerate(endpoints)
        ]
        self._endpoint_factory = endpoint_factory
        self._lock = threading.Lock()
        self._next = 0
        # job id -> [member, occupies-an-in-flight-slot].  The slot is
        # released on *any* await_receipt outcome — including a timeout
        # the caller may never retry — while the routing entry survives
        # timeouts so a later re-await still finds its worker.
        self._jobs: Dict[str, List] = {}
        self.max_busy_workers = 0
        self._on_close: List[Callable[[], None]] = []

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for m in self._members if not m.retired)

    # -- membership ----------------------------------------------------------
    def mark_down(self, member: _Member) -> None:
        """Take a member out of the submit rotation (connection died)."""
        with self._lock:
            member.up = False

    def set_members(self, urls: Sequence[str]) -> None:
        """Reshape membership to exactly ``urls`` (state-file refresh).

        Workers already present stay (and are revived if marked down —
        the fleet manager just vouched for them); new URLs join via the
        endpoint factory; members whose URL vanished are retired —
        their in-flight jobs still route back, but no new submits land
        on them.  URL-less members (in-process fleets) are untouched.
        """
        if self._endpoint_factory is None:
            raise RuntimeError(
                "this fleet endpoint has no endpoint factory; "
                "membership is fixed at construction"
            )
        urls = list(dict.fromkeys(urls))  # de-dup, keep order
        with self._lock:
            known = {m.url: m for m in self._members if m.url is not None}
            wanted = set(urls)
            for url, member in known.items():
                if url in wanted:
                    if member.retired:
                        member.retired = False  # scale-down reverted
                    member.up = True
                else:
                    member.retired = True
            new_urls = [u for u in urls if u not in known]
        # endpoint construction outside the lock (it may do I/O).
        fresh = [
            (url, self._endpoint_factory(url)) for url in new_urls
        ]
        with self._lock:
            have = {m.url for m in self._members if m.url is not None}
            for url, endpoint in fresh:
                if url in have:  # racing refreshes: keep the first
                    endpoint.close()
                    continue
                self._members.append(_Member(endpoint, url))

    def member_urls(self, live_only: bool = True) -> List[str]:
        with self._lock:
            return [
                m.url
                for m in self._members
                if m.url is not None
                and (not live_only or (m.up and not m.retired))
            ]

    # -- routing ------------------------------------------------------------
    def _pick(self) -> _Member:
        with self._lock:
            eligible = [m for m in self._members if m.up and not m.retired]
            if not eligible:
                # every worker marked down: optimistically try the
                # non-retired ones anyway (the alternative is giving up
                # without a single connection attempt).
                eligible = [m for m in self._members if not m.retired]
            if not eligible:
                raise ConnectionError("fleet has no live workers")
            member = eligible[self._next % len(eligible)]
            self._next += 1
        return member

    def _member_for(self, job_id: str) -> _Member:
        with self._lock:
            try:
                return self._jobs[job_id][0]
            except KeyError:
                raise EndpointError(
                    ERR_UNKNOWN_JOB, f"unknown job id {job_id!r} (not submitted here)"
                ) from None

    def _release_slot(self, job_id: str, *, forget: bool) -> None:
        """Release the job's in-flight slot (idempotent); optionally drop
        its routing entry (terminal outcomes only)."""
        with self._lock:
            entry = self._jobs.get(job_id)
            if entry is not None and entry[1]:
                entry[1] = False
                entry[0].in_flight -= 1
            if forget:
                self._jobs.pop(job_id, None)

    # -- OptimizerEndpoint ----------------------------------------------------
    def submit(self, manifest) -> str:
        attempts = max(1, len(self))
        last_exc: Optional[Exception] = None
        for _ in range(attempts):
            member = self._pick()
            try:
                job_id = member.endpoint.submit(manifest)
            except ConnectionError as exc:
                # dead worker: out of rotation, fail over to a sibling.
                self.mark_down(member)
                last_exc = exc
                continue
            with self._lock:
                self._jobs[job_id] = [member, True]
                member.submitted += 1
                member.in_flight += 1
                busy = sum(1 for m in self._members if m.in_flight > 0)
                self.max_busy_workers = max(self.max_busy_workers, busy)
            return job_id
        raise last_exc if last_exc is not None else ConnectionError(
            "fleet has no live workers"
        )

    def negotiate(self) -> None:
        """Preflight every live worker that supports negotiation; raises
        ConnectionError/EndpointError if any live worker is unusable."""
        with self._lock:
            members = [m for m in self._members if m.up and not m.retired]
        for member in members:
            negotiate = getattr(member.endpoint, "negotiate", None)
            if negotiate is not None:
                negotiate()

    def status(self, job_id: str):
        return self._member_for(job_id).endpoint.status(job_id)

    def await_receipt(self, job_id: str, timeout: Optional[float] = None):
        member = self._member_for(job_id)
        try:
            receipt = member.endpoint.await_receipt(job_id, timeout=timeout)
        except (TimeoutError, ConnectionError):
            # transient: the worker may still hold (or later produce)
            # the receipt.  Free the slot so an abandoned job cannot
            # inflate the busy-worker gauge forever, but keep the
            # routing entry so a retry still reaches the right worker.
            self._release_slot(job_id, forget=False)
            raise
        except Exception:
            self._release_slot(job_id, forget=True)  # failed terminally
            raise
        self._release_slot(job_id, forget=True)
        return receipt

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            members = [m for m in self._members if not m.retired]
            submitted = [m.submitted for m in members]
            in_flight = [m.in_flight for m in members]
            max_busy = self.max_busy_workers
        workers = []
        status = []
        counters = {key: 0 for key in _COUNTER_KEYS}
        tiers: Optional[Dict[str, int]] = None
        for member in members:
            try:
                m = member.endpoint.metrics()
            except Exception as exc:  # a down worker must not hide the rest
                m = {"error": f"{type(exc).__name__}: {exc}"}
                status.append(
                    {"url": member.url, "ok": False, "error": m["error"]}
                )
            else:
                status.append({"url": member.url, "ok": True, "error": None})
            workers.append(m)
            worker_counters = m.get("counters") if isinstance(m, dict) else None
            if isinstance(worker_counters, dict):
                for key in _COUNTER_KEYS:
                    counters[key] += int(worker_counters.get(key, 0))
            worker_tiers = m.get("cache_tiers") if isinstance(m, dict) else None
            if isinstance(worker_tiers, dict):
                if tiers is None:
                    tiers = {key: 0 for key in _TIER_COUNTER_KEYS}
                for key in _TIER_COUNTER_KEYS:
                    tiers[key] += int(worker_tiers.get(key, 0))
        aggregate: Dict[str, Any] = {
            "transport": self.transport,
            "workers": len(members),
            "submitted_per_worker": submitted,
            "in_flight_per_worker": in_flight,
            "max_busy_workers": max_busy,
            "counters": counters,
            "worker_status": status,
            "backends": workers,
        }
        if tiers is not None:
            lookups = (
                tiers["memory_hits"] + tiers["local_hits"]
                + tiers["shared_hits"] + tiers["misses"]
            )
            aggregate["cache_tiers"] = dict(
                tiers,
                memory_hit_rate=tiers["memory_hits"] / lookups if lookups else 0.0,
                local_hit_rate=tiers["local_hits"] / lookups if lookups else 0.0,
                shared_hit_rate=tiers["shared_hits"] / lookups if lookups else 0.0,
            )
        return aggregate

    def client_stats(self) -> Dict[str, int]:
        """Aggregate backpressure accounting across member endpoints
        (retired members included — their sheds happened; a member
        dying mid-scrape contributes zeros instead of raising)."""
        with self._lock:
            members = list(self._members)
        totals = {key: 0 for key in _CLIENT_STAT_KEYS}
        for member in members:
            try:
                stats = member.endpoint.client_stats()
            except Exception:
                continue  # same tolerance as metrics(): skip, don't hide the rest
            for key in _CLIENT_STAT_KEYS:
                totals[key] += int(stats.get(key, 0))
        return totals

    def close(self) -> None:
        for callback in self._on_close:
            try:
                callback()
            except Exception:
                pass
        self._on_close = []
        with self._lock:
            members = list(self._members)
        for member in members:
            member.endpoint.close()


class ServingFleet:
    """N ``repro serve --http 0`` worker processes behind one endpoint.

    Workers bind ephemeral ports and announce themselves with the
    ``{"endpoint": URL}`` JSON line the serve CLI already prints, so
    spawning is just reading one line of stdout per worker.  Pass a
    ``cache_dir`` to share one on-disk optimization cache across the
    fleet (recommended — it is what makes N workers behave like one
    bigger server instead of N cold ones).

    The fleet is resizable at runtime (:meth:`add_worker`,
    :meth:`stop_worker`) and self-inspecting (:meth:`reap` drops
    crashed workers) — the levers the
    :class:`~repro.control.autoscaler.FleetAutoscaler` pulls.  With a
    ``state_path``, every membership change atomically rewrites a JSON
    state file clients follow via ``open_endpoint("fleet:PATH")``.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        optimizer: str = "ortlike",
        cache_dir: Optional[str] = None,
        jobs: int = 2,
        host: str = "127.0.0.1",
        startup_timeout: float = 60.0,
        extra_args: Sequence[str] = (),
        capture_stderr: bool = True,
        state_path: Optional[str] = None,
        hierarchical: bool = True,
        journal_path: Optional[str] = None,
        transport: str = "http",
    ) -> None:
        if workers < 1:
            raise ValueError("fleet needs at least 1 worker")
        if transport not in ("http", "mux"):
            raise ValueError(
                f"fleet transport must be 'http' or 'mux', got {transport!r}"
            )
        self.workers = workers
        self.optimizer = optimizer
        #: which socket each worker serves ("http" or "mux"); also which
        #: URL is picked out of the worker's announcement banner.
        self.transport = transport
        self.cache_dir = cache_dir
        #: with a cache_dir, give each worker a private disk shard under
        #: ``<cache_dir>/shards/`` (the hierarchical middle tier) instead
        #: of the flat layout; the shared store stays ``cache_dir``.
        self.hierarchical = hierarchical
        #: with a path, each worker journals its live traffic to its own
        #: ``<stem>.w<id><ext>`` file (a shared file would interleave).
        self.journal_path = journal_path
        self.jobs = jobs
        self.host = host
        self.startup_timeout = startup_timeout
        self.extra_args = list(extra_args)
        #: True spools worker stderr to temp files, surfaced only when a
        #: worker fails to start (tests/benchmarks stay quiet but
        #: debuggable); False inherits this process's stderr so
        #: operators see worker logs live (the CLI path).
        self.capture_stderr = capture_stderr
        self.state_path = state_path
        self.urls: List[str] = []
        self._procs: List[subprocess.Popen] = []
        self._stderr_spools: List[Any] = []
        self._fleet_lock = threading.Lock()
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    def _spawn_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # make `python -m repro` work from a source checkout (tests run
        # with pythonpath=src from pyproject, which subprocesses miss).
        src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _command(self) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--mux" if self.transport == "mux" else "--http",
            "0",
            "--host",
            self.host,
            "--optimizer",
            self.optimizer,
            "-j",
            str(self.jobs),
        ]
        uid = uuid.uuid4().hex[:8]  # fresh per spawn: shards are private
        if self.cache_dir is not None:
            command += ["--cache-dir", self.cache_dir]
            if self.hierarchical:
                shard = os.path.join(self.cache_dir, "shards", uid)
                command += ["--cache-shard", shard]
        if self.journal_path is not None:
            stem, ext = os.path.splitext(self.journal_path)
            command += ["--journal", f"{stem}.w{uid}{ext}"]
        command += self.extra_args
        return command

    def _stderr_tail(self, spool: Any, limit: int = 2000) -> str:
        """The captured tail of one worker's stderr (diagnostics)."""
        if spool is None:
            return ""
        try:
            spool.flush()
            size = spool.seek(0, os.SEEK_END)
            spool.seek(max(0, size - limit))
            return spool.read().decode("utf-8", "replace").strip()
        except (OSError, ValueError):
            return ""

    def _read_banner(self, proc: subprocess.Popen, spool: Any) -> str:
        """The worker's endpoint URL, from its first stdout line."""
        banner: List[Optional[str]] = [None]

        def read() -> None:
            assert proc.stdout is not None
            banner[0] = proc.stdout.readline()

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout=self.startup_timeout)
        line = banner[0]
        if reader.is_alive() or not line:
            tail = self._stderr_tail(spool)
            raise RuntimeError(
                f"fleet worker (pid {proc.pid}) did not announce an endpoint "
                f"within {self.startup_timeout:g}s"
                + (f"; its stderr ended with:\n{tail}" if tail else "")
            )
        try:
            return self._banner_url(json.loads(line))
        except (ValueError, KeyError, TypeError) as exc:
            raise RuntimeError(
                f"fleet worker printed an unparseable banner {line!r}: {exc}"
            ) from None

    def _banner_url(self, banner: Any) -> str:
        """This fleet's transport URL out of a worker's banner line.

        The serve CLI keeps its one-JSON-line-on-stdout contract, but a
        worker serving several transports (``--http P --mux P2``)
        announces them all under ``"endpoints"`` and its ``"endpoint"``
        key names whichever is primary — so the parse must select by
        transport rather than trust key order or primacy: prefer
        ``endpoints[<transport>]``, fall back to the legacy
        ``"endpoint"`` only when it matches this fleet's scheme.
        """
        if not isinstance(banner, dict):
            raise TypeError(f"banner must be a JSON object, got {type(banner).__name__}")
        by_transport = banner.get("endpoints")
        if isinstance(by_transport, dict):
            url = by_transport.get(self.transport)
            if url:
                return str(url)
        url = banner.get("endpoint")
        if url is None:
            raise KeyError("endpoint")
        url = str(url)
        want = "mux://" if self.transport == "mux" else ("http://", "https://")
        if not url.startswith(want):
            raise ValueError(
                f"worker announced no {self.transport} endpoint (banner URL {url!r})"
            )
        return url

    def _spawn_one(self) -> str:
        """Spawn one worker, wait for its banner; registers it and
        returns its URL.  Caller holds no lock (spawning is slow)."""
        spool = tempfile.TemporaryFile() if self.capture_stderr else None
        proc = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=spool,  # None inherits: operators see worker logs
            env=self._spawn_env(),
            text=True,
        )
        try:
            url = self._read_banner(proc, spool)
        except Exception:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
            if spool is not None:
                spool.close()
            raise
        with self._fleet_lock:
            self._procs.append(proc)
            self._stderr_spools.append(spool)
            self.urls.append(url)
        return url

    def _remove_index_locked(self, index: int) -> str:
        """Drop worker ``index`` from the registry (caller holds the
        lock); returns its URL.  Does not touch the process."""
        url = self.urls.pop(index)
        self._procs.pop(index)
        spool = self._stderr_spools.pop(index)
        if spool is not None:
            try:
                spool.close()
            except OSError:
                pass
        return url

    def _write_state(self) -> None:
        if self.state_path is None:
            return
        from ..serving.spool import atomic_write_json

        with self._fleet_lock:
            workers = list(self.urls)
        atomic_write_json(self.state_path, {"version": 1, "workers": workers})

    @property
    def worker_count(self) -> int:
        with self._fleet_lock:
            return len(self._procs)

    def start(self) -> List[str]:
        """Spawn every worker; returns a snapshot of their endpoint URLs.

        Idempotent and safe to race: the started flag is checked and set
        in one locked step, so concurrent callers spawn the fleet at
        most once (losers return the current membership snapshot).
        """
        with self._fleet_lock:
            if self._started:
                return list(self.urls)
            self._started = True
        try:
            for _ in range(self.workers):
                self._spawn_one()
        except Exception:
            self.close()  # resets the started flag under the lock
            raise
        self._write_state()
        with self._fleet_lock:
            return list(self.urls)

    # -- runtime resizing (the autoscaler's levers) --------------------------
    def add_worker(self) -> str:
        """Spawn one more worker; returns its URL."""
        url = self._spawn_one()
        self._write_state()
        return url

    def stop_worker(self) -> Optional[str]:
        """Retire the newest worker (LIFO keeps the longest-warmed
        workers serving); returns its URL, or None when only one
        worker remains."""
        with self._fleet_lock:
            if len(self._procs) <= 1:
                return None
            proc = self._procs[-1]
            url = self._remove_index_locked(len(self._procs) - 1)
        self._write_state()
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)
        if proc.stdout is not None:
            proc.stdout.close()
        return url

    def reap(self) -> int:
        """Drop workers whose process died; returns how many were
        removed.  The autoscaler calls this every poll and respawns up
        to its configured minimum."""
        dead: List[subprocess.Popen] = []
        with self._fleet_lock:
            for index in range(len(self._procs) - 1, -1, -1):
                if self._procs[index].poll() is not None:
                    dead.append(self._procs[index])
                    self._remove_index_locked(index)
        if dead:
            self._write_state()
            for proc in dead:
                if proc.stdout is not None:
                    proc.stdout.close()
        return len(dead)

    def endpoint(self, timeout: float = 30.0, routing: str = "ring") -> FleetEndpoint:
        """A client over every live worker (ring-routed by default).

        With a ``state_path`` the client follows membership changes;
        without one it is pinned to the workers alive right now.
        """
        self.start()  # idempotent; spawns only when nothing is running yet
        if self.state_path is not None:
            return open_fleet_state_endpoint(
                self.state_path, timeout=timeout, routing=routing
            )
        with self._fleet_lock:
            urls = list(self.urls)
        factory = lambda url: _endpoint_for_url(url, timeout=timeout)  # noqa: E731
        return _build_fleet([factory(url) for url in urls], urls, factory, routing)

    def poll(self) -> List[Optional[int]]:
        """Per-worker exit codes (None = still running)."""
        with self._fleet_lock:
            return [proc.poll() for proc in self._procs]

    def close(self, timeout: float = 10.0) -> None:
        """Terminate every worker (escalating to kill on a slow exit)."""
        with self._fleet_lock:
            procs = list(self._procs)
            spools = list(self._stderr_spools)
            self._procs.clear()
            self._stderr_spools.clear()
            self.urls = []
            self._started = False
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=timeout)
            if proc.stdout is not None:
                proc.stdout.close()
        for spool in spools:
            if spool is None:
                continue
            try:
                spool.close()
            except OSError:
                pass
        if self.state_path is not None:
            try:
                self._write_state()  # publish the empty fleet
            except OSError:
                pass

    def __enter__(self) -> "ServingFleet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _build_fleet(
    endpoints: Sequence[OptimizerEndpoint],
    urls: Sequence[str],
    factory: Callable[[str], OptimizerEndpoint],
    routing: str,
) -> FleetEndpoint:
    """The fleet proxy for ``routing``: ring-routed by default, plain
    round-robin on request (baselines, bisecting routing regressions)."""
    if routing == "ring":
        from ..cluster.router import RouterEndpoint  # here: avoids an import cycle

        return RouterEndpoint(endpoints, urls=urls, endpoint_factory=factory)
    if routing == "round_robin":
        return FleetEndpoint(endpoints, urls=urls, endpoint_factory=factory)
    raise ValueError(
        f"unknown fleet routing {routing!r} (expected 'ring' or 'round_robin')"
    )


def open_fleet_endpoint(
    uris: Union[str, Sequence[str]],
    *,
    timeout: float = 30.0,
    optimizer: Optional[str] = None,
    routing: str = "ring",
) -> FleetEndpoint:
    """A fleet proxy from comma-separated (or listed) worker URLs."""
    if isinstance(uris, str):
        uris = [part.strip() for part in uris.split(",") if part.strip()]
    if not uris:
        raise ValueError("fleet endpoint needs at least one worker URL")
    bad = [u for u in uris if not u.startswith(_WORKER_SCHEMES)]
    if bad:
        raise ValueError(f"fleet workers must be http(s) or mux URLs, got {bad}")
    factory = lambda url: _endpoint_for_url(url, timeout=timeout, optimizer=optimizer)  # noqa: E731
    return _build_fleet([factory(u) for u in uris], list(uris), factory, routing)


def _read_fleet_state(path: str) -> Optional[List[str]]:
    """Worker URLs from a fleet state file, or None when unreadable
    (mid-rewrite reads are impossible — writes are atomic — but the
    file may not exist yet)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            state = json.load(fh)
    except (OSError, ValueError):
        return None
    workers = state.get("workers") if isinstance(state, dict) else None
    if not isinstance(workers, list):
        return None
    return [str(u) for u in workers]


def open_fleet_state_endpoint(
    path: str,
    *,
    timeout: float = 30.0,
    optimizer: Optional[str] = None,
    poll_interval: float = 0.5,
    startup_timeout: float = 15.0,
    routing: str = "ring",
) -> FleetEndpoint:
    """A membership-following client over a fleet's state file.

    Opens the workers currently listed in ``PATH`` (waiting up to
    ``startup_timeout`` for the file to appear with at least one
    worker), then keeps a daemon watcher polling the file: workers the
    autoscaler adds join the rotation within a poll interval — under
    the default ring routing a membership change also re-shards the
    ring, so a resize re-homes ~1/N of the digest space live — and
    removed ones stop receiving submits.  ``close()`` stops the
    watcher.
    """
    deadline = time.monotonic() + startup_timeout
    while True:
        urls = _read_fleet_state(path)
        if urls:
            break
        if time.monotonic() >= deadline:
            raise ConnectionError(
                f"fleet state file {path!r} has no live workers "
                f"(waited {startup_timeout:g}s)"
            )
        time.sleep(min(poll_interval, 0.1))
    factory = lambda url: _endpoint_for_url(url, timeout=timeout, optimizer=optimizer)  # noqa: E731
    fleet = _build_fleet([factory(u) for u in urls], list(urls), factory, routing)

    stop = threading.Event()

    def watch() -> None:
        while not stop.wait(poll_interval):
            latest = _read_fleet_state(path)
            if latest:  # never shrink to zero on a transient bad read
                try:
                    fleet.set_members(latest)
                except Exception:
                    pass  # a refresh must never kill the watcher

    watcher = threading.Thread(target=watch, name="fleet-state-watcher", daemon=True)
    watcher.start()
    fleet._on_close.append(stop.set)
    return fleet
