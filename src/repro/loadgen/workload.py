"""Deterministic workload synthesis: a loadtest input is an artifact.

A workload is the full, materialized request schedule of one load test —
every request's arrival offset, model family and obfuscation variant —
generated from a :class:`WorkloadSpec` by a seeded RNG.  Two calls to
:func:`generate_workload` with the same spec produce *identical*
workloads, and :func:`save_workload` serializes them canonically, so a
``workload.json`` checked into a repo (or attached to a bug report) is a
byte-reproducible experiment, not a description of one.

Three arrival processes cover the classic serving-benchmark shapes:

* ``closed`` — closed-loop: ``clients`` concurrent callers issue the
  next request the moment the previous receipt lands (throughput-bound;
  measures service capacity at fixed concurrency);
* ``poisson`` — open-loop: memoryless arrivals at ``rate_rps`` for
  ``duration_s`` seconds (latency under a fixed offered load; requests
  queue rather than back off when the service falls behind);
* ``bursty`` — open-loop on/off: ``burst_on_s`` seconds at full rate
  alternating with ``burst_off_s`` seconds at ``burst_idle_fraction``
  of it (tail latency under arrival bursts).

Each request names a model from the spec's ``mix`` (weights over
:mod:`repro.models.zoo` names) and one of ``variants`` obfuscation
seeds; the driver materializes the distinct (model, variant) pairs as
sentinel-augmented buckets once, so the replay stresses the service with
a realistic repeat structure (the same architectures re-arriving, which
is exactly what the content-addressed cache exists for).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Tuple

__all__ = [
    "WORKLOAD_SCHEMA_VERSION",
    "ARRIVAL_PROCESSES",
    "WorkloadRequest",
    "WorkloadSpec",
    "Workload",
    "generate_workload",
    "save_workload",
    "load_workload",
    "workload_preset",
    "list_presets",
]

#: bump on any incompatible change to the workload JSON layout.
WORKLOAD_SCHEMA_VERSION = 1

#: the closed set of arrival processes :func:`generate_workload` speaks.
ARRIVAL_PROCESSES = ("closed", "poisson", "bursty")

#: offsets are stored at microsecond precision so the JSON form is tidy
#: and float formatting can never differ between producer and consumer.
_OFFSET_DECIMALS = 6


@dataclass(frozen=True)
class WorkloadRequest:
    """One scheduled request: when it arrives and what it submits."""

    index: int
    offset_s: float  # seconds after test start (0.0 for closed-loop)
    model: str  # repro.models.zoo name
    variant: int  # obfuscation-seed variant in [0, spec.variants)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "offset_s": self.offset_s,
            "model": self.model,
            "variant": self.variant,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WorkloadRequest":
        return cls(
            index=int(d["index"]),
            offset_s=float(d["offset_s"]),
            model=str(d["model"]),
            variant=int(d["variant"]),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that determines a workload, and nothing that doesn't."""

    name: str
    seed: int = 0
    arrival: str = "closed"  # closed | poisson | bursty
    #: closed-loop: exact request count.  Open-loop: optional cap on the
    #: number of generated arrivals (0 = until duration_s runs out).
    requests: int = 0
    #: open-loop arrival horizon in seconds (ignored for closed-loop).
    duration_s: float = 0.0
    #: open-loop mean arrival rate (requests per second).
    rate_rps: float = 0.0
    #: closed-loop concurrency / open-loop in-flight ceiling.
    clients: int = 4
    #: model-name -> weight; normalized at sampling time.
    mix: Dict[str, float] = field(default_factory=lambda: {"squeezenet": 1.0})
    #: sentinels per subgraph in the generated buckets (paper's k).
    k: int = 0
    #: target partition size forwarded to the obfuscation config.
    subgraph_size: int = 8
    #: distinct obfuscation seeds per model; repeats across the replay
    #: exercise the server's content-addressed cache.
    variants: int = 1
    #: bursty arrivals: seconds at full rate / at idle rate, and the
    #: idle-phase rate as a fraction of rate_rps.
    burst_on_s: float = 2.0
    burst_off_s: float = 2.0
    burst_idle_fraction: float = 0.1

    def validate(self) -> None:
        if not self.name:
            raise ValueError("workload name must be non-empty")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"expected one of {ARRIVAL_PROCESSES}"
            )
        if not self.mix:
            raise ValueError("model mix must name at least one model")
        if any(w <= 0 for w in self.mix.values()):
            raise ValueError("model mix weights must be positive")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.variants < 1:
            raise ValueError("variants must be >= 1")
        if self.k < 0:
            raise ValueError("k must be >= 0")
        if self.subgraph_size < 1:
            raise ValueError("subgraph_size must be >= 1")
        if self.arrival == "closed":
            if self.requests < 1:
                raise ValueError("closed-loop workloads need requests >= 1")
        else:
            if self.duration_s <= 0:
                raise ValueError(f"{self.arrival} workloads need duration_s > 0")
            if self.rate_rps <= 0:
                raise ValueError(f"{self.arrival} workloads need rate_rps > 0")
        if self.arrival == "bursty" and (
            self.burst_on_s <= 0
            or self.burst_off_s <= 0
            or not 0 < self.burst_idle_fraction <= 1
        ):
            raise ValueError(
                "bursty workloads need burst_on_s > 0, burst_off_s > 0 and "
                "0 < burst_idle_fraction <= 1"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "arrival": self.arrival,
            "requests": self.requests,
            "duration_s": self.duration_s,
            "rate_rps": self.rate_rps,
            "clients": self.clients,
            "mix": dict(sorted(self.mix.items())),
            "k": self.k,
            "subgraph_size": self.subgraph_size,
            "variants": self.variants,
            "burst_on_s": self.burst_on_s,
            "burst_off_s": self.burst_off_s,
            "burst_idle_fraction": self.burst_idle_fraction,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WorkloadSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 (set of names)
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown workload spec fields: {sorted(unknown)}")
        kwargs = dict(d)
        if "mix" in kwargs:
            try:
                kwargs["mix"] = {str(k): float(v) for k, v in kwargs["mix"].items()}
            except (AttributeError, TypeError, ValueError):
                raise ValueError(
                    "workload spec 'mix' must map model names to numeric weights"
                ) from None
        try:
            return cls(**kwargs)
        except TypeError as exc:  # missing/extra constructor fields
            raise ValueError(f"malformed workload spec: {exc}") from None


@dataclass(frozen=True)
class Workload:
    """A spec plus its fully materialized request schedule."""

    spec: WorkloadSpec
    requests: Tuple[WorkloadRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def distinct_buckets(self) -> List[Tuple[str, int]]:
        """The (model, variant) pairs the driver must materialize, sorted."""
        return sorted({(r.model, r.variant) for r in self.requests})

    def digest(self) -> str:
        """Stable sha256 over the canonical JSON form (spec + schedule)."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": WORKLOAD_SCHEMA_VERSION,
            "kind": "workload",
            "spec": self.spec.to_dict(),
            "requests": [r.to_dict() for r in self.requests],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Workload":
        if not isinstance(d, dict) or d.get("kind") != "workload":
            raise ValueError("not a workload document (missing kind='workload')")
        version = d.get("schema_version")
        if version != WORKLOAD_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported workload schema_version {version!r}; "
                f"this build reads version {WORKLOAD_SCHEMA_VERSION}"
            )
        spec = WorkloadSpec.from_dict(d["spec"])
        spec.validate()
        requests = tuple(WorkloadRequest.from_dict(r) for r in d["requests"])
        # the driver indexes per-request state by `index`: a hand-edited
        # schedule must stay dense and ordered or fail here, not there.
        if [r.index for r in requests] != list(range(len(requests))):
            raise ValueError(
                "workload request indices must be exactly 0..n-1 in order"
            )
        if any(r.offset_s < 0 for r in requests):
            raise ValueError("workload request offsets must be >= 0")
        offsets = [r.offset_s for r in requests]
        if offsets != sorted(offsets):  # the dispatcher replays in order
            raise ValueError("workload request offsets must be non-decreasing")
        return cls(spec=spec, requests=requests)


def _sample_models(rng: random.Random, spec: WorkloadSpec, n: int) -> List[Tuple[str, int]]:
    """n deterministic (model, variant) draws from the spec's mix."""
    names = sorted(spec.mix)  # sorted: dict insertion order must not matter
    weights = [spec.mix[name] for name in names]
    draws = []
    for _ in range(n):
        model = rng.choices(names, weights=weights)[0]
        variant = rng.randrange(spec.variants)
        draws.append((model, variant))
    return draws


def _arrival_offsets(rng: random.Random, spec: WorkloadSpec) -> List[float]:
    """Arrival offsets (seconds from start) for the spec's process."""
    if spec.arrival == "closed":
        # closed-loop has no arrival times: clients issue back to back.
        return [0.0] * spec.requests

    cap = spec.requests if spec.requests > 0 else None
    offsets: List[float] = []
    t = 0.0
    if spec.arrival == "poisson":
        while cap is None or len(offsets) < cap:
            t += rng.expovariate(spec.rate_rps)
            if t >= spec.duration_s:
                break
            offsets.append(round(t, _OFFSET_DECIMALS))
        return offsets

    # bursty: a piecewise-homogeneous Poisson process.  Each on/off
    # phase is generated as its own stream and the exponential clock
    # restarts at every phase boundary — exact, not an approximation,
    # because Poisson arrivals are memoryless.
    phases = (
        (spec.burst_on_s, spec.rate_rps),
        (spec.burst_off_s, spec.rate_rps * spec.burst_idle_fraction),
    )
    phase_start = 0.0
    while phase_start < spec.duration_s and (cap is None or len(offsets) < cap):
        for phase_len, rate in phases:
            phase_end = min(phase_start + phase_len, spec.duration_s)
            t = phase_start
            while cap is None or len(offsets) < cap:
                t += rng.expovariate(rate)
                if t >= phase_end:
                    break
                offsets.append(round(t, _OFFSET_DECIMALS))
            phase_start += phase_len
            if phase_start >= spec.duration_s:
                break
    return offsets


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Materialize the spec's full request schedule, deterministically.

    The only randomness source is ``random.Random(spec.seed)``; identical
    specs therefore produce identical workloads, byte for byte once
    serialized (the acceptance property ``repro loadtest`` relies on).
    """
    spec.validate()
    rng = random.Random(spec.seed)
    offsets = _arrival_offsets(rng, spec)
    draws = _sample_models(rng, spec, len(offsets))
    requests = tuple(
        WorkloadRequest(index=i, offset_s=offset, model=model, variant=variant)
        for i, (offset, (model, variant)) in enumerate(zip(offsets, draws))
    )
    if not requests:
        raise ValueError(
            f"workload {spec.name!r} generated zero requests; increase "
            "duration_s/rate_rps (or requests for closed-loop)"
        )
    return Workload(spec=spec, requests=requests)


def save_workload(workload: Workload, path: str) -> None:
    """Write the canonical JSON form (sorted keys, trailing newline)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(workload.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_workload(path: str) -> Workload:
    """Read and validate a workload artifact from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return Workload.from_dict(json.load(fh))


# -- presets ------------------------------------------------------------------
#
# Presets are specs, not workloads: `generate_workload(workload_preset(n))`
# is still the reproducibility boundary.  Mixes use the smallest zoo
# families so presets stay CI-friendly.

_PRESETS: Dict[str, WorkloadSpec] = {
    # a handful of closed-loop requests: the fastest end-to-end check
    # (unit tests, `--preset micro` while debugging an endpoint).
    "micro": WorkloadSpec(
        name="micro",
        seed=0,
        arrival="closed",
        requests=6,
        clients=2,
        mix={"squeezenet": 1.0},
        k=0,
        variants=1,
    ),
    # the CI gate: ~10 seconds of open-loop Poisson traffic over a
    # two-model mix with sentinel-augmented buckets and repeat variants.
    # The rate is sized to *probe* a small runner (a few cold buckets,
    # then mostly cache hits), not to saturate it — overload probes are
    # what the `burst` preset and custom specs are for.
    "smoke": WorkloadSpec(
        name="smoke",
        seed=0,
        arrival="poisson",
        duration_s=10.0,
        rate_rps=1.5,
        clients=8,
        mix={"squeezenet": 0.6, "mobilenet": 0.4},
        k=1,
        variants=2,
    ),
    # tail-latency/overload probe: 2s bursts at 3 rps against near-idle
    # valleys.  ``variants=8`` keeps most arrivals *cold* (8 distinct
    # sentinel-augmented buckets), so with a non-trivial per-entry
    # service cost (``repro serve --entry-cost-ms``) the bursts
    # genuinely exceed a single worker's optimization capacity — this
    # is the preset the overload-smoke CI job throws at an
    # admission-controlled, autoscaling fleet to prove bounded p99 +
    # graceful shedding.  Sizing is deliberate: squeezenet-only with
    # coarse subgraphs is the zoo's lightest wire configuration (~1 MB
    # per manifest, vs tens to hundreds of MB for mobilenet k=1), and
    # six clients is as much concurrency as a single-interpreter
    # client + server pair sustains before GIL-serialized JSON and
    # canonical hashing — not the service queue — dominate every
    # latency (measured: one warm round trip is ~0.2s sequential but
    # 5-30s at twelve-way concurrency with zero queued work).
    "burst": WorkloadSpec(
        name="burst",
        seed=0,
        arrival="bursty",
        duration_s=12.0,
        rate_rps=3.0,
        clients=6,
        mix={"squeezenet": 1.0},
        k=1,
        subgraph_size=16,
        variants=8,
        burst_on_s=2.0,
        burst_off_s=2.0,
        burst_idle_fraction=0.1,
    ),
}


def workload_preset(name: str, seed: int = None) -> WorkloadSpec:  # type: ignore[assignment]
    """A named preset spec, optionally re-seeded."""
    try:
        spec = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload preset {name!r}; available: {', '.join(sorted(_PRESETS))}"
        ) from None
    if seed is not None:
        spec = replace(spec, seed=seed)
    return spec


def list_presets() -> List[str]:
    """All preset names, sorted."""
    return sorted(_PRESETS)
