"""Fixed-bucket latency histogram: bounded memory at any request volume.

The driver records one latency per request; at the traffic levels the
ROADMAP aims for, keeping raw samples is the thing that falls over
first.  :class:`LatencyHistogram` keeps a fixed set of geometrically
spaced buckets instead (default 100 µs .. ~105 s at 2x steps, plus an
overflow bucket), so recording is O(log buckets) and memory is constant
whether a test ran sixty requests or sixty million.

Quantiles are estimated by linear interpolation inside the bucket the
rank lands in, clamped to the exact observed min/max (which are tracked
alongside, as are count and sum, so means are exact).  With 2x buckets
the worst-case quantile error is bounded by the bucket width — accurate
enough for SLO verdicts, and the tradeoff every serving-side histogram
(Prometheus, HdrHistogram's coarse configs) makes.

Histograms merge (for per-worker → fleet rollups) and round-trip
through JSON (for ``LOADTEST_*.json`` reports).  Stdlib only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["LatencyHistogram"]

#: default geometric bucket grid: 100 µs doubling up to ~105 s.
_DEFAULT_START_S = 1e-4
_DEFAULT_FACTOR = 2.0
_DEFAULT_BUCKETS = 21


def _geometric_bounds(start: float, factor: float, buckets: int) -> List[float]:
    return [start * factor**i for i in range(buckets)]


class LatencyHistogram:
    """Latencies in seconds over fixed geometric buckets + overflow.

    ``bounds[i]`` is the *inclusive upper edge* of bucket ``i``; one
    extra overflow bucket catches everything above the last bound.
    """

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        if bounds is None:
            bounds = _geometric_bounds(
                _DEFAULT_START_S, _DEFAULT_FACTOR, _DEFAULT_BUCKETS
            )
        bounds = [float(b) for b in bounds]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= 0 for b in bounds) or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bucket bounds must be positive and strictly increasing")
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +1 = overflow
        self.count = 0
        self.sum_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None

    # -- recording ----------------------------------------------------------
    def _bucket_index(self, seconds: float) -> int:
        # bisect over ~21 floats; a loop is clearer than bisect + key fuss.
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                return i
        return len(self.bounds)  # overflow

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        self.counts[self._bucket_index(seconds)] += 1
        self.count += 1
        self.sum_s += seconds
        self.min_s = seconds if self.min_s is None else min(self.min_s, seconds)
        self.max_s = seconds if self.max_s is None else max(self.max_s, seconds)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum_s += other.sum_s
        for attr in ("min_s", "max_s"):
            theirs = getattr(other, attr)
            if theirs is None:
                continue
            mine = getattr(self, attr)
            pick = min if attr == "min_s" else max
            setattr(self, attr, theirs if mine is None else pick(mine, theirs))

    # -- derived ------------------------------------------------------------
    @property
    def mean_s(self) -> Optional[float]:
        return self.sum_s / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (q in [0, 1]); None when empty.

        Linear interpolation within the bucket the rank lands in,
        clamped to the observed min/max so estimates never leave the
        measured range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        assert self.min_s is not None and self.max_s is not None
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max_s
                fraction = (rank - seen) / n
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min_s), self.max_s)
            seen += n
        return self.max_s

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds_s": self.bounds,
            "counts": self.counts,
            "count": self.count,
            "sum_s": self.sum_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LatencyHistogram":
        hist = cls(bounds=d["bounds_s"])
        counts = [int(c) for c in d["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram counts length {len(counts)} does not match "
                f"{len(hist.bounds)} bounds (+1 overflow)"
            )
        if any(c < 0 for c in counts):
            raise ValueError("histogram counts must be >= 0")
        total = int(d["count"])
        if total != sum(counts):
            raise ValueError("histogram count does not equal the sum of bucket counts")
        hist.counts = counts
        hist.count = total
        hist.sum_s = float(d["sum_s"])
        hist.min_s = None if d.get("min_s") is None else float(d["min_s"])
        hist.max_s = None if d.get("max_s") is None else float(d["max_s"])
        return hist
