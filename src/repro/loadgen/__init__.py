"""repro.loadgen — deterministic workload generation and SLO analytics.

The serving tier (:mod:`repro.serving`) answers "can the optimizer
party run as a service"; this package answers the ROADMAP's harder
question — *how does that service behave under heavy traffic?* — and
makes the answer reproducible:

* :mod:`repro.loadgen.workload` — seeded arrival processes
  (closed-loop, open-loop Poisson, bursty on/off) and model-mix
  sampling over :mod:`repro.models.zoo`; a workload is a byte-stable
  ``workload.json`` artifact, not a description of one;
* :mod:`repro.loadgen.histogram` — fixed-bucket latency histogram
  (constant memory at any request volume, stdlib only);
* :mod:`repro.loadgen.driver` — thread-pool replay of a workload
  against any :class:`~repro.api.endpoint.OptimizerEndpoint`, recording
  submit→receipt latency, error codes and a metrics timeline;
* :mod:`repro.loadgen.report` — schema-versioned ``LOADTEST_*.json``
  (quantiles, throughput, SLO attainment, cache-hit-rate over time)
  plus a baseline comparator in the :mod:`repro.bench.compare` idiom;
* :mod:`repro.loadgen.fleet` — N ``repro serve --http`` worker
  *processes* sharing one on-disk cache behind a round-robin
  :class:`FleetEndpoint`, for measuring scale-out on real process
  boundaries.

CLI: ``repro loadtest --endpoint URI --preset smoke --slo-ms 500`` and
``repro serve --http 0 --workers N``.
"""

from .driver import LoadTestResult, RequestOutcome, build_workload_manifests, run_loadtest  # noqa: F401
from .fleet import FleetEndpoint, ServingFleet, open_fleet_endpoint  # noqa: F401
from .histogram import LatencyHistogram  # noqa: F401
from .report import (  # noqa: F401
    LOADTEST_SCHEMA_VERSION,
    build_report,
    compare_loadtests,
    default_report_path,
    load_report,
    save_report,
    validate_report,
)
from .workload import (  # noqa: F401
    ARRIVAL_PROCESSES,
    WORKLOAD_SCHEMA_VERSION,
    Workload,
    WorkloadRequest,
    WorkloadSpec,
    generate_workload,
    list_presets,
    load_workload,
    save_workload,
    workload_preset,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "WORKLOAD_SCHEMA_VERSION",
    "LOADTEST_SCHEMA_VERSION",
    "Workload",
    "WorkloadRequest",
    "WorkloadSpec",
    "generate_workload",
    "list_presets",
    "load_workload",
    "save_workload",
    "workload_preset",
    "LatencyHistogram",
    "LoadTestResult",
    "RequestOutcome",
    "build_workload_manifests",
    "run_loadtest",
    "build_report",
    "compare_loadtests",
    "default_report_path",
    "load_report",
    "save_report",
    "validate_report",
    "FleetEndpoint",
    "ServingFleet",
    "open_fleet_endpoint",
]
