"""Journal live traffic into a replayable workload artifact.

``repro serve --journal PATH`` records every accepted submit's arrival
time and bucket digest into the PR 5 ``workload.json`` schema, so a
production trace replays through the standard path::

    repro loadtest --workload PATH --endpoint ...

The journal cannot recover the original payloads (the server never
persists submitted graphs), so a replay regenerates synthetic buckets:
each distinct live digest becomes one obfuscation *variant* of the
journal's model, numbered in first-appearance order.  That preserves
exactly what a cache/routing study needs from a trace — the arrival
process and the repetition structure (which requests were identical,
and when the repeats came) — while the ``"journal"`` block maps each
variant back to the live digest it stands for.  Loaders ignore the
extra block (:func:`~repro.loadgen.workload.load_workload` reads only
the schema's own keys).

Every record atomically rewrites the file, so a worker killed mid-run
leaves a complete, loadable artifact — journaling is for modest live
rates, not for surviving a saturation benchmark.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .workload import _OFFSET_DECIMALS, WORKLOAD_SCHEMA_VERSION

__all__ = ["TrafficJournal"]


class TrafficJournal:
    """Thread-safe arrival-time + digest recorder behind ``--journal``.

    Parameters
    ----------
    path:
        Where the workload document is (re)written.
    model:
        Zoo model name the replay synthesizes buckets from (the live
        payloads themselves are not recoverable; see module docstring).
    clients:
        Replay in-flight ceiling written into the spec.
    max_records:
        Recording stops (and ``dropped`` counts) beyond this many
        requests — the journal is a trace, not a ring buffer.
    """

    def __init__(
        self,
        path: str,
        *,
        model: str = "squeezenet",
        clients: int = 4,
        max_records: int = 100_000,
    ) -> None:
        self.path = path
        self.model = model
        self.clients = clients
        self.max_records = max_records
        self._lock = threading.Lock()
        self._t0: Optional[float] = None
        self._records: List[Tuple[float, int]] = []  # (offset_s, variant)
        self._variant_of: Dict[str, int] = {}  # digest -> variant index
        self.dropped = 0

    def record(self, bucket_digest: str, now: Optional[float] = None) -> None:
        """Journal one accepted submit (offsets are relative to the
        first record) and rewrite the artifact."""
        with self._lock:
            if len(self._records) >= self.max_records:
                self.dropped += 1
                return
            if now is None:
                now = time.monotonic()
            if self._t0 is None:
                self._t0 = now
            offset = round(max(0.0, now - self._t0), _OFFSET_DECIMALS)
            if self._records and offset < self._records[-1][0]:
                offset = self._records[-1][0]  # clock skew: keep sorted
            variant = self._variant_of.setdefault(
                bucket_digest, len(self._variant_of)
            )
            self._records.append((offset, variant))
        self.flush()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def to_document(self) -> Dict[str, Any]:
        """The journal as a loadable ``workload.json`` document."""
        with self._lock:
            records = list(self._records)
            digests = dict(self._variant_of)
            dropped = self.dropped
        last = records[-1][0] if records else 0.0
        # the dispatcher replays the recorded offsets; duration/rate are
        # only the spec's summary of them (and must validate as > 0).
        duration_s = round(max(last, 1.0), _OFFSET_DECIMALS)
        return {
            "schema_version": WORKLOAD_SCHEMA_VERSION,
            "kind": "workload",
            "spec": {
                "name": "journal",
                "seed": 0,
                "arrival": "poisson",
                "requests": len(records),
                "duration_s": duration_s,
                "rate_rps": round(max(len(records), 1) / duration_s, 6),
                "clients": self.clients,
                "mix": {self.model: 1.0},
                "variants": max(1, len(digests)),
            },
            "requests": [
                {
                    "index": i,
                    "offset_s": offset,
                    "model": self.model,
                    "variant": variant,
                }
                for i, (offset, variant) in enumerate(records)
            ],
            "journal": {
                "source": "live-traffic",
                "dropped": dropped,
                "digests": {str(v): d for d, v in digests.items()},
            },
        }

    def flush(self) -> None:
        """Atomically rewrite the artifact from the current records."""
        from ..serving.spool import atomic_write_json

        atomic_write_json(self.path, self.to_document())
